"""Shared benchmark fixtures.

``bench_registry`` hands a benchmark a real
:class:`~repro.telemetry.MetricsRegistry` and prints its counter digest
when the test finishes, attaching a telemetry snapshot to the
benchmark's output.  Counts are cumulative across the benchmark's
rounds — the digest describes the total work the benchmark performed,
which is exactly what you want when sanity-checking that two compared
configurations did comparable work.
"""

import pytest

from repro.telemetry import MetricsRegistry, snapshot_digest


@pytest.fixture
def bench_registry():
    registry = MetricsRegistry()
    yield registry
    print(f"\n{snapshot_digest(registry)}")
