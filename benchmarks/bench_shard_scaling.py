"""Experiment F1 — sharded fabric throughput vs. the single compiled path.

The fabric's pitch is the paper's: keyed monitor state partitions
cleanly, so N cores should buy ~N-fold monitor throughput.  This bench
prices it on a large keyed workload: the same event stream is driven
through (a) one plain compiled :class:`Monitor` — the PR 3 hot path,
(b) an in-process :class:`ShardedMonitor` — partitioning without
parallelism, the ablation that isolates router overhead, and (c) a
multiprocessing fabric with ``SHARDS`` forked workers.

The workload is a pre-generated batch over ``NUM_KEYS`` flows, streamed
repeatedly until ``NUM_EVENTS`` total events have been observed.  Every
property keys on the same ``(ipv4.src, tcp.src)`` pair, so the router
forwards each event to exactly one shard (extractor dedup), and none of
the properties uses timers — re-feeding the batch at unchanged
timestamps is semantically a no-op stream of refreshes and probes, the
same per-event work every round, in every configuration.

The multi-worker speedup assertion only arms on machines with at least
``GATE_MIN_CPUS`` cores and a full-size run (``GATE_MIN_EVENTS``): on a
one- or two-core box the workers time-slice one another, so the
measured ratio is reported in ``BENCH_shard.json`` without failing the
build.  Counter equivalence across all three configurations is asserted
unconditionally.  ``REPRO_BENCH_EVENTS`` reduces the stream for smoke
runs.
"""

import json
import os
import random
import time

from repro.core.monitor import Monitor
from repro.core.refs import Bind, Const, EventKind, EventPattern, FieldEq, Var
from repro.core.spec import Observe, PropertySpec
from repro.fabric import ShardedMonitor, fork_available
from repro.packet import tcp_packet
from repro.switch.events import EgressAction, PacketArrival, PacketEgress

NUM_EVENTS = int(os.environ.get("REPRO_BENCH_EVENTS", "2000000"))
NUM_KEYS = 8192
BATCH = 4096
SHARDS = 4
OUT_PATH = os.environ.get("REPRO_BENCH_SHARD_OUT", "BENCH_shard.json")

#: the >= 1.8x multi-worker gate arms only when both hold — otherwise
#: the measurement is still taken and recorded, just not asserted.
GATE_MIN_CPUS = 4
GATE_MIN_EVENTS = 1_000_000
GATE_SPEEDUP = 1.8

COUNTER_KEYS = (
    "events", "violations", "instances_created", "refreshes",
    "candidates_examined", "ops_applied",
)


def flow_properties(count=6):
    """``count`` keyed, timer-free two-stage properties.

    All key on ``(ipv4.src, tcp.src)``: stage 0 creates on any flow
    arrival, stage 1 waits for an egress of the same flow on a port
    that never occurs — instances park at stage 1 and every later
    arrival of the key costs a probe plus a refresh op, every egress a
    candidate probe.  Identical key fields across properties mean the
    router sends each event to exactly ONE shard while every shard
    still runs ``count`` properties' worth of matching.
    """
    props = []
    for i in range(count):
        props.append(PropertySpec(
            name=f"bench-flow-{i}",
            description="per-flow parked obligation (bench workload)",
            stages=(
                Observe("seen", EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("src", "ipv4.src"),
                           Bind("sport", "tcp.src")))),
                Observe("never", EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldEq("ipv4.src", Var("src")),
                            FieldEq("tcp.src", Var("sport")),
                            FieldEq("tcp.dst", Const(1 + i))))),
            ),
            key_vars=("src", "sport"),
        ))
    return props


def flow_batch(num_keys=NUM_KEYS, size=BATCH * 4, seed=11):
    """One reusable batch: arrivals and egresses over ``num_keys`` flows."""
    rng = random.Random(seed)
    packets = [
        tcp_packet(i % 8, (i + 1) % 8,
                   f"10.{(i >> 8) & 255}.{i & 255}.1",
                   f"198.51.{(i >> 8) & 255}.{i & 255}",
                   1024 + (i % 16384), 80)
        for i in range(num_keys)
    ]
    events = []
    t = 0.0
    for _ in range(size):
        t += 1e-4
        packet = packets[rng.randrange(num_keys)]
        if rng.random() < 0.6:
            events.append(PacketArrival(
                switch_id="s", time=t, packet=packet, in_port=1))
        else:
            events.append(PacketEgress(
                switch_id="s", time=t, packet=packet, in_port=1,
                out_port=2, action=EgressAction.UNICAST))
    return events


def drive(monitor, batch, total_events):
    """Feed ``batch`` repeatedly until ``total_events`` observed; returns
    (elapsed_seconds, counter_digest)."""
    reps = max(1, total_events // len(batch))
    start = time.perf_counter()
    for _ in range(reps):
        monitor.observe_batch(batch)
    if hasattr(monitor, "sync"):
        monitor.sync()  # fabric: wait for workers to confirm everything
    elapsed = time.perf_counter() - start
    counters = {key: getattr(monitor.stats, key) for key in COUNTER_KEYS}
    return elapsed, counters, reps * len(batch)


def test_shard_scaling():
    props = flow_properties()
    batch = flow_batch(size=min(BATCH * 4, max(BATCH, NUM_EVENTS)))
    results = {}

    single = Monitor()
    for prop in props:
        single.add_property(prop)
    elapsed, counters, observed = drive(single, batch, NUM_EVENTS)
    results["single"] = {
        "seconds": elapsed, "events": observed,
        "events_per_sec": observed / elapsed, "counters": counters,
    }

    inproc = ShardedMonitor(props, num_shards=SHARDS, mode="inprocess")
    elapsed, counters, observed = drive(inproc, batch, NUM_EVENTS)
    results["inprocess"] = {
        "seconds": elapsed, "events": observed,
        "events_per_sec": observed / elapsed, "counters": counters,
        "shards": SHARDS,
    }

    if fork_available():
        fabric = ShardedMonitor(props, num_shards=SHARDS, mode="mp")
        try:
            elapsed, counters, observed = drive(fabric, batch, NUM_EVENTS)
        finally:
            fabric.stop()
        results["mp"] = {
            "seconds": elapsed, "events": observed,
            "events_per_sec": observed / elapsed, "counters": counters,
            "shards": SHARDS,
        }

    # Partitioning must not change what was monitored, at any scale.
    for name, entry in results.items():
        assert entry["counters"] == results["single"]["counters"], (
            name, entry["counters"], results["single"]["counters"])

    cpus = os.cpu_count() or 1
    speedup = (results["mp"]["events_per_sec"]
               / results["single"]["events_per_sec"]
               if "mp" in results else None)
    gate_armed = (
        "mp" in results
        and cpus >= GATE_MIN_CPUS
        and results["mp"]["events"] >= GATE_MIN_EVENTS
    )
    payload = {
        "events_requested": NUM_EVENTS,
        "keys": NUM_KEYS,
        "properties": len(props),
        "cpus": cpus,
        "results": results,
        "mp_speedup_vs_single": speedup,
        "gate": {
            "armed": gate_armed,
            "min_cpus": GATE_MIN_CPUS,
            "min_events": GATE_MIN_EVENTS,
            "required_speedup": GATE_SPEEDUP,
        },
    }
    with open(OUT_PATH, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")

    line = " | ".join(
        f"{name} {entry['events_per_sec']:,.0f} ev/s"
        for name, entry in results.items())
    if speedup is not None:
        line += f" | cpus={cpus} | mp speedup {speedup:.2f}x"
    print(f"\n{line}")

    if gate_armed:
        assert speedup >= GATE_SPEEDUP, (
            f"{SHARDS}-worker fabric managed only {speedup:.2f}x over the "
            f"single-process compiled path on a {cpus}-core machine "
            f"(required {GATE_SPEEDUP}x)")
