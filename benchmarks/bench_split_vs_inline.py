"""Experiment P3 (Feature 9 / Sec. 3.3) — split vs inline processing.

The paper: "If the switch splits processing, the monitor has minimal
impact on throughput, but its state might lag behind any packets issued in
response, leading to monitor errors.  In contrast, if the switch inlines
updates, its state will be up to date, but at the expense of increased
forwarding latency."

We drive request/response pairs whose response gap sweeps across the
split lag and measure:

* the monitor *error rate* (missed violations) in split mode — rises to
  100% as responses race ahead of state updates;
* the *forwarding latency* added by inline monitoring vs split — inline
  pays per-event update cost on the packet's critical path.
"""

import pytest

from repro.core import Bind, EventKind, EventPattern, FieldEq, Monitor, Observe, PropertySpec, Var
from repro.packet import ethernet
from repro.switch.events import PacketArrival
from repro.switch.registers import StateCostMeter
from repro.switch.switch import DEFAULT_SPLIT_LAG, ProcessingMode

SPLIT_LAG = DEFAULT_SPLIT_LAG
PAIRS = 200


def echo_property():
    return PropertySpec(
        name="echo", description="response to a request",
        stages=(
            Observe("request", EventPattern(
                kind=EventKind.ARRIVAL, binds=(Bind("S", "eth.src"),))),
            Observe("response", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("eth.dst", Var("S")),))),
        ),
        key_vars=("S",),
    )


def drive_pairs(mode, response_gap, registry=None):
    """PAIRS request/response pairs; every pair is a true violation."""
    monitor = Monitor(mode=mode, split_lag=SPLIT_LAG, registry=registry)
    monitor.add_property(echo_property())
    t = 0.0
    for i in range(PAIRS):
        src = i + 1
        monitor.observe(PacketArrival(
            switch_id="s", time=t, packet=ethernet(src, 0xFFFF), in_port=1))
        monitor.observe(PacketArrival(
            switch_id="s", time=t + response_gap,
            packet=ethernet(0xEEEE, src), in_port=2))
        t += 0.01
    monitor.advance_to(t + 10.0)
    return monitor


def error_rate(monitor):
    return 1.0 - len(monitor.violations) / PAIRS


def test_split_error_rate_vs_response_gap(benchmark, bench_registry):
    def sweep():
        series = []
        for gap in (1e-5, 1e-4, 4e-4, 6e-4, 1e-3, 1e-2):
            monitor = drive_pairs(ProcessingMode.SPLIT, gap,
                                  registry=bench_registry)
            series.append((gap, error_rate(monitor)))
        return series

    series = benchmark(sweep)
    print("\nsplit mode: response gap -> monitor error rate "
          f"(state-update lag {SPLIT_LAG:.0e}s)")
    for gap, err in series:
        print(f"  {gap:9.0e}s -> {err:6.1%}")
    # Responses faster than the lag are all missed; slower ones all caught.
    assert series[0][1] == 1.0
    assert series[-1][1] == 0.0
    # The crossover falls exactly at the lag.
    fast_gaps = [err for gap, err in series if gap < SPLIT_LAG]
    slow_gaps = [err for gap, err in series if gap > SPLIT_LAG]
    assert all(err == 1.0 for err in fast_gaps)
    assert all(err == 0.0 for err in slow_gaps)


def test_inline_mode_is_always_correct(benchmark):
    def sweep():
        return [
            error_rate(drive_pairs(ProcessingMode.INLINE, gap))
            for gap in (1e-5, 1e-4, 1e-3)
        ]

    errors = benchmark(sweep)
    print(f"\ninline mode error rates across gaps: {errors}")
    assert errors == [0.0, 0.0, 0.0]


def test_inline_charges_latency_split_does_not():
    """The other side of the trade: inline monitoring puts update cost on
    the packet path (meter ticks accrued synchronously with events)."""
    inline_meter, split_meter = StateCostMeter(), StateCostMeter()

    inline = Monitor(mode=ProcessingMode.INLINE, meter=inline_meter,
                     slow_path_updates=True)
    inline.add_property(echo_property())
    split = Monitor(mode=ProcessingMode.SPLIT, split_lag=SPLIT_LAG,
                    meter=split_meter, slow_path_updates=True)
    split.add_property(echo_property())

    event = PacketArrival(switch_id="s", time=0.0,
                          packet=ethernet(1, 2), in_port=1)
    inline.observe(event)
    split.observe(event)
    # At the instant the packet is processed, inline has already paid for
    # the state update; split has deferred it off the packet path.
    assert inline_meter.slow_updates == 1
    assert split_meter.slow_updates == 0
    split.advance_to(1.0)
    assert split_meter.slow_updates == 1  # paid later, asynchronously


def test_split_throughput_advantage(benchmark):
    """Wall-clock: processing an event batch in split mode defers the
    per-op application work off the intake path."""
    events = [
        PacketArrival(switch_id="s", time=i * 1e-4,
                      packet=ethernet(i % 100 + 1, 0xFFFF), in_port=1)
        for i in range(500)
    ]

    def intake_split():
        monitor = Monitor(mode=ProcessingMode.SPLIT, split_lag=1e9)
        monitor.add_property(echo_property())
        for event in events:
            monitor.observe(event)
        return monitor

    monitor = benchmark(intake_split)
    assert monitor.stats.ops_applied == 0  # nothing applied during intake
