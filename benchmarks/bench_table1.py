"""Experiment T1 — regenerate Table 1.

For each of the paper's thirteen properties, run the static analyzer over
its specification and compare the derived feature row with the paper's
printed cells.  The benchmark times a full catalog analysis; the asserts
are the reproduction: 13/13 rows must agree.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only -s`` to see
the rendered table.
"""

import pytest

from repro.core.analysis import analyze
from repro.props import build_table1, render_table1


def analyze_catalog():
    entries = build_table1()
    return [analyze(e.prop) for e in entries]


def test_table1_reproduces_paper(benchmark):
    entries = build_table1()
    benchmark(analyze_catalog)

    print("\n=== Table 1 (computed from property specifications) ===")
    print(render_table1(entries))

    mismatches = [e for e in entries if not e.matches_paper()]
    assert not mismatches, [
        (e.description, e.computed_row(), e.expected_row) for e in mismatches
    ]
    print(f"\n{len(entries)}/13 rows match the paper cell-for-cell")


def test_table1_row_count_and_groups(benchmark):
    entries = benchmark(build_table1)
    assert len(entries) == 13
    groups = {}
    for e in entries:
        groups[e.group] = groups.get(e.group, 0) + 1
    assert groups == {
        "ARP Cache Proxy": 2,
        "Port Knocking": 2,
        "Load Balancing": 3,
        "FTP": 1,
        "DHCP": 3,
        "DHCP + ARP Proxy": 2,
    }
