"""Experiment P2 (Sec. 3.3) — slow-path vs fast-path state updates.

The paper: Varanus "remains intractable so long as it stores and updates
its state using OpenFlow rules, which cannot be modified at line rate.  A
scalable implementation would need more rapid state mechanisms, such as
the register-based approach in P4."

Two measurements:

* the simulated cost model — per-update ticks of a flow-rule installation
  (learn / flow-mod through the OpenFlow machinery) vs a register write,
  on a real per-packet-state workload;
* wall-clock throughput of the two mechanisms in this implementation
  (the learn path manipulates rule tables; the register path writes an
  array cell) — the *shape* (slow path well below fast path) is the claim.
"""

import pytest

from repro.backends import P4Program, P4Stage
from repro.netsim import EventScheduler
from repro.packet import ethernet
from repro.switch.actions import FieldRef, Learn, Output, RegisterWrite
from repro.switch.events import PacketArrival
from repro.switch.match import MatchSpec
from repro.switch.pipeline import MissPolicy
from repro.switch.registers import (
    FAST_PATH_UPDATE_COST,
    SLOW_PATH_UPDATE_COST,
)
from repro.switch.switch import Switch

NUM_PACKETS = 300


def _packets():
    return [ethernet(i % 50 + 1, (i * 7) % 50 + 1) for i in range(NUM_PACKETS)]


def slow_path_switch(registry=None):
    """Per-packet state via the learn action (FAST/Varanus style)."""
    sw = Switch("slow", EventScheduler(), num_ports=2, num_tables=2,
                miss_policy=MissPolicy.FLOOD, registry=registry)
    learn = Learn(table_id=1, match=(("eth.dst", FieldRef("eth.src")),),
                  actions=(Output(FieldRef("in_port")),))
    sw.install_rule(MatchSpec(), [learn], table_id=0, priority=1)
    return sw


def fast_path_switch():
    """Per-packet state via register writes (P4 style)."""
    sw = Switch("fast", EventScheduler(), num_ports=2, num_tables=2,
                miss_policy=MissPolicy.FLOOD)
    sw.install_rule(
        MatchSpec(),
        [RegisterWrite("seen", FieldRef("eth.src"), 1)],
        table_id=0, priority=1,
    )
    return sw


def drive(sw):
    for i, packet in enumerate(_packets()):
        sw.receive(packet, in_port=1)
        sw.scheduler.run()
    return sw


def test_cost_model_ratio():
    """The abstract cost model matches the paper's qualitative gap."""
    assert SLOW_PATH_UPDATE_COST / FAST_PATH_UPDATE_COST >= 100


def test_slow_path_updates_dominate_cost(benchmark, bench_registry):
    sw = benchmark(lambda: drive(slow_path_switch(registry=bench_registry)))
    assert sw.meter.slow_updates >= NUM_PACKETS
    assert sw.meter.slow_update_ticks > sw.meter.lookup_ticks
    print(f"\nslow path: {sw.meter.slow_updates} updates, "
          f"{sw.meter.total_ticks} total ticks")


def test_fast_path_updates_cheap(benchmark):
    sw = benchmark(lambda: drive(fast_path_switch()))
    assert sw.meter.fast_updates >= NUM_PACKETS
    assert sw.meter.fast_update_ticks < sw.meter.lookup_ticks
    print(f"\nfast path: {sw.meter.fast_updates} updates, "
          f"{sw.meter.total_ticks} total ticks")


def test_simulated_forwarding_latency_gap():
    """Inline slow-path updates inflate per-packet forwarding latency far
    beyond the register version — the line-rate argument."""
    slow = drive(slow_path_switch())
    fast = drive(fast_path_switch())
    ratio = (slow.stats.mean_forward_latency
             / fast.stats.mean_forward_latency)
    print(f"\nmean forwarding latency: slow={slow.stats.mean_forward_latency:.2e}s "
          f"fast={fast.stats.mean_forward_latency:.2e}s ratio={ratio:.1f}x")
    assert ratio > 5


def test_register_program_wallclock(benchmark):
    """Wall-clock: a P4-style register program handles the same workload
    entirely on the fast path."""
    program = P4Program(register_size=1024)
    program.add_stage(P4Stage(
        guard=lambda f: "eth.src" in f,
        array="seen", key_fields=("eth.src",),
        update=lambda old, f: old + 1,
    ))
    events = [
        PacketArrival(switch_id="s", time=i * 1e-5, packet=p, in_port=1)
        for i, p in enumerate(_packets())
    ]

    def run():
        for event in events:
            program.process(event)

    benchmark(run)
    assert program.meter.slow_updates == 0
