"""Experiment P7 (extension) — postcard provenance vs on-switch FULL.

Sec. 3.2 suggests NetSight-style postcards as the way to get complete
provenance without per-instance event retention on the switch.  This bench
quantifies the trade on a violation-sparse workload (many partial chains,
few violations — the regime where on-switch FULL retention is pure waste):

* on-switch retained events (FULL) vs on-switch retained events under
  postcards (zero — the switch runs LIMITED);
* postcard bandwidth (cards shipped) and collector memory before/after
  garbage collection;
* wall-clock for both configurations.
"""

import pytest

from repro.core import Bind, Const, EventKind, EventPattern, FieldEq, Monitor, Observe, PropertySpec, ProvenanceLevel, Var
from repro.core.postcards import PostcardCollector, PostcardMonitor
from repro.packet import ethernet
from repro.switch.events import PacketArrival

CHAINS = 400
VIOLATING_EVERY = 20  # 1 in 20 chains completes (sparse violations)


def chain_property():
    return PropertySpec(
        name="chain", description="",
        stages=(
            Observe("s0", EventPattern(
                kind=EventKind.ARRIVAL, binds=(Bind("S", "eth.src"),),
                guards=(FieldEq("eth.type", Const(0x9000)),))),
            Observe("s1", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("eth.src", Var("S")),
                        FieldEq("eth.type", Const(0x9001))))),
            Observe("s2", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("eth.src", Var("S")),
                        FieldEq("eth.type", Const(0x9002))))),
        ),
        key_vars=("S",),
    )


def workload():
    events = []
    t = 0.0
    for chain in range(CHAINS):
        src = chain + 1
        stages = 3 if chain % VIOLATING_EVERY == 0 else 2  # most stall at s1
        for k in range(stages):
            t += 1e-4
            events.append(PacketArrival(
                switch_id="s", time=t,
                packet=ethernet(src, 2, ethertype=0x9000 + k), in_port=1))
    return events


EVENTS = workload()
EXPECTED_VIOLATIONS = CHAINS // VIOLATING_EVERY


def run_full_onswitch():
    monitor = Monitor(provenance=ProvenanceLevel.FULL)
    monitor.add_property(chain_property())
    for event in EVENTS:
        monitor.observe(event)
    return monitor


def run_postcards(registry=None):
    collector = PostcardCollector(retention=1e9, registry=registry)
    pm = PostcardMonitor(collector, registry=registry)
    pm.add_property(chain_property())
    for event in EVENTS:
        pm.observe(event)
    return pm, collector


def retained_events_onswitch(monitor):
    """Events held in live instances' provenance (the on-switch cost)."""
    return sum(
        sum(1 for r in inst.provenance if r.event is not None)
        for inst in monitor.store("chain").all()
    )


def test_full_onswitch_retains_events(benchmark):
    monitor = benchmark.pedantic(run_full_onswitch, rounds=5, iterations=1)
    retained = retained_events_onswitch(monitor)
    print(f"\nFULL on-switch: {retained} whole events held by live instances")
    # Every stalled chain holds its events on-switch forever.
    assert retained >= (CHAINS - EXPECTED_VIOLATIONS)
    assert len(monitor.violations) == EXPECTED_VIOLATIONS


def test_postcards_keep_switch_flat(benchmark, bench_registry):
    pm, collector = benchmark.pedantic(
        lambda: run_postcards(registry=bench_registry),
        rounds=5, iterations=1)
    retained = retained_events_onswitch(pm.monitor)
    print(f"\npostcards: {retained} events on-switch, "
          f"{collector.postcards_received} cards shipped "
          "(cumulative over rounds — the registry outlives each round's "
          "collector), "
          f"{collector.stored_postcards} pending at collector")
    assert retained == 0  # the switch holds no events at all
    assert len(pm.violations) == EXPECTED_VIOLATIONS
    assert len(collector.reconstructed) == EXPECTED_VIOLATIONS
    # Every reconstruction is complete (all three stages).
    assert all(len(r.history) == 3 for r in collector.reconstructed)


def test_collector_gc_bounds_memory():
    collector = PostcardCollector(retention=0.001)  # tiny horizon
    pm = PostcardMonitor(collector)
    pm.add_property(chain_property())
    for event in EVENTS:
        pm.observe(event)
    before = collector.stored_postcards
    dropped = collector.collect_garbage()
    after = collector.stored_postcards
    print(f"\ncollector GC: {before} -> {after} (dropped {dropped})")
    assert after < before


def test_postcard_bandwidth_tracks_advancements():
    pm, collector = run_postcards()
    # One card per stage reached: violating chains contribute 3, stalled 2.
    expected = EXPECTED_VIOLATIONS * 3 + (CHAINS - EXPECTED_VIOLATIONS) * 2
    assert collector.postcards_received == expected
