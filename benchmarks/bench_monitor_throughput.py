"""Experiment P5 — monitor engine throughput by property class.

Sec. 3.3 frames monitoring's cost as intrinsic: matching and state
requirements "go beyond even relatively new proposals for stateful
forwarding."  This bench quantifies the engine's event-processing rate for
each instance-identification class of Table 1 (exact / symmetric /
wandering / multiple match), plus the full Table-1 catalog loaded at once —
the per-event price of each matching discipline.

Each class also gets an ``_interpreted`` twin running the pre-dispatch
ablation (``match_strategy="interpreted"``: every property x stage walked
per event, guard dataclass trees interpreted).  The gap against the
default compiled dispatch plan is the payoff of building per-event-class
watcher lists and specialized guard closures at ``add_property`` time;
``test_compiled_dispatch_speedup`` asserts the full-catalog gap stays
above 2x.

``REPRO_BENCH_EVENTS`` overrides the stream length (CI smoke runs use a
reduced count).
"""

import os
import time

import pytest

from repro.core import Monitor
from repro.telemetry import MetricsRegistry, snapshot_digest
from repro.netsim.workload import l2_pairs, tcp_conversations
from repro.packet import arp_request, dhcp_packet, DhcpMessageType, ethernet, tcp_packet
from repro.props import (
    ArpKnowledge,
    arp_known_not_forwarded,
    build_table1,
    firewall_basic,
    knocking_invalidated,
    learned_unicast_port,
    link_down_clears_learning,
)
from repro.props.dhcp_arp import arp_cache_preloaded
from repro.switch.events import (
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketEgress,
)

NUM_EVENTS = int(os.environ.get("REPRO_BENCH_EVENTS", "1500"))


def mixed_event_stream():
    """Arrivals/egresses/OOB events exercising L2-L7 and all match kinds."""
    events = []
    t = 0.0
    for i in range(NUM_EVENTS // 5):
        src, dst = i % 40 + 1, (i * 3) % 40 + 1
        t += 1e-4
        events.append(PacketArrival(
            switch_id="s", time=t, packet=ethernet(src, dst), in_port=src % 4 + 1))
        t += 1e-4
        p = tcp_packet(src, dst, f"10.0.0.{src}", f"198.51.100.{dst}",
                       1000 + i % 100, 80)
        events.append(PacketArrival(switch_id="s", time=t, packet=p, in_port=1))
        t += 1e-4
        events.append(PacketEgress(
            switch_id="s", time=t, packet=p, out_port=2, in_port=1,
            action=EgressAction.UNICAST))
        t += 1e-4
        events.append(PacketArrival(
            switch_id="s", time=t,
            packet=arp_request(src, f"10.0.0.{src}", f"10.0.0.{dst}"),
            in_port=1))
        t += 1e-4
        if i % 37 == 0:
            events.append(OutOfBandEvent(
                switch_id="s", time=t, oob_kind=OobKind.PORT_DOWN, port=2))
        else:
            events.append(PacketEgress(
                switch_id="s", time=t,
                packet=dhcp_packet(src, DhcpMessageType.ACK,
                                   yiaddr=f"10.0.0.{100 + src}"),
                out_port=1, in_port=0, action=EgressAction.UNICAST))
    return events


EVENTS = mixed_event_stream()


def run_with(*props, registry=None, **monitor_kwargs):
    monitor = Monitor(registry=registry, **monitor_kwargs)
    for prop in props:
        monitor.add_property(prop)
    for event in EVENTS:
        monitor.observe(event)
    return monitor


def run_catalog(**monitor_kwargs):
    monitor = Monitor(**monitor_kwargs)
    for entry in build_table1():
        monitor.add_property(entry.prop)
    for event in EVENTS:
        monitor.observe(event)
    return monitor


def test_throughput_exact_match(benchmark):
    monitor = benchmark(lambda: run_with(knocking_invalidated()))
    assert monitor.stats.events == len(EVENTS)


def test_throughput_symmetric_match(benchmark):
    monitor = benchmark(lambda: run_with(firewall_basic()))
    assert monitor.stats.events == len(EVENTS)


def test_throughput_wandering_match(benchmark):
    monitor = benchmark(lambda: run_with(arp_cache_preloaded()))
    assert monitor.stats.events == len(EVENTS)


def test_throughput_multiple_match(benchmark):
    monitor = benchmark(lambda: run_with(link_down_clears_learning()))
    assert monitor.stats.events == len(EVENTS)


def test_throughput_learning_switch(benchmark):
    monitor = benchmark(lambda: run_with(learned_unicast_port()))
    assert monitor.stats.events == len(EVENTS)


def test_throughput_full_catalog(benchmark):
    """All thirteen Table-1 properties monitored simultaneously."""
    monitor = benchmark(run_catalog)
    assert monitor.stats.events == len(EVENTS)
    print(f"\nfull catalog: {monitor.stats.events} events, "
          f"{monitor.stats.instances_created} instances created, "
          f"{monitor.stats.violations} violations, "
          f"{monitor.stats.candidates_examined} candidates examined")


# ---------------------------------------------------------------------------
# Match-strategy ablation: interpreted twins of the class benchmarks above
# ---------------------------------------------------------------------------
def test_throughput_exact_match_interpreted(benchmark):
    monitor = benchmark(lambda: run_with(knocking_invalidated(),
                                         match_strategy="interpreted"))
    assert monitor.stats.events == len(EVENTS)


def test_throughput_symmetric_match_interpreted(benchmark):
    monitor = benchmark(lambda: run_with(firewall_basic(),
                                         match_strategy="interpreted"))
    assert monitor.stats.events == len(EVENTS)


def test_throughput_wandering_match_interpreted(benchmark):
    monitor = benchmark(lambda: run_with(arp_cache_preloaded(),
                                         match_strategy="interpreted"))
    assert monitor.stats.events == len(EVENTS)


def test_throughput_multiple_match_interpreted(benchmark):
    monitor = benchmark(lambda: run_with(link_down_clears_learning(),
                                         match_strategy="interpreted"))
    assert monitor.stats.events == len(EVENTS)


def test_throughput_full_catalog_interpreted(benchmark):
    """The headline ablation pair: compare to test_throughput_full_catalog."""
    monitor = benchmark(lambda: run_catalog(match_strategy="interpreted"))
    assert monitor.stats.events == len(EVENTS)


def run_catalog_batch(**monitor_kwargs):
    monitor = Monitor(**monitor_kwargs)
    for entry in build_table1():
        monitor.add_property(entry.prop)
    monitor.observe_batch(EVENTS)
    return monitor


def test_throughput_full_catalog_batch(benchmark):
    """The catalog again via observe_batch (replay's ingestion path)."""
    monitor = benchmark(run_catalog_batch)
    assert monitor.stats.events == len(EVENTS)


# ---------------------------------------------------------------------------
# Codegen twins: source-specialized matchers + columnar batches
# ---------------------------------------------------------------------------
def test_throughput_full_catalog_codegen(benchmark):
    """Full catalog under ``match_strategy="codegen"``, event at a time:
    one exec'd straight-line function per event class, field reads
    hoisted to locals, constants folded into compares."""
    monitor = benchmark(lambda: run_catalog(match_strategy="codegen"))
    assert monitor.stats.events == len(EVENTS)


def test_throughput_full_catalog_codegen_batch(benchmark):
    """The headline codegen pair: observe_batch transposes each chunk
    into ColumnarBatch columns, prefilters stage-0 creates vectorially,
    then drives the generated per-event evaluators off the columns.
    Compare to ``test_throughput_full_catalog_batch``."""
    monitor = benchmark(lambda: run_catalog_batch(match_strategy="codegen"))
    assert monitor.stats.events == len(EVENTS)


def _best_of(fn, rounds=3):
    """Min-of-N wall-clock seconds — the same noise discipline for every
    asserted gate in this file."""
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        monitor = fn()
        times.append(time.perf_counter() - start)
        assert monitor.stats.events == len(EVENTS)
    return min(times)


def test_compiled_dispatch_speedup():
    """The optimization's acceptance gate, asserted, not just printed:
    compiled dispatch processes the full catalog at >= 2x the interpreted
    rate.  Best-of-three timings to shrug off scheduler noise."""
    interpreted = _best_of(lambda: run_catalog(match_strategy="interpreted"))
    compiled = _best_of(run_catalog)
    speedup = interpreted / compiled
    print(f"\ncompiled dispatch speedup on full catalog: {speedup:.2f}x "
          f"({interpreted * 1e3:.1f}ms interpreted, "
          f"{compiled * 1e3:.1f}ms compiled)")
    assert speedup >= 2.0, (
        f"compiled dispatch only {speedup:.2f}x over interpreted"
    )


def _best_ingest(rounds=5, **monitor_kwargs):
    """Min-of-N seconds for ``observe_batch`` over the full catalog with
    the evaluator already built — a fresh monitor per round (state is
    cumulative), property registration and (for codegen) the one-time
    program generation/exec kept outside the timed region.  Returns
    ``(ingest_seconds, build_seconds)``; build is the codegen program's
    emit+exec cost, 0.0 for other strategies.
    """
    best = None
    build = 0.0
    for _ in range(rounds):
        monitor = Monitor(**monitor_kwargs)
        for entry in build_table1():
            monitor.add_property(entry.prop)
        if monitor_kwargs.get("match_strategy") == "codegen":
            start = time.perf_counter()
            monitor.codegen_source()  # forces the lazy program build
            build = max(build, time.perf_counter() - start)
        start = time.perf_counter()
        monitor.observe_batch(EVENTS)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
        assert monitor.stats.events == len(EVENTS)
    return best, build


def test_codegen_speedup():
    """The codegen backend's acceptance gate: generated matchers driving
    columnar batches ingest the full catalog at >= 1.5x the compiled
    closure-chain batch rate.  Steady-state throughput is what the gate
    prices, so the one-time program generation (a startup cost like any
    compiler's, ~20ms for the 13-property catalog) runs outside the
    timed region — and is measured and recorded alongside so the docs
    stay honest about it.  Best-of-five: the margin is tighter than the
    dispatch gate's, so buy more noise immunity.

    ``REPRO_BENCH_CODEGEN_OUT`` names a JSON file to record the measured
    numbers into (the checked-in record under ``benchmarks/records/`` is
    the source the docs speedup table renders from).
    """
    compiled, _ = _best_ingest()
    codegen, build = _best_ingest(match_strategy="codegen")
    speedup = compiled / codegen
    print(f"\ncodegen speedup on full catalog (observe_batch): "
          f"{speedup:.2f}x ({compiled * 1e3:.1f}ms compiled, "
          f"{codegen * 1e3:.1f}ms codegen, one-time program build "
          f"{build * 1e3:.1f}ms)")
    out_path = os.environ.get("REPRO_BENCH_CODEGEN_OUT")
    if out_path:
        import json
        with open(out_path, "w") as fp:
            json.dump({
                "experiment": "codegen_speedup",
                "num_events": len(EVENTS),
                "rounds": 5,
                "properties": len(build_table1()),
                "compiled_ms": round(compiled * 1e3, 1),
                "codegen_ms": round(codegen * 1e3, 1),
                "build_ms": round(build * 1e3, 1),
                "speedup": round(speedup, 2),
                "gate": 1.5,
            }, fp, indent=2, sort_keys=True)
            fp.write("\n")
    assert speedup >= 1.5, (
        f"codegen only {speedup:.2f}x over compiled observe_batch"
    )


def test_throughput_telemetry_disabled(benchmark):
    """Baseline half of the instrumentation-overhead pair: the default
    NullRegistry, where counters are loose cells and histograms no-ops."""
    monitor = benchmark(lambda: run_with(learned_unicast_port()))
    assert monitor.stats.events == len(EVENTS)


def test_throughput_telemetry_enabled(benchmark):
    """Full MetricsRegistry attached: labeled fan-out, histograms, peaks.

    Compare against ``test_throughput_telemetry_disabled`` — the gap is
    the per-event price of leaving telemetry on, which the registry's
    design keeps small enough to afford (cached instrument handles, no
    per-event dict lookups).
    """
    def run():
        # A fresh registry per round: benchmark() re-runs this many times
        # and counters are cumulative by design.
        return run_with(learned_unicast_port(), registry=MetricsRegistry())

    monitor = benchmark(run)
    assert monitor.stats.events == len(EVENTS)
    snap = monitor.registry.snapshot()
    assert any(m["name"] == "repro_monitor_events_total"
               for m in snap["metrics"])
    print(f"\n{snapshot_digest(monitor.registry)}")
