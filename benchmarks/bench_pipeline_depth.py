"""Experiment P1 (Sec. 3.3) — pipeline depth vs. active instances.

The paper: "Since Varanus isolates each instance in its own table, the
depth of the switch pipeline is no smaller than the number of active
instances, which is infeasible in practice", while bounding the tables
("static" Varanus) gives "in principle, a constant packet processing time,
at the expense of some expressivity."

We sweep the live-flow population and measure, for both backends:

* the pipeline depth (tables a packet must traverse), and
* the simulated per-event processing cost in lookup ticks.

Expected shape: Varanus linear in instances; Static Varanus flat.
"""

import pytest

from repro.backends import StaticVaranusBackend, VaranusBackend
from repro.backends.conformance import history_probe
from repro.packet import ethernet
from repro.switch.events import PacketArrival

FLOW_COUNTS = (10, 50, 200)


def populate(monitor, num_flows):
    """Create ``num_flows`` live instances (distinct stage-0 keys)."""
    for i in range(num_flows):
        monitor.observe(PacketArrival(
            switch_id="s", time=i * 1e-4,
            packet=ethernet(i + 1, 0xFFFF00 + i), in_port=1))
    monitor.advance_to(num_flows * 1e-4 + 1.0)  # split lag drains


def per_event_cost(monitor, probe_time):
    before = monitor.meter.lookup_ticks
    monitor.observe(PacketArrival(
        switch_id="s", time=probe_time,
        packet=ethernet(0xAAAAAA, 0xBBBBBB), in_port=1))
    return monitor.meter.lookup_ticks - before


def depth_series(backend_factory):
    series = []
    for flows in FLOW_COUNTS:
        monitor = backend_factory().compile(history_probe())
        populate(monitor, flows)
        cost = per_event_cost(monitor, flows * 1e-4 + 2.0)
        series.append((flows, monitor.pipeline_depth, cost))
    return series


def test_varanus_depth_linear_in_instances(benchmark):
    series = benchmark(lambda: depth_series(VaranusBackend))
    print("\nVaranus:  flows -> (depth, per-event lookup ticks)")
    for flows, depth, cost in series:
        print(f"  {flows:6d} -> depth {depth:6d}, cost {cost:8d}")
    depths = [d for _, d, _ in series]
    # Linear: depth tracks the instance population one-for-one (+1 base).
    for (flows, depth, _) in series:
        assert depth >= flows
    assert depths[-1] / depths[0] == pytest.approx(
        FLOW_COUNTS[-1] / FLOW_COUNTS[0], rel=0.2
    )


def test_static_varanus_depth_constant(benchmark):
    series = benchmark(lambda: depth_series(StaticVaranusBackend))
    print("\nStatic Varanus:  flows -> (depth, per-event lookup ticks)")
    for flows, depth, cost in series:
        print(f"  {flows:6d} -> depth {depth:6d}, cost {cost:8d}")
    depths = {d for _, d, _ in series}
    assert len(depths) == 1  # flat across the sweep
    costs = {c for _, _, c in series}
    assert len(costs) == 1


def test_compiled_rules_depth_matches_model(benchmark):
    """The cost model is not hypothetical: the real Varanus compiler
    (property -> recursive-learn rules) grows an actual switch pipeline by
    one table per unrolled instance, and per-packet lookups track depth."""
    from repro.backends.varanus_compiler import compile_property
    from repro.core import Bind, Const, EventPattern, FieldEq, Observe, PropertySpec, Var
    from repro.core.refs import EventKind
    from repro.netsim import EventScheduler
    from repro.packet import tcp_syn
    from repro.switch.match import MatchSpec
    from repro.switch.pipeline import MissPolicy
    from repro.switch.switch import Switch

    prop = PropertySpec(
        name="compiled-depth", description="",
        stages=(
            Observe("k1", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("tcp.dst", Const(7001)),),
                binds=(Bind("knocker", "ipv4.src"),))),
            Observe("k2", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("ipv4.src", Var("knocker")),
                        FieldEq("tcp.dst", Const(22))))),
        ),
        key_vars=("knocker",),
    )

    def run():
        switch = Switch("mon", EventScheduler(), num_ports=2, num_tables=1,
                        miss_policy=MissPolicy.FLOOD)
        compile_property(switch, prop)
        series = []
        for n in (10, 40):
            while switch.pipeline.depth - 1 < n:
                i = switch.pipeline.depth
                switch.receive(
                    tcp_syn(1, 2, f"10.0.{i // 250}.{i % 250 + 1}",
                            "10.0.0.99", 30000, 7001), 1)
            before = switch.meter.lookups
            switch.receive(
                tcp_syn(1, 2, "10.9.9.9", "10.0.0.99", 30000, 80), 1)
            series.append((n, switch.pipeline.depth, switch.meter.lookups - before))
        return series

    series = benchmark(run)
    print("\ncompiled Varanus rules: instances -> (pipeline depth, lookups/packet)")
    for n, depth, lookups in series:
        print(f"  {n:4d} -> depth {depth:4d}, lookups {lookups:4d}")
    (n1, d1, l1), (n2, d2, l2) = series
    assert d2 - d1 == n2 - n1  # one real table per instance
    assert l2 > l1  # per-packet lookups track the growth


def test_estimate_matches_measured_depth(benchmark):
    """The linter's static cost model against the backends' real depth.

    ``repro.lint.splitmode.estimate_cost`` predicts, per property, how
    many tables a packet traverses (``pipeline_tables``).  The Static
    Varanus backend's bounded layout is the thing that prediction models
    — so for every Table-1 catalog property the backend accepts, the
    estimate must equal the measured depth exactly.
    """
    from repro.backends import UnsupportedFeature
    from repro.lint.splitmode import estimate_cost
    from repro.props import build_table1

    def run():
        rows = []
        for entry in build_table1():
            est = estimate_cost(entry.prop)
            try:
                monitor = StaticVaranusBackend().compile(entry.prop)
                measured = monitor.pipeline_depth
            except UnsupportedFeature:
                measured = None  # the backend refuses; nothing to compare
            rows.append(
                (entry.prop.name, est.pipeline_tables, measured, est.model))
        return rows

    rows = benchmark(run)
    print("\nlinter estimate vs measured Static-Varanus depth (tables)")
    for name, est, measured, model in rows:
        shown = f"{measured:3d}" if measured is not None else "  -"
        print(f"  {name:<28} est {est:3d}  measured {shown}  [{model}]")
    compared = [(n, e, m) for n, e, m, _ in rows if m is not None]
    assert compared, "no catalog property compiled on Static Varanus"
    for name, est, measured in compared:
        assert est == measured, (
            f"{name}: estimate {est} != measured {measured}")


def test_estimate_matches_compiler_rule_plan(benchmark):
    """The calibrated cost model against the compiler's emitted plans.

    For every rule-compilable property — the calibration corpus plus any
    Table-1 catalog row ``check_compilable`` accepts — the estimator's
    tables/rules/flow-mods per instance must equal what
    ``plan_property`` counts off the rule plan ``compile_property``
    actually emits, and the checked-in calibration table must agree.
    """
    from repro.backends.varanus_compiler import plan_property
    from repro.lint.calibration import calibration_corpus, measured_cost
    from repro.lint.splitmode import estimate_cost

    def run():
        rows = []
        for prop in calibration_corpus():
            est = estimate_cost(prop)
            plan = plan_property(prop)
            rows.append((prop.name, est, plan, measured_cost(prop.name)))
        return rows

    rows = benchmark(run)
    print("\nestimated vs compiler-measured rule plans, per instance")
    print(f"  {'property':<20} {'tables':>13} {'rules':>13} {'flow-mods':>13}")
    for name, est, plan, _ in rows:
        print(
            f"  {name:<20}"
            f" {est.instance_tables:5d}/{plan.instance_tables:<7d}"
            f" {est.rules_per_instance:5d}/{plan.rules_per_instance:<7d}"
            f" {est.slow_updates_per_instance:5d}/"
            f"{plan.flow_mods_per_instance:<7d}"
        )
    print("  (columns are estimated/measured)")
    assert rows, "calibration corpus is empty"
    for name, est, plan, table_row in rows:
        assert est.model == "rules", f"{name}: not rule-compilable"
        assert est.instance_tables == plan.instance_tables, name
        assert est.rules_per_instance == plan.rules_per_instance, name
        assert est.slow_updates_per_instance == \
            plan.flow_mods_per_instance, name
        assert table_row is not None, (
            f"{name}: missing from CALIBRATION — "
            "run python -m tests.regen_calibration")
        assert est.measured == table_row, name


def test_crossover_varanus_costlier_beyond_stage_count(benchmark):
    """The crossover the paper implies: Varanus beats nothing on cost —
    as soon as instances exceed the property's stage count, its per-event
    cost exceeds the static pipeline's."""

    def run():
        out = {}
        for name, factory in (("varanus", VaranusBackend),
                              ("static", StaticVaranusBackend)):
            monitor = factory().compile(history_probe())
            populate(monitor, 100)
            out[name] = per_event_cost(monitor, 100.0)
        return out

    costs = benchmark(run)
    print(f"\nper-event cost at 100 live instances: {costs}")
    assert costs["varanus"] > 10 * costs["static"]
