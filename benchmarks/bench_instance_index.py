"""Experiment P6 (ablation) — why instance identification is a design axis.

Sec. 3.2: "Monitoring can require subtly different criteria for mapping
packets to states" — the approaches differ precisely in *how* an event
finds its instance (indexed state tables, hash functions, per-instance
tables).  This ablation contrasts the engine's hash-indexed instance store
with a linear scan as the live-instance population grows: the indexed
store's candidate examinations stay flat per event, the scan's grow
linearly — the same asymmetry that separates OpenState-style indexed state
from Varanus's scan-all-tables pipeline.
"""

import pytest

from repro.core import Monitor
from repro.packet import ethernet
from repro.props import firewall_basic
from repro.switch.events import PacketArrival, PacketDrop
from repro.packet import tcp_packet

POPULATIONS = (50, 200, 800)


def drive(strategy, population, registry=None):
    """Create ``population`` firewall instances, then probe with events
    that must be checked against the stage-1 waiting set."""
    monitor = Monitor(store_strategy=strategy, registry=registry)
    monitor.add_property(firewall_basic())
    t = 0.0
    for i in range(population):
        t += 1e-4
        monitor.observe(PacketArrival(
            switch_id="s", time=t,
            packet=tcp_packet(1, 2, f"10.0.{i // 250}.{i % 250 + 1}",
                              "198.51.100.9", 1000, 80),
            in_port=1))
    before = monitor.stats.candidates_examined
    probes = 50
    for i in range(probes):
        t += 1e-4
        monitor.observe(PacketDrop(
            switch_id="s", time=t,
            packet=tcp_packet(2, 1, "198.51.100.9",
                              f"10.0.9.{i + 1}", 80, 1000),
            in_port=2, reason="x"))
    per_event = (monitor.stats.candidates_examined - before) / probes
    return per_event


def test_indexed_store_flat_examinations(benchmark):
    def sweep():
        return [(n, drive("indexed", n)) for n in POPULATIONS]

    series = benchmark(sweep)
    print("\nindexed store: population -> candidates examined per event")
    for n, per_event in series:
        print(f"  {n:6d} -> {per_event:8.1f}")
    assert all(per_event <= 1.0 for _, per_event in series)


def test_linear_store_examinations_grow(benchmark):
    def sweep():
        return [(n, drive("linear", n)) for n in POPULATIONS]

    series = benchmark(sweep)
    print("\nlinear store: population -> candidates examined per event")
    for n, per_event in series:
        print(f"  {n:6d} -> {per_event:8.1f}")
    # Linear in population (the probes miss, so every instance is checked).
    assert series[-1][1] / series[0][1] == pytest.approx(
        POPULATIONS[-1] / POPULATIONS[0], rel=0.1
    )


def test_same_verdicts_both_stores():
    """The ablation changes cost only — replays must agree (spot check;
    the hypothesis suite proves this on random streams)."""
    from repro.switch.events import PacketDrop

    def verdicts(strategy):
        monitor = Monitor(store_strategy=strategy)
        monitor.add_property(firewall_basic())
        out = tcp_packet(1, 2, "10.0.0.1", "198.51.100.9", 1000, 80)
        back = tcp_packet(2, 1, "198.51.100.9", "10.0.0.1", 80, 1000)
        monitor.observe(PacketArrival(switch_id="s", time=0.0, packet=out,
                                      in_port=1))
        monitor.observe(PacketDrop(switch_id="s", time=1.0, packet=back,
                                   in_port=2, reason="x"))
        return [(v.property_name, v.time) for v in monitor.violations]

    assert verdicts("indexed") == verdicts("linear")


def test_wallclock_gap_at_scale(benchmark, bench_registry):
    """Wall-clock confirmation of the asymptotic gap at the largest
    population."""

    def indexed():
        return drive("indexed", POPULATIONS[-1], registry=bench_registry)

    benchmark(indexed)
