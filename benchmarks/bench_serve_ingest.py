"""Experiment S1 — live ingest throughput vs. the direct hot path.

``repro serve`` puts a socket, a JSON parse, a bounded queue, and an
event loop between the wire and ``observe_batch``.  This bench prices
that plumbing: the same recorded trace is (a) dispatched straight into
a catalog monitor via ``observe_batch`` — the replay upper bound — and
(b) streamed over a real TCP socket into a running :class:`ServeDaemon`
until the monitor has observed every event.  Alongside the two
events/sec figures it captures the ingest queue-depth histogram
(``repro_serve_queue_depth_at_enqueue``), which shows how deep the
backlog actually ran while the flood was in progress.

Results land in ``BENCH_serve.json`` next to the working directory so
CI can archive them.  ``REPRO_BENCH_EVENTS`` reduces the stream length
for smoke runs.
"""

import json
import os
import time

from repro.netsim import TraceRecorder, single_switch_network
from repro.netsim.serialize import read_trace, save_trace
from repro.netsim.workload import l2_pairs, send_all
from repro.resilience import build_monitor
from repro.serve import ServeConfig, ServeDaemon, serve_in_thread, stream_trace
from repro.switch.pipeline import MissPolicy

NUM_EVENTS = int(os.environ.get("REPRO_BENCH_EVENTS", "1500"))
OUT_PATH = os.environ.get("REPRO_BENCH_SERVE_OUT", "BENCH_serve.json")


def record_trace(path):
    """A learning-switch trace of roughly NUM_EVENTS tap events."""
    from repro.apps import LearningSwitchApp, sometimes

    hosts_n = 8
    packets = max(20, NUM_EVENTS // 3)
    net, switch, hosts = single_switch_network(
        hosts_n, switch_kwargs={"miss_policy": MissPolicy.CONTROLLER})
    switch.set_app(LearningSwitchApp(faults=sometimes("wrong_port", 0.1,
                                                      seed=5)))
    recorder = TraceRecorder()
    switch.add_tap(recorder)
    send_all(hosts, l2_pairs(hosts_n, packets, seed=5))
    net.run()
    save_trace(recorder.events, path)
    return len(recorder.events)


def wait_until(predicate, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def test_serve_ingest_vs_direct(tmp_path):
    trace_path = str(tmp_path / "bench-trace.jsonl")
    total = record_trace(trace_path)
    events = read_trace(trace_path)
    assert len(events) == total

    # (a) Direct: the replay upper bound, no sockets, no queue.
    direct_monitor = build_monitor()
    start = time.perf_counter()
    direct_monitor.observe_batch(events)
    direct_elapsed = time.perf_counter() - start
    direct_eps = total / direct_elapsed if direct_elapsed > 0 else float("inf")

    # (b) Live: flood the daemon over TCP, stop the clock when the
    # monitor has seen everything.  Tracing off and a long poll interval
    # keep this a measurement of the ingest plumbing itself.
    daemon = ServeDaemon(ServeConfig(
        port=0, ingest=("tcp:0",), poll_interval=30.0, trace_buffer=0,
        max_queue=max(4096, total)))
    handle = serve_in_thread(daemon)
    start = time.perf_counter()
    result = stream_trace(trace_path, "127.0.0.1", daemon.ingest_ports[0],
                          rate=0)
    assert wait_until(lambda: daemon.monitor.stats.events >= total)
    serve_elapsed = time.perf_counter() - start
    serve_eps = total / serve_elapsed if serve_elapsed > 0 else float("inf")

    depth_hist = daemon.registry.histogram(
        "repro_serve_queue_depth_at_enqueue")
    depth_buckets = [[le, n] for le, n in depth_hist.cumulative()]
    report = handle.stop()

    assert result.events == total
    assert report.events_ingested == total
    assert report.events_observed == total
    assert report.events_shed == 0

    payload = {
        "events": total,
        "direct": {"seconds": direct_elapsed, "events_per_sec": direct_eps},
        "serve": {"seconds": serve_elapsed, "events_per_sec": serve_eps,
                  "send_achieved_rate": result.achieved_rate},
        "overhead_ratio": (direct_eps / serve_eps if serve_eps else None),
        "queue_depth_at_enqueue": {
            "buckets": [[("+Inf" if le == float("inf") else le), n]
                        for le, n in depth_buckets],
            "max": depth_hist.max,
            "mean": (depth_hist.sum / depth_hist.count
                     if depth_hist.count else None),
        },
        "final_report": report.to_dict(),
    }
    with open(OUT_PATH, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"\ndirect {direct_eps:,.0f} ev/s | serve {serve_eps:,.0f} ev/s "
          f"| ratio {direct_eps / serve_eps:.1f}x "
          f"| peak queue depth {depth_hist.max}")
