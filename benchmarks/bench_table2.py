"""Experiment T2 — regenerate Table 2.

Run the conformance harness (feature probes against every backend's
executable capability model) and compare against the paper's table.  The
benchmark times one full conformance sweep — every probe compiles (or is
rejected by) every backend and, where it compiles, replays a witness trace
to confirm detection.
"""

import pytest

from repro.backends import build_table2, diff_against_paper, render_table2


def test_table2_reproduces_paper(benchmark):
    table = benchmark(build_table2)

    print("\n=== Table 2 (computed from backend probes) ===")
    print(render_table2(table))

    diffs = diff_against_paper(table)
    assert diffs == [], diffs
    print("\nall 13 rows x 7 approaches match the paper cell-for-cell")


def test_probe_outcomes_are_executable(benchmark):
    """Every ✓ cell in the semantic rows was earned by an actual violation
    detection, not by metadata — re-run the probes standalone."""
    from repro.backends import PROBES, all_backends, run_probe

    def sweep():
        results = {}
        for backend in all_backends():
            for probe in PROBES:
                results[(backend.caps.name, probe.row)] = run_probe(
                    backend, probe
                )
        return results

    results = benchmark(sweep)
    # Varanus earns Y on every probe by detecting each witness trace.
    varanus_cells = [v for (name, _), v in results.items() if name == "Varanus"]
    assert all(c == "Y" for c in varanus_cells)
