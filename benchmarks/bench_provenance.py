"""Experiment P4 (Feature 10 / Sec. 3.2) — provenance cost.

The paper: "recording each packet that advances an observation is not
feasible", but "limited provenance could be recovered without added cost:
since some header information is retained for matching purposes, those
values could be conveyed along with the final event."

We measure, per provenance level (NONE / LIMITED / FULL), on a
violation-heavy workload:

* event-processing wall-clock (FULL pays per-stage recording),
* retained provenance objects (FULL holds whole events; LIMITED tiny
  summaries; NONE nothing),
* and confirm LIMITED still delivers the bound values "for free".
"""

import pytest

from repro.core import Bind, EventKind, EventPattern, FieldEq, Monitor, Observe, PropertySpec, ProvenanceLevel, Var
from repro.packet import ethernet
from repro.switch.events import PacketArrival

NUM_CHAINS = 300


def chain_property(stages=4):
    """A property with several positive stages, to deepen provenance."""
    specs = [
        Observe("s0", EventPattern(kind=EventKind.ARRIVAL,
                                   binds=(Bind("S", "eth.src"),)))
    ]
    for i in range(1, stages):
        specs.append(Observe(
            f"s{i}",
            EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("eth.src", Var("S")),
                        FieldEq("eth.type", _const_for(i))),
            ),
        ))
    return PropertySpec(name="chain", description="", stages=tuple(specs),
                        key_vars=("S",))


def _const_for(i):
    from repro.core import Const

    return Const(0x9000 + i)


def drive(level, stages=4, registry=None):
    monitor = Monitor(provenance=level, registry=registry)
    monitor.add_property(chain_property(stages))
    t = 0.0
    for chain in range(NUM_CHAINS):
        src = chain + 1
        monitor.observe(PacketArrival(
            switch_id="s", time=t, packet=ethernet(src, 2), in_port=1))
        t += 1e-4
        for i in range(1, stages):
            monitor.observe(PacketArrival(
                switch_id="s", time=t,
                packet=ethernet(src, 2, ethertype=0x9000 + i), in_port=1))
            t += 1e-4
    return monitor


@pytest.mark.parametrize("level", [ProvenanceLevel.NONE,
                                   ProvenanceLevel.LIMITED,
                                   ProvenanceLevel.FULL])
def test_provenance_level_throughput(benchmark, level, bench_registry):
    monitor = benchmark.pedantic(
        lambda: drive(level, registry=bench_registry), rounds=5, iterations=1
    )
    assert len(monitor.violations) == NUM_CHAINS


def test_retained_history_scales_with_level():
    results = {}
    for level in ProvenanceLevel:
        monitor = drive(level)
        histories = [len(v.history) for v in monitor.violations]
        full_events = sum(
            1 for v in monitor.violations for r in v.history
            if r.event is not None
        )
        results[level] = (sum(histories), full_events)
    print(f"\nretained (records, whole-events) per level: "
          f"{ {k.value: v for k, v in results.items()} }")
    assert results[ProvenanceLevel.NONE] == (0, 0)
    records_limited, events_limited = results[ProvenanceLevel.LIMITED]
    records_full, events_full = results[ProvenanceLevel.FULL]
    assert records_limited == records_full  # same per-stage record count
    assert events_limited == 0              # ...but no events retained
    assert events_full == records_full      # FULL keeps every event


def test_limited_provenance_is_free_match_state():
    """LIMITED conveys the values already held for matching: every
    violation carries its bound variables even with no event history."""
    monitor = drive(ProvenanceLevel.LIMITED)
    for v in monitor.violations:
        assert "S" in v.bindings
        assert all(r.summary for r in v.history)


def test_full_provenance_grows_with_chain_length():
    short = drive(ProvenanceLevel.FULL, stages=2)
    long = drive(ProvenanceLevel.FULL, stages=6)
    short_records = sum(len(v.history) for v in short.violations)
    long_records = sum(len(v.history) for v in long.violations)
    print(f"\nFULL records: 2-stage={short_records} 6-stage={long_records}")
    assert long_records == 3 * short_records  # 6 records vs 2 per chain
