"""Property-based tests: monitor-engine invariants.

The heavyweight one is store equivalence: the hash-indexed instance store
must produce exactly the same violations as the brute-force linear store on
arbitrary event streams — the indexed store is an optimization, never a
semantic change.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Bind,
    EventKind,
    EventPattern,
    FieldEq,
    FieldNe,
    Monitor,
    Observe,
    PropertySpec,
    Var,
)
from repro.netsim.scheduler import EventScheduler
from repro.packet import MACAddress, ethernet
from repro.switch.events import (
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketEgress,
)

# A small universe of addresses keeps collisions (and thus instance
# interactions) frequent.
addr = st.integers(min_value=1, max_value=5)


@st.composite
def event_streams(draw, max_events=30):
    """Random time-ordered streams of arrivals/egresses/OOB events.

    Egress events sometimes reuse a previously-arrived packet (same uid),
    so same_packet stages — and the index's uid keys across refreshes —
    get exercised.
    """
    n = draw(st.integers(min_value=1, max_value=max_events))
    events = []
    seen_packets = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.001, max_value=2.0))
        kind = draw(st.sampled_from(["arrival", "egress", "oob"]))
        if kind == "oob":
            events.append(OutOfBandEvent(
                switch_id="s", time=t, oob_kind=OobKind.PORT_DOWN,
                port=draw(addr)))
            continue
        if kind == "egress" and seen_packets and draw(st.booleans()):
            packet = draw(st.sampled_from(seen_packets))  # identity reuse
        else:
            packet = ethernet(draw(addr), draw(addr))
        if kind == "arrival":
            events.append(PacketArrival(switch_id="s", time=t, packet=packet,
                                        in_port=draw(addr)))
            seen_packets.append(packet)
        else:
            events.append(PacketEgress(
                switch_id="s", time=t, packet=packet, out_port=draw(addr),
                in_port=draw(addr), action=EgressAction.UNICAST))
    return events


def catalog_of_probe_properties():
    """A mix of property shapes: timed, negative-matching, OOB, identity."""
    return [
        PropertySpec(
            name="echo", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.dst", Var("S")),))),
            ),
            key_vars=("S",),
        ),
        PropertySpec(
            name="timed", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldEq("eth.dst", Var("S")),)), within=3.0),
            ),
            key_vars=("S",),
        ),
        PropertySpec(
            name="neg", description="",
            stages=(
                Observe("a", EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("S", "eth.src"), Bind("D", "eth.dst")))),
                Observe("b", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.src", Var("S")),
                            FieldNe("eth.dst", Var("D"))))),
            ),
            key_vars=("S",),
        ),
        PropertySpec(
            name="ident", description="",
            stages=(
                Observe("a", EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.EGRESS, same_packet_as="a")),
            ),
            key_vars=("S",),
        ),
        PropertySpec(
            name="oobp", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("down", EventPattern(kind=EventKind.OOB,
                                             oob_kind=OobKind.PORT_DOWN)),
                Observe("b", EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldEq("eth.dst", Var("S")),))),
            ),
            key_vars=("S",),
        ),
    ]


def run_with_store(events, strategy):
    monitor = Monitor(store_strategy=strategy)
    for prop in catalog_of_probe_properties():
        monitor.add_property(prop)
    for event in events:
        monitor.observe(event)
    monitor.advance_to(events[-1].time + 100.0)
    return [
        (v.property_name, round(v.time, 9), tuple(sorted(
            (k, str(val)) for k, val in v.bindings.items())))
        for v in monitor.violations
    ]


class TestStoreEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(event_streams())
    def test_indexed_equals_linear(self, events):
        """The ablation invariant: index vs scan — identical verdicts."""
        assert run_with_store(events, "indexed") == run_with_store(
            events, "linear"
        )


class TestEngineInvariants:
    @settings(max_examples=50, deadline=None)
    @given(event_streams())
    def test_no_live_instance_past_deadline(self, events):
        monitor = Monitor()
        for prop in catalog_of_probe_properties():
            monitor.add_property(prop)
        for event in events:
            monitor.observe(event)
            for name in ("echo", "timed", "neg", "ident", "oobp"):
                for inst in monitor.store(name).all():
                    if inst.deadline is not None:
                        assert inst.deadline > event.time - 1e-9

    @settings(max_examples=50, deadline=None)
    @given(event_streams())
    def test_violation_times_monotone(self, events):
        monitor = Monitor()
        for prop in catalog_of_probe_properties():
            monitor.add_property(prop)
        for event in events:
            monitor.observe(event)
        times = [v.time for v in monitor.violations]
        assert times == sorted(times)

    @settings(max_examples=50, deadline=None)
    @given(event_streams())
    def test_stats_consistency(self, events):
        monitor = Monitor()
        for prop in catalog_of_probe_properties():
            monitor.add_property(prop)
        for event in events:
            monitor.observe(event)
        stats = monitor.stats
        assert stats.events == len(events)
        live = monitor.live_instances()
        retired = (stats.violations + stats.instances_expired
                   + stats.instances_discharged + stats.instances_cancelled)
        assert stats.instances_created == live + retired

    @settings(max_examples=40, deadline=None)
    @given(event_streams(), st.floats(min_value=0.0001, max_value=0.1))
    def test_split_mode_never_crashes_and_converges(self, events, lag):
        """Split mode may report different (lagged) verdicts, but it must
        never error and, given quiet time, drains all pending work."""
        from repro.switch.switch import ProcessingMode

        monitor = Monitor(mode=ProcessingMode.SPLIT, split_lag=lag)
        for prop in catalog_of_probe_properties():
            monitor.add_property(prop)
        for event in events:
            monitor.observe(event)
        monitor.advance_to(events[-1].time + 100.0)
        assert monitor._pending == []

    @settings(max_examples=40, deadline=None)
    @given(event_streams())
    def test_split_with_huge_lag_sees_nothing(self, events):
        """With a lag longer than the trace, no state ever materializes in
        time, so no multi-stage violation can fire during the trace."""
        from repro.switch.switch import ProcessingMode

        monitor = Monitor(mode=ProcessingMode.SPLIT, split_lag=1e6)
        for prop in catalog_of_probe_properties():
            monitor.add_property(prop)
        for event in events:
            monitor.observe(event)
        assert monitor.violations == []


class TestSchedulerProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0),
                    min_size=1, max_size=50))
    def test_events_fire_in_time_order(self, times):
        sched = EventScheduler()
        fired = []
        for when in times:
            sched.call_at(when, lambda w=when: fired.append(w))
        sched.run()
        assert fired == sorted(times)
        assert sched.clock.now() == max(times)
