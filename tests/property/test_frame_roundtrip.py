"""Property-based tests: the framed batch encoding round-trips every
recorded event kind — including the TimerFired instance keys carrying
addresses and enums that the plain JSONL path used to flatten into
strings (the gap the fabric's IPC transport surfaced)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.serialize import (
    FRAME_MAGIC,
    TraceFormatError,
    decode_frames,
    dump_trace,
    encode_frames,
    event_from_dict,
    event_to_dict,
    load_trace,
)
from repro.packet import IPv4Address, MACAddress, arp_request, tcp_packet
from repro.switch.events import (
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
    TimerFired,
)

macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MACAddress)
ips = st.integers(min_value=0, max_value=(1 << 32) - 1).map(IPv4Address)
ports = st.integers(min_value=0, max_value=65535)
times = st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False)
switch_ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=8)

packets = st.one_of(
    st.tuples(st.integers(0, 7), st.integers(0, 7), ips, ips, ports, ports)
    .map(lambda t: tcp_packet(t[0], t[1], str(t[2]), str(t[3]), t[4], t[5])),
    st.tuples(st.integers(0, 7), ips, ips)
    .map(lambda t: arp_request(t[0], str(t[1]), str(t[2]))),
)

#: every scalar type an instance key can carry across the wire
key_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 62), max_value=1 << 62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    ips,
    macs,
    st.sampled_from(list(EgressAction)),
    st.sampled_from(list(OobKind)),
)

arrivals = st.builds(
    PacketArrival, switch_id=switch_ids, time=times, packet=packets,
    in_port=st.integers(0, 64))
egresses = st.builds(
    PacketEgress, switch_id=switch_ids, time=times, packet=packets,
    in_port=st.integers(0, 64), out_port=st.integers(0, 64),
    action=st.sampled_from(list(EgressAction)))
drops = st.builds(
    PacketDrop, switch_id=switch_ids, time=times, packet=packets,
    in_port=st.integers(0, 64), reason=st.text(max_size=16))
oobs = st.builds(
    OutOfBandEvent, switch_id=switch_ids, time=times,
    oob_kind=st.sampled_from(list(OobKind)),
    port=st.one_of(st.none(), st.integers(0, 64)))
timers = st.builds(
    TimerFired, switch_id=switch_ids, time=times,
    timer_id=st.text(max_size=12),
    instance_key=st.tuples() | st.tuples(key_scalars)
    | st.tuples(key_scalars, key_scalars)
    | st.tuples(key_scalars, key_scalars, key_scalars))

events = st.one_of(arrivals, egresses, drops, oobs, timers)


def assert_same_event(left, right):
    assert type(left) is type(right)
    assert left.switch_id == right.switch_id
    assert left.time == right.time
    packet = getattr(left, "packet", None)
    if packet is not None:
        assert right.packet.uid == packet.uid
        assert right.packet.headers == packet.headers
    if isinstance(left, TimerFired):
        assert right.instance_key == left.instance_key
        for a, b in zip(left.instance_key, right.instance_key):
            assert type(a) is type(b), (a, b)


class TestFrameRoundtrip:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(events, max_size=12))
    def test_encode_decode_identity(self, batch):
        decoded = decode_frames(encode_frames(batch))
        assert len(decoded) == len(batch)
        for original, restored in zip(batch, decoded):
            assert_same_event(original, restored)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(events, max_size=8))
    def test_framed_and_jsonl_agree(self, batch):
        """Both wire formats produce the same event dicts."""
        import io

        fp = io.StringIO()
        dump_trace(batch, fp)
        fp.seek(0)
        via_jsonl = load_trace(fp)
        via_frames = decode_frames(encode_frames(batch))
        assert ([event_to_dict(e) for e in via_jsonl]
                == [event_to_dict(e) for e in via_frames])

    @settings(max_examples=60, deadline=None)
    @given(events)
    def test_event_dict_roundtrip_preserves_types(self, event):
        restored = event_from_dict(
            json.loads(json.dumps(event_to_dict(event))))
        assert_same_event(event, restored)


class TestFrameErrors:
    def test_bad_magic_rejected(self):
        with pytest.raises(TraceFormatError, match="magic"):
            decode_frames(b'{"kind": "TraceHeader"}\n')

    def test_truncated_payload_rejected(self):
        blob = encode_frames([OutOfBandEvent(
            switch_id="s", time=1.0, oob_kind=OobKind.PORT_UP, port=1)])
        with pytest.raises(TraceFormatError, match="truncated"):
            decode_frames(blob[:-3])

    def test_trailing_garbage_rejected(self):
        blob = encode_frames([])
        assert blob == FRAME_MAGIC + b"\x00\x00\x00\x00"
        with pytest.raises(TraceFormatError, match="trailing"):
            decode_frames(blob + b"xx")

    def test_unknown_key_tag_rejected(self):
        blob = json.dumps({
            "kind": "TimerFired", "switch": "s", "time": 1.0,
            "timer_id": "t", "instance_key": [{"t": "nope", "v": "x"}]})
        framed = FRAME_MAGIC + b"\x00\x00\x00\x01" \
            + len(blob).to_bytes(4, "big") + blob.encode()
        with pytest.raises(TraceFormatError, match="unknown key element"):
            decode_frames(framed)

    def test_unencodable_key_rejected(self):
        event = TimerFired(switch_id="s", time=1.0, timer_id="t",
                           instance_key=((1, 2),))
        with pytest.raises(TraceFormatError, match="no\\s+trace encoding"):
            encode_frames([event])
