"""Property-based tests: the linter never crashes.

Whatever the input — arbitrary junk text, randomly assembled but
syntactically valid sources, or every specification the catalog can
produce rendered back to DSL text — ``lint_source`` must return a
:class:`~repro.lint.engine.FileReport`; parse failures are diagnostics,
never exceptions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import format_property
from repro.lint import RULES, FileReport, Severity, lint_source

FIELDS = st.sampled_from([
    "eth.src", "eth.dst", "eth.type", "ipv4.src", "ipv4.dst", "ipv4.ttl",
    "tcp.dst", "udp.src", "in_port", "out_port", "dhcp.xid",
    "made.up.field", "nope",
])
KINDS = st.sampled_from(["arrival", "egress", "drop", "packet"])
NAMES = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
VALUES = st.one_of(
    st.integers(min_value=-10, max_value=1 << 40).map(str),
    st.sampled_from(["$D", "$X", "10.0.0.1", "ff:ff:ff:ff:ff:ff", '"s"']),
)


@st.composite
def stage_sources(draw, index):
    negative = index > 0 and draw(st.booleans())
    keyword = "absent" if negative else "observe"
    name = draw(NAMES)
    kind = draw(KINDS)
    lines = [f"{keyword} s{index}_{name} : {kind}"
             + (f" within {draw(st.floats(-1, 5, allow_nan=False)):g}"
                if negative or draw(st.booleans()) else "")]
    if draw(st.booleans()):
        lines.append(f"    bind D = {draw(FIELDS)}")
    for _ in range(draw(st.integers(0, 2))):
        op = draw(st.sampled_from(["==", "!="]))
        lines.append(f"    where {draw(FIELDS)} {op} {draw(VALUES)}")
    if index > 0 and draw(st.booleans()):
        lines.append(f"    unless {draw(KINDS)} where "
                     f"{draw(FIELDS)} == {draw(VALUES)}")
    return "\n".join(lines)


@st.composite
def property_sources(draw):
    count = draw(st.integers(1, 3))
    stages = "\n".join(draw(stage_sources(i)) for i in range(count))
    key = "key D\n" if draw(st.booleans()) else ""
    return f'property p "generated"\n{key}{stages}\n'


class TestLinterNeverCrashes:
    @given(st.text(max_size=300))
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_text(self, text):
        report = lint_source(text)
        assert isinstance(report, FileReport)
        # junk either parses (possibly to zero findings) or produces an
        # L000 diagnostic with a position, never an exception
        for diag in report.diagnostics:
            assert diag.code == "L000"
            assert diag.severity is Severity.ERROR

    @given(property_sources())
    @settings(max_examples=120, deadline=None)
    def test_generated_sources(self, source):
        report = lint_source(source)
        assert isinstance(report, FileReport)
        for diag in report.all_diagnostics():
            assert diag.code in RULES

    def test_every_catalog_spec_rendered_back_to_dsl(self):
        from repro.props import build_table1, worked_examples

        specs = [e.prop for e in build_table1()] + list(worked_examples())
        assert specs
        for spec in specs:
            source, predicates = format_property(spec)
            report = lint_source(source, predicates)
            assert isinstance(report, FileReport)
            assert report.properties, spec.name
            # formatted catalog output must elaborate cleanly
            assert report.properties[0].spec is not None, spec.name
