"""Property-based tests for the taint pass (repro.lint.taint).

The load-bearing invariant is *monotonicity under guard strengthening*:
adding conjuncts to a ``where`` clause can only pin more, never less, so
a variable's taint label may fall (attacker-controlled -> trusted ->
constant) but never rise, and the worst-case instance bound may shrink
but never grow.  The lint's L017 verdict is trustworthy exactly because
an author cannot *worsen* a property's taint by guarding it harder.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_one
from repro.lint.taint import analyze_taint, label_rank

#: (field, literal) pairs an equality guard can pin — typed so the
#: generated sources stay parseable and value-comparable
PINNABLE = [
    ("ipv4.src", "10.0.0.1"),
    ("ipv4.dst", "10.0.0.2"),
    ("tcp.src", "4242"),
    ("tcp.dst", "22"),
    ("udp.src", "5353"),
    ("in_port", "3"),
    ("dhcp.xid", "7"),
]

BINDABLE = [field for field, _ in PINNABLE]


@st.composite
def stage0_cases(draw):
    """(base source, strengthened source) differing only by extra
    stage-0 equality guards."""
    bind_fields = draw(st.lists(
        st.sampled_from(BINDABLE), min_size=1, max_size=3, unique=True))
    binds = ", ".join(
        f"V{i} = {field}" for i, field in enumerate(bind_fields))
    base_pins = draw(st.lists(
        st.sampled_from(PINNABLE), max_size=2, unique_by=lambda p: p[0]))
    extra_pins = draw(st.lists(
        st.sampled_from(PINNABLE), min_size=1, max_size=3,
        unique_by=lambda p: p[0]))

    def source(pins):
        guards = [f"{field} == {value}" for field, value in pins]
        where = (f"    where {' and '.join(guards)}\n" if guards else "")
        return (
            f'property p "generated"\n'
            f"key {', '.join(f'V{i}' for i in range(len(bind_fields)))}\n"
            f"observe a : arrival\n"
            f"{where}"
            f"    bind {binds}\n"
            f"observe b : arrival\n"
            f"    where tcp.dst == 1\n"
        )

    # strengthening = the base guards plus at least one more conjunct
    merged = {field: value for field, value in base_pins}
    for field, value in extra_pins:
        merged.setdefault(field, value)
    return source(base_pins), source(sorted(merged.items()))


class TestMonotonicity:
    @given(stage0_cases())
    @settings(max_examples=200, deadline=None)
    def test_strengthening_never_raises_a_label(self, case):
        base_src, strong_src = case
        base = analyze_taint(parse_one(base_src))
        strong = analyze_taint(parse_one(strong_src))
        for var, taint in strong.labels.items():
            assert label_rank(taint.label) <= label_rank(
                base.labels[var].label), (
                f"${var} rose from {base.labels[var].label} to "
                f"{taint.label} when guards were added")

    @given(stage0_cases())
    @settings(max_examples=200, deadline=None)
    def test_strengthening_never_grows_the_bound(self, case):
        base_src, strong_src = case
        base = analyze_taint(parse_one(base_src))
        strong = analyze_taint(parse_one(strong_src))
        assert strong.instance_bound <= base.instance_bound

    @given(stage0_cases())
    @settings(max_examples=100, deadline=None)
    def test_key_label_tracks_the_max_key_var(self, case):
        for src in case:
            report = analyze_taint(parse_one(src))
            ranks = [label_rank(report.labels[v].label)
                     for v in report.key_vars if v in report.labels]
            assert label_rank(report.key_label) == max(ranks)
