"""Property-based tests: wire codecs and address types round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packet import (
    Dhcp,
    DhcpMessageType,
    FtpControl,
    IPv4Address,
    MACAddress,
    TCP,
    UDP,
    dhcp_packet,
    encode,
    encode_port_command,
    parse,
    tcp_packet,
    udp_packet,
)
from repro.packet.headers import Arp, ArpOp, Ethernet, IPv4

macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MACAddress)
ips = st.integers(min_value=0, max_value=(1 << 32) - 1).map(IPv4Address)
ports = st.integers(min_value=0, max_value=65535)


class TestAddressRoundtrips:
    @given(macs)
    def test_mac_string_roundtrip(self, mac):
        assert MACAddress(str(mac)) == mac

    @given(macs)
    def test_mac_packed_roundtrip(self, mac):
        assert MACAddress(mac.packed()) == mac

    @given(ips)
    def test_ip_string_roundtrip(self, ip):
        assert IPv4Address(str(ip)) == ip

    @given(ips)
    def test_ip_packed_roundtrip(self, ip):
        assert IPv4Address(ip.packed()) == ip

    @given(ips)
    def test_ip_always_in_zero_prefix(self, ip):
        assert ip.in_subnet(IPv4Address(0), 0)

    @given(ips, st.integers(min_value=1, max_value=32))
    def test_ip_in_its_own_subnet(self, ip, prefix):
        assert ip.in_subnet(ip, prefix)


class TestHeaderRoundtrips:
    @given(macs, macs, st.integers(min_value=0, max_value=0xFFFF))
    def test_ethernet(self, src, dst, ethertype):
        eth = Ethernet(src=src, dst=dst, ethertype=ethertype)
        decoded, rest = Ethernet.decode(eth.encode())
        assert decoded == eth and rest == b""

    @given(st.sampled_from([ArpOp.REQUEST, ArpOp.REPLY]), macs, ips, macs, ips)
    def test_arp(self, op, smac, sip, tmac, tip):
        arp = Arp(op=op, sender_mac=smac, sender_ip=sip,
                  target_mac=tmac, target_ip=tip)
        decoded, _ = Arp.decode(arp.encode())
        assert decoded == arp

    @given(ips, ips, st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_ipv4(self, src, dst, proto, ttl):
        ip = IPv4(src=src, dst=dst, proto=proto, ttl=ttl)
        decoded, _ = IPv4.decode(ip.encode())
        assert decoded.src == src and decoded.dst == dst
        assert decoded.proto == proto and decoded.ttl == ttl

    @given(ports, ports, st.integers(min_value=0, max_value=0xFFFFFFFF),
           st.integers(min_value=0, max_value=0x3F))
    def test_tcp(self, sport, dport, seq, flags):
        tcp = TCP(src_port=sport, dst_port=dport, seq=seq, flags=flags)
        decoded, _ = TCP.decode(tcp.encode())
        assert decoded == tcp

    @given(ports, ports)
    def test_udp(self, sport, dport):
        udp = UDP(src_port=sport, dst_port=dport)
        decoded, _ = UDP.decode(udp.encode())
        assert decoded == udp


class TestFullPacketRoundtrips:
    @given(macs, macs, ips, ips, ports, ports,
           st.binary(max_size=64))
    def test_tcp_packet_wire(self, smac, dmac, sip, dip, sport, dport,
                             payload):
        p = tcp_packet(smac, dmac, sip, dip, sport, dport, payload=payload)
        q = parse(encode(p))
        assert q.eth.src == smac and q.eth.dst == dmac
        assert q.ip_src == sip and q.ip_dst == dip
        assert q.l4_sport == sport and q.l4_dport == dport
        assert q.payload == payload

    @given(macs, st.sampled_from([DhcpMessageType.DISCOVER,
                                  DhcpMessageType.REQUEST,
                                  DhcpMessageType.RELEASE]),
           st.integers(min_value=0, max_value=0xFFFFFFFF), ips)
    def test_dhcp_packet_wire(self, client, msg_type, xid, requested):
        p = dhcp_packet(client, msg_type, xid=xid, requested_ip=requested)
        q = parse(encode(p))
        dhcp = q.get(Dhcp)
        assert dhcp.client_mac == client
        assert dhcp.msg_type == msg_type
        assert dhcp.xid == xid
        assert dhcp.requested_ip == requested

    @given(ips, ports)
    def test_ftp_port_command(self, ip, port):
        line = FtpControl.from_line(encode_port_command(ip, port))
        assert line.data_ip == ip and line.data_port == port

    @given(macs, macs, ips, ips, ports, ports)
    def test_parse_depth_monotone(self, smac, dmac, sip, dip, sport, dport):
        """Parsing shallower never invents headers: the header stacks are
        prefixes of each other."""
        raw = encode(tcp_packet(smac, dmac, sip, dip, sport, dport))
        deep = parse(raw, max_layer=7)
        for layer in (2, 3, 4):
            shallow = parse(raw, max_layer=layer)
            assert len(shallow.headers) <= len(deep.headers)
            for a, b in zip(shallow.headers, deep.headers):
                assert a == b
