"""Round-trip: formatting a specification to DSL text and recompiling it
preserves the analysis — over the entire catalog."""

import pytest

from repro.core import analyze
from repro.lang import compile_one, format_property
from repro.props import build_table1, worked_examples


def roundtrip(prop):
    source, predicates = format_property(prop)
    return compile_one(source, predicates)


class TestFormatRoundtrip:
    @pytest.mark.parametrize("row", range(13))
    def test_table1_rows_roundtrip(self, row):
        prop = build_table1()[row].prop
        again = roundtrip(prop)
        assert analyze(again) == analyze(prop), prop.name
        assert again.num_stages == prop.num_stages
        assert again.key_vars == prop.key_vars

    @pytest.mark.parametrize("index", range(8))
    def test_worked_examples_roundtrip(self, index):
        prop = worked_examples()[index]
        again = roundtrip(prop)
        assert analyze(again) == analyze(prop), prop.name

    def test_table1_rows_still_match_paper_after_roundtrip(self):
        for entry in build_table1():
            again = roundtrip(entry.prop)
            assert analyze(again).table1_row() == entry.expected_row

    def test_formatted_text_is_readable(self):
        from repro.props import firewall_with_close

        source, predicates = format_property(firewall_with_close())
        assert "observe outbound : arrival" in source
        assert "drop within 30" in source
        assert "unless arrival where" in source
        assert len(predicates) >= 1  # the @internal predicate got a name

    def test_roundtrip_is_idempotent(self):
        from repro.props import nat_reverse_translation

        prop = nat_reverse_translation()
        once = roundtrip(prop)
        twice = roundtrip(once)
        assert analyze(once) == analyze(twice)

    def test_behavioural_equivalence_after_roundtrip(self):
        """The recompiled property detects the same violation, live."""
        from repro.apps import NatApp, sometimes
        from repro.core import Monitor
        from repro.netsim import single_switch_network
        from repro.packet import IPv4Address, tcp_packet
        from repro.props import nat_reverse_translation
        from repro.switch.pipeline import MissPolicy

        prop = roundtrip(nat_reverse_translation())
        net, switch, hosts = single_switch_network(
            2, switch_kwargs={"miss_policy": MissPolicy.CONTROLLER})
        switch.set_app(NatApp(public_ip=IPv4Address("203.0.113.1"),
                              faults=sometimes("corrupt_reverse", 1.0)))
        monitor = Monitor(scheduler=net.scheduler)
        monitor.add_property(prop)
        monitor.attach(switch)
        hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 5555, 80))
        net.run()
        hosts[1].send(tcp_packet(2, 1, "198.51.100.1", "203.0.113.1",
                                 80, 40000))
        net.run()
        assert len(monitor.violations) == 1
