"""Round-trip: formatting a specification to DSL text and recompiling it
preserves the analysis — over the entire catalog; and formatting a parsed
AST back to text re-parses to a structurally equal AST — over random
properties (Hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analyze
from repro.lang import compile_one, format_property
from repro.lang.ast import (
    AnyDiffers,
    BindAst,
    Comparison,
    Literal,
    NamedPredicate,
    PatternAst,
    PropertyAst,
    StageAst,
    VarRef,
)
from repro.lang.format import format_ast
from repro.lang.parser import parse
from repro.props import build_table1, worked_examples


def roundtrip(prop):
    source, predicates = format_property(prop)
    return compile_one(source, predicates)


class TestFormatRoundtrip:
    @pytest.mark.parametrize("row", range(13))
    def test_table1_rows_roundtrip(self, row):
        prop = build_table1()[row].prop
        again = roundtrip(prop)
        assert analyze(again) == analyze(prop), prop.name
        assert again.num_stages == prop.num_stages
        assert again.key_vars == prop.key_vars

    @pytest.mark.parametrize("index", range(8))
    def test_worked_examples_roundtrip(self, index):
        prop = worked_examples()[index]
        again = roundtrip(prop)
        assert analyze(again) == analyze(prop), prop.name

    def test_table1_rows_still_match_paper_after_roundtrip(self):
        for entry in build_table1():
            again = roundtrip(entry.prop)
            assert analyze(again).table1_row() == entry.expected_row

    def test_formatted_text_is_readable(self):
        from repro.props import firewall_with_close

        source, predicates = format_property(firewall_with_close())
        assert "observe outbound : arrival" in source
        assert "drop within 30" in source
        assert "unless arrival where" in source
        assert len(predicates) >= 1  # the @internal predicate got a name

    def test_roundtrip_is_idempotent(self):
        from repro.props import nat_reverse_translation

        prop = nat_reverse_translation()
        once = roundtrip(prop)
        twice = roundtrip(once)
        assert analyze(once) == analyze(twice)

    def test_behavioural_equivalence_after_roundtrip(self):
        """The recompiled property detects the same violation, live."""
        from repro.apps import NatApp, sometimes
        from repro.core import Monitor
        from repro.netsim import single_switch_network
        from repro.packet import IPv4Address, tcp_packet
        from repro.props import nat_reverse_translation
        from repro.switch.pipeline import MissPolicy

        prop = roundtrip(nat_reverse_translation())
        net, switch, hosts = single_switch_network(
            2, switch_kwargs={"miss_policy": MissPolicy.CONTROLLER})
        switch.set_app(NatApp(public_ip=IPv4Address("203.0.113.1"),
                              faults=sometimes("corrupt_reverse", 1.0)))
        monitor = Monitor(scheduler=net.scheduler)
        monitor.add_property(prop)
        monitor.attach(switch)
        hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 5555, 80))
        net.run()
        hosts[1].send(tcp_packet(2, 1, "198.51.100.1", "203.0.113.1",
                                 80, 40000))
        net.run()
        assert len(monitor.violations) == 1


# ---------------------------------------------------------------------------
# Syntactic round-trip: parse(format_ast(p))[0] == p for random ASTs
# (AST equality ignores source positions, so this compares structure).
# ---------------------------------------------------------------------------
_KEYWORDS = {
    "property", "key", "message", "annotate", "observe", "absent", "where",
    "bind", "unless", "within", "refresh", "semantic", "no_refresh",
    "samepacket", "action", "not_action", "and", "any_differs", "arrival",
    "egress", "drop", "oob", "packet", "true", "false",
}

IDENTS = st.from_regex(r"[a-z][a-z0-9_]{0,7}", fullmatch=True).filter(
    lambda s: s not in _KEYWORDS)

FIELDS = st.sampled_from(
    ["eth.src", "eth.dst", "ipv4.src", "ipv4.dst", "tcp.src", "tcp.dst",
     "in_port", "out_port", "vlan.id"])

VALUES = st.one_of(
    st.integers(min_value=0, max_value=65535).map(Literal),
    st.sampled_from([0.5, 1.5, 2.25]).map(Literal),
    IDENTS.map(VarRef),
)

COMPARISONS = st.builds(
    Comparison, field=FIELDS, op=st.sampled_from(["==", "!="]), value=VALUES)

CONDITIONS = st.one_of(
    COMPARISONS,
    st.builds(
        AnyDiffers,
        pairs=st.lists(st.tuples(FIELDS, VALUES), min_size=1, max_size=2)
        .map(tuple)),
    st.builds(NamedPredicate, name=IDENTS),
)

BINDS = st.builds(BindAst, var=IDENTS, field=FIELDS)

PATTERNS = st.builds(
    PatternAst,
    kind=st.sampled_from(["arrival", "egress", "drop", "packet"]),
    conditions=st.lists(CONDITIONS, max_size=3).map(tuple),
    binds=st.lists(BINDS, max_size=2).map(tuple),
)

UNLESS = st.builds(
    PatternAst,
    kind=st.sampled_from(["arrival", "egress", "drop", "packet"]),
    conditions=st.lists(CONDITIONS, max_size=2).map(tuple),
)

OBSERVES = st.builds(
    StageAst,
    negative=st.just(False),
    name=IDENTS,
    pattern=PATTERNS,
    within=st.one_of(st.none(), st.integers(1, 60).map(float)),
    no_refresh=st.booleans(),
    unless=st.lists(UNLESS, max_size=1).map(tuple),
)

ABSENTS = st.builds(
    StageAst,
    negative=st.just(True),
    name=IDENTS,
    pattern=PATTERNS,
    within=st.integers(1, 60).map(float),
    refresh=st.sampled_from([None, "on_prior"]),
    semantic=st.booleans(),
    unless=st.lists(UNLESS, max_size=1).map(tuple),
)

PROPERTIES = st.builds(
    PropertyAst,
    name=IDENTS,
    # non-empty: the parser defaults an empty description to the name
    description=st.from_regex(r"[a-zA-Z0-9][a-zA-Z0-9 .,_-]{0,29}",
                              fullmatch=True),
    key_vars=st.lists(IDENTS, max_size=2, unique=True).map(tuple),
    stages=st.lists(st.one_of(OBSERVES, ABSENTS), min_size=1,
                    max_size=3).map(tuple),
    message=st.sampled_from(["", "violated", "bad egress seen"]),
    obligation=st.sampled_from([None, True, False]),
    match_kind=st.sampled_from([None, "exact", "symmetric", "wandering"]),
)


class TestAstRoundtrip:
    """format_ast is the exact syntactic inverse of parse."""

    @given(prop=PROPERTIES)
    @settings(max_examples=150, deadline=None)
    def test_random_ast_roundtrips(self, prop):
        source = format_ast(prop)
        (again,) = parse(source)
        assert again == prop, source

    @given(prop=PROPERTIES)
    @settings(max_examples=50, deadline=None)
    def test_format_is_idempotent(self, prop):
        once = format_ast(prop)
        assert format_ast(parse(once)[0]) == once

    def test_whole_shipped_corpus_roundtrips(self):
        import glob
        import os

        pattern = os.path.join(
            os.path.dirname(__file__), "..", "..", "examples", "properties",
            "*.prop")
        paths = glob.glob(pattern)
        assert paths
        for path in paths:
            with open(path) as fp:
                for prop in parse(fp.read()):
                    assert parse(format_ast(prop))[0] == prop, path
