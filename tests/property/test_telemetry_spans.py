"""Property-based tests: trace-span trees stay well-formed.

Random event streams through a traced monitor must always yield a valid
span forest: ids strictly increase, every parent exists and precedes its
child, every span is closed.  ``validate_spans`` is the single contract
that ``repro stats --trace-out`` relies on; these tests prove it holds on
arbitrary inputs, not just the hand-written smoke traces.
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Bind,
    EventKind,
    EventPattern,
    FieldEq,
    Monitor,
    Observe,
    PropertySpec,
    Var,
)
from repro.packet import ethernet
from repro.switch.events import EgressAction, PacketArrival, PacketEgress
from repro.switch.switch import ProcessingMode
from repro.telemetry import (
    Tracer,
    dump_spans,
    load_spans,
    replay_with_trace,
    validate_spans,
)

addr = st.integers(min_value=1, max_value=4)


@st.composite
def event_streams(draw, max_events=40):
    """Random time-ordered arrival/egress streams over a tiny address
    universe, so instances collide, advance, violate, and expire often."""
    n = draw(st.integers(min_value=1, max_value=max_events))
    events = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.001, max_value=2.0))
        packet = ethernet(draw(addr), draw(addr))
        if draw(st.booleans()):
            events.append(PacketArrival(
                switch_id="s", time=t, packet=packet, in_port=draw(addr)))
        else:
            events.append(PacketEgress(
                switch_id="s", time=t, packet=packet, in_port=draw(addr),
                out_port=draw(addr), action=EgressAction.UNICAST))
    return events


def traced_property():
    return PropertySpec(
        name="echo", description="",
        stages=(
            Observe("request", EventPattern(
                kind=EventKind.ARRIVAL, binds=(Bind("S", "eth.src"),))),
            Observe("response", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("eth.dst", Var("S")),)), within=3.0),
        ),
        key_vars=("S",),
    )


def replay(events, mode=ProcessingMode.INLINE):
    tracer = Tracer()
    monitor = Monitor(mode=mode, split_lag=0.5, tracer=tracer)
    monitor.add_property(traced_property())
    replay_with_trace(monitor, events, tracer)
    if events:
        monitor.advance_to(events[-1].time + 10.0)
    tracer.close_all(monitor.now)
    return tracer


class TestSpanWellFormedness:
    @settings(max_examples=60, deadline=None)
    @given(event_streams())
    def test_inline_replay_spans_validate(self, events):
        tracer = replay(events)
        assert validate_spans(tracer.spans) == []

    @settings(max_examples=40, deadline=None)
    @given(event_streams())
    def test_split_replay_spans_validate(self, events):
        # Split mode applies ops after the root span closed; the monitor's
        # deferred events must still land as well-formed spans.
        tracer = replay(events, mode=ProcessingMode.SPLIT)
        assert validate_spans(tracer.spans) == []

    @settings(max_examples=40, deadline=None)
    @given(event_streams())
    def test_every_monitor_span_nests_under_a_root(self, events):
        tracer = replay(events)
        roots = {s.span_id for s in tracer.spans if s.parent_id is None}
        by_id = {s.span_id: s for s in tracer.spans}
        for span in tracer.spans:
            if span.parent_id is None:
                continue
            assert span.parent_id in by_id
            assert by_id[span.parent_id].span_id in roots or (
                by_id[span.parent_id].parent_id is not None)

    @settings(max_examples=30, deadline=None)
    @given(event_streams())
    def test_jsonl_roundtrip_preserves_validity(self, events):
        tracer = replay(events)
        buf = io.StringIO()
        dump_spans(tracer.spans, buf)
        buf.seek(0)
        loaded = load_spans(buf)
        assert len(loaded) == len(tracer.spans)
        assert validate_spans(loaded) == []
        assert [s.span_id for s in loaded] == sorted(
            s.span_id for s in tracer.spans)
