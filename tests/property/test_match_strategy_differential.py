"""Differential property tests: compiled vs interpreted vs codegen matching.

The compiled engine (per-event-class dispatch plans + specialized guard
closures, ``repro.core.compile``) and the codegen engine (straight-line
source emitted per (property, event class) and exec'd once,
``repro.core.codegen``) are performance rewrites of the monitor hot
path.  They must be *observationally invisible*: on any event stream,
all three match strategies — crossed with both instance-store strategies
— must produce identical violations and identical counters.  These tests
drive random streams through every configuration and compare everything
the monitor exposes, including the codegen columnar batch path and the
sharded fabric.

The probe catalog here is deliberately richer than the one in
``test_engine_properties``: it adds negative observations (Absent),
``unless`` cancellation, ``MismatchAny`` disjunctive negation, drop
events, constant guards (the closure compiler folds these), and a
refresh-on-prior timer, so every branch of the compiled evaluator is
exercised against its interpreted twin.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Absent,
    Bind,
    Const,
    EventKind,
    EventPattern,
    FieldCmp,
    FieldEq,
    FieldNe,
    MismatchAny,
    Monitor,
    Observe,
    Predicate,
    PropertySpec,
    Var,
)
from repro.packet import ethernet
from repro.switch.events import (
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
)

addr = st.integers(min_value=1, max_value=4)

STORE_STRATEGIES = ("indexed", "linear")
MATCH_STRATEGIES = ("compiled", "interpreted", "codegen")

STAT_FIELDS = (
    "events",
    "violations",
    "instances_created",
    "instances_expired",
    "instances_discharged",
    "instances_cancelled",
    "timer_advances",
    "refreshes",
    "candidates_examined",
    "ops_applied",
)


@st.composite
def event_streams(draw, max_events=25):
    """Time-ordered streams over arrivals, egresses, drops, and OOB events,
    with occasional packet-identity reuse on egress/drop."""
    n = draw(st.integers(min_value=1, max_value=max_events))
    events = []
    seen_packets = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.001, max_value=1.5))
        kind = draw(st.sampled_from(["arrival", "egress", "drop", "oob"]))
        if kind == "oob":
            events.append(OutOfBandEvent(
                switch_id="s", time=t, oob_kind=OobKind.PORT_DOWN,
                port=draw(addr)))
            continue
        if kind != "arrival" and seen_packets and draw(st.booleans()):
            packet = draw(st.sampled_from(seen_packets))  # identity reuse
        else:
            packet = ethernet(draw(addr), draw(addr))
        if kind == "arrival":
            events.append(PacketArrival(switch_id="s", time=t, packet=packet,
                                        in_port=draw(addr)))
            seen_packets.append(packet)
        elif kind == "egress":
            events.append(PacketEgress(
                switch_id="s", time=t, packet=packet, out_port=draw(addr),
                in_port=draw(addr), action=EgressAction.UNICAST))
        else:
            events.append(PacketDrop(switch_id="s", time=t, packet=packet,
                                     in_port=draw(addr)))
    return events


def probe_catalog():
    """Property shapes covering every compiled-evaluator branch."""
    return [
        # Exact match plus a folded constant guard (FieldEq/FieldNe Const).
        PropertySpec(
            name="echo", description="",
            stages=(
                Observe("a", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldNe("in_port", Const(0)),),
                    binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.dst", Var("S")),
                            FieldEq("in_port", Const(1))))),
            ),
            key_vars=("S",),
        ),
        # Timeout (within) on the waiting stage.
        PropertySpec(
            name="timed", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldEq("eth.dst", Var("S")),)), within=2.0),
            ),
            key_vars=("S",),
        ),
        # Disjunctive negation (the NAT property's MismatchAny shape).
        PropertySpec(
            name="mism", description="",
            stages=(
                Observe("a", EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("S", "eth.src"), Bind("D", "eth.dst")))),
                Observe("b", EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(MismatchAny((("eth.src", Var("S")),
                                         ("eth.dst", Var("D")))),))),
            ),
            key_vars=("S", "D"),
        ),
        # Packet identity (same_packet_as) ending on a drop.
        PropertySpec(
            name="ident", description="",
            stages=(
                Observe("a", EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.DROP, same_packet_as="a")),
            ),
            key_vars=("S",),
        ),
        # Negative observation: violation fires from a timer, an egress to
        # the bound source discharges the obligation.
        PropertySpec(
            name="noreply", description="",
            stages=(
                Observe("req", EventPattern(kind=EventKind.ARRIVAL,
                                            binds=(Bind("S", "eth.src"),))),
                Absent("reply", EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldEq("eth.dst", Var("S")),)), within=1.5),
            ),
            key_vars=("S",),
        ),
        # The unsound timer-refresh policy the paper calls out: the
        # refresh path must behave identically under both strategies.
        PropertySpec(
            name="refreshy", description="",
            stages=(
                Observe("req", EventPattern(kind=EventKind.ARRIVAL,
                                            binds=(Bind("S", "eth.src"),))),
                Absent("reply", EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldEq("eth.dst", Var("S")),)),
                    within=1.5, refresh="on_prior"),
            ),
            key_vars=("S",),
        ),
        # Persistent obligation: a port-down unless cancels the wait.
        PropertySpec(
            name="unlessy", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldEq("eth.dst", Var("S")),)),
                    within=5.0,
                    unless=(EventPattern(kind=EventKind.OOB,
                                         oob_kind=OobKind.PORT_DOWN),)),
            ),
            key_vars=("S",),
        ),
        # Any-packet kind plus an OOB middle stage (multiple match: the
        # OOB stage has an empty index plan, forcing the scan bucket).
        PropertySpec(
            name="oobp", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ANY_PACKET,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("down", EventPattern(kind=EventKind.OOB,
                                             oob_kind=OobKind.PORT_DOWN)),
                Observe("b", EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldEq("eth.dst", Var("S")),))),
            ),
            key_vars=("S",),
        ),
        # Predicate guards plus ordered compare and an egress-action
        # refinement.  A stage-0 Predicate keeps this property OFF the
        # codegen columnar prefilter (predicates may consult auxiliary
        # state, so they must run per event, in order); the stage-1
        # Predicate reads the full field mapping, exercising the batch
        # path's fields-dict column.
        PropertySpec(
            name="predy", description="",
            stages=(
                Observe("a", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(Predicate(
                        lambda fields, env: fields.get("in_port", 0) != 3,
                        "in_port != 3"),),
                    binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldCmp("out_port", "<", Const(4)),
                            Predicate(
                                lambda fields, env:
                                fields.get("eth.dst") == env.get("S"),
                                "dst == $S")),
                    egress_action=EgressAction.UNICAST)),
            ),
            key_vars=("S",),
        ),
    ]


def run_config(events, store_strategy, match_strategy):
    monitor = Monitor(store_strategy=store_strategy,
                      match_strategy=match_strategy)
    for prop in probe_catalog():
        monitor.add_property(prop)
    for event in events:
        monitor.observe(event)
    monitor.advance_to(events[-1].time + 100.0)
    violations = [
        (v.property_name, round(v.time, 9), v.message, tuple(sorted(
            (k, str(val)) for k, val in v.bindings.items())))
        for v in monitor.violations
    ]
    stats = {name: getattr(monitor.stats, name) for name in STAT_FIELDS}
    return violations, stats


class TestMatchStrategyEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(event_streams())
    def test_all_configs_agree(self, events):
        """Violations (name, time, message, bindings) are identical across
        {compiled, interpreted, codegen} x {indexed, linear}; the full
        counter set is identical across match strategies within each store
        (different stores may legitimately examine different candidate
        counts)."""
        results = {
            (store, match): run_config(events, store, match)
            for store, match in itertools.product(
                STORE_STRATEGIES, MATCH_STRATEGIES)
        }
        violation_sets = [v for v, _ in results.values()]
        for other in violation_sets[1:]:
            assert other == violation_sets[0]
        for store in STORE_STRATEGIES:
            _, compiled_stats = results[(store, "compiled")]
            for match in MATCH_STRATEGIES[1:]:
                _, other_stats = results[(store, match)]
                assert other_stats == compiled_stats, (store, match)

    @settings(max_examples=30, deadline=None)
    @given(event_streams())
    def test_candidate_counts_match_within_store(self, events):
        """Dispatch planning skips whole (property, stage) pairs, but the
        candidates it *does* examine must be the same set the interpreted
        walk reaches after its own kind/stage filters.  The codegen
        engine batches its counter increments (one add per event), which
        must still land on the same totals."""
        for store in STORE_STRATEGIES:
            _, interp_stats = run_config(events, store, "interpreted")
            for match in ("compiled", "codegen"):
                _, fast_stats = run_config(events, store, match)
                assert (fast_stats["candidates_examined"]
                        == interp_stats["candidates_examined"]), (store, match)

    @settings(max_examples=30, deadline=None)
    @given(event_streams())
    def test_batch_equals_loop(self, events):
        """observe_batch must be just a loop unroll: the compiled fast
        path hoists attribute lookups, the codegen path transposes chunks
        into ColumnarBatch columns and prefilters stage-0 matches — both
        must yield the violations and counters of event-at-a-time
        observe."""
        looped = run_config(events, "indexed", "compiled")

        for match in ("compiled", "codegen"):
            monitor = Monitor(match_strategy=match)
            for prop in probe_catalog():
                monitor.add_property(prop)
            monitor.observe_batch(events)
            monitor.advance_to(events[-1].time + 100.0)
            batched_violations = [
                (v.property_name, round(v.time, 9), v.message, tuple(sorted(
                    (k, str(val)) for k, val in v.bindings.items())))
                for v in monitor.violations
            ]
            batched_stats = {name: getattr(monitor.stats, name)
                             for name in STAT_FIELDS}
            assert (batched_violations, batched_stats) == looped, match

    @settings(max_examples=15, deadline=None)
    @given(event_streams())
    def test_codegen_under_shards(self, events):
        """The fabric passes ``match_strategy`` through ``monitor_kwargs``
        unchanged, so codegen composes with ``--shards``: a 2-shard
        fabric running codegen produces the single-monitor compiled
        violation set (order-insensitive: the fabric may interleave
        same-timestamp violations differently)."""
        from repro.fabric import ShardedMonitor

        reference, _ = run_config(events, "indexed", "compiled")

        sharded = ShardedMonitor(
            probe_catalog(), num_shards=2, mode="inprocess",
            monitor_kwargs=dict(match_strategy="codegen"))
        sharded.observe_batch(events)
        sharded.advance_to(events[-1].time + 100.0)
        sharded.stop()
        fingerprints = sorted(
            (v.property_name, round(v.time, 9), v.message, tuple(sorted(
                (k, str(val)) for k, val in v.bindings.items())))
            for v in sharded.violations
        )
        assert fingerprints == sorted(reference)
