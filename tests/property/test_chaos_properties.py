"""Property-based tests: chaos runs are deterministic and clean = no-chaos.

The two reproducibility guarantees the chaos layer makes:

* identical (profile, seed) inputs produce byte-identical runs — same
  violations, same ledger, same counters;
* the ``clean`` profile is indistinguishable from never importing the
  chaos layer at all.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import resilience
from repro.netsim.chaos import (
    PROFILES,
    ControlFaultProfile,
    FaultyEventChannel,
    LinkFaultProfile,
)

seeds = st.integers(min_value=0, max_value=10_000)

link_profiles = st.builds(
    LinkFaultProfile,
    drop=st.floats(min_value=0.0, max_value=0.3),
    duplicate=st.floats(min_value=0.0, max_value=0.3),
    reorder=st.floats(min_value=0.0, max_value=0.3),
    reorder_window=st.floats(min_value=0.001, max_value=0.1),
    jitter=st.floats(min_value=0.0, max_value=0.05),
    corrupt=st.floats(min_value=0.0, max_value=0.3),
    seed=seeds,
)

NUM_EVENTS = 150  # small traces: each example runs the full catalog


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_clean_profile_identical_to_no_chaos(seed):
    events = resilience.catalog_trace(seed, NUM_EVENTS)
    plain = resilience.run_events(None, events)
    clean = resilience.run_events(PROFILES["clean"], events)
    assert plain.fingerprint() == clean.fingerprint()
    assert len(clean.monitor.ledger) == 0


@settings(max_examples=8, deadline=None)
@given(seed=seeds)
def test_identical_seeds_identical_overloaded_runs(seed):
    profile = PROFILES["overloaded"]
    a = resilience.run_chaos(profile, seed, num_events=NUM_EVENTS,
                             with_telemetry=False)
    b = resilience.run_chaos(profile, seed, num_events=NUM_EVENTS,
                             with_telemetry=False)
    assert a.to_dict() == b.to_dict()


@settings(max_examples=8, deadline=None)
@given(seed=seeds)
def test_identical_seeds_identical_adversarial_runs(seed):
    profile = PROFILES["adversarial"]
    a = resilience.run_chaos(profile, seed, num_events=NUM_EVENTS,
                             with_telemetry=False)
    b = resilience.run_chaos(profile, seed, num_events=NUM_EVENTS,
                             with_telemetry=False)
    assert a.to_dict() == b.to_dict()


@settings(max_examples=15, deadline=None)
@given(profile=link_profiles, seed=seeds)
def test_event_channel_deterministic_and_sorted(profile, seed):
    events = resilience.catalog_trace(seed, 60)
    a = FaultyEventChannel(profile, name="x").transform(events)
    b = FaultyEventChannel(profile, name="x").transform(events)
    assert a == b
    times = [e.time for e in a]
    assert times == sorted(times)
    # Conservation: every offered event is dropped or delivered.
    chan = FaultyEventChannel(profile, name="x")
    chan.transform(events)
    c = chan.counters
    assert c["offered"] == c["dropped"] + c["delivered"] == len(events)
    assert len(a) == c["delivered"] + c["duplicated"]


@settings(max_examples=10, deadline=None)
@given(
    drop=st.floats(min_value=0.0, max_value=0.5),
    extra=st.floats(min_value=0.0, max_value=0.01),
    jitter=st.floats(min_value=0.0, max_value=0.01),
    seed=seeds,
)
def test_control_channel_deterministic(drop, extra, jitter, seed):
    profile = ControlFaultProfile(drop=drop, extra_lag=extra, jitter=jitter,
                                  seed=seed)
    a = [profile.channel("m").perturb() for _ in range(1)]  # fresh stream
    runs = [
        [profile.channel("m").perturb() for _ in range(40)]
        for _ in range(2)
    ]
    assert runs[0] == runs[1]
    assert runs[0][0] == a[0]


@settings(max_examples=6, deadline=None)
@given(seed=seeds)
def test_invariants_hold_under_every_profile(seed):
    for profile in PROFILES.values():
        report = resilience.run_chaos(profile, seed, num_events=NUM_EVENTS,
                                      with_telemetry=False)
        assert report.invariant_failures == []
        if profile.ledgered:
            lo, hi = report.interval
            assert lo <= report.clean_total <= hi


@settings(max_examples=6, deadline=None)
@given(seed=seeds, offset=st.integers(min_value=1, max_value=50))
def test_different_seeds_can_differ(seed, offset):
    # Not a strict requirement per-pair, but the stream must depend on
    # the seed at all: identical outputs for every seed would be a bug.
    profile = dataclasses.replace(PROFILES["lossy"],
                                  link=dataclasses.replace(
                                      PROFILES["lossy"].link, drop=0.5))
    events = resilience.catalog_trace(seed, 60)
    out_a = FaultyEventChannel(profile.link).transform(events)
    # Same events, different fault seed: drops land elsewhere (almost
    # surely, at 50% drop over 60 events).
    reseeded = dataclasses.replace(profile.link, seed=profile.link.seed + offset)
    out_b = FaultyEventChannel(reseeded).transform(events)
    assert out_a != out_b or len(events) == 0
