"""Property-based tests for the extensions: trace serialization
round-trips and compiled-Varanus/engine agreement on random traffic."""

import io
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.serialize import dump_trace, load_trace
from repro.packet import ethernet, tcp_packet, tcp_syn
from repro.switch.events import (
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
)

addr = st.integers(min_value=1, max_value=6)
port16 = st.integers(min_value=1, max_value=65535)


@st.composite
def serializable_events(draw, max_events=25):
    n = draw(st.integers(min_value=1, max_value=max_events))
    events = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.001, max_value=1.0))
        choice = draw(st.sampled_from(["arr", "egr", "drop", "oob"]))
        if choice == "oob":
            events.append(OutOfBandEvent(
                switch_id="s", time=t,
                oob_kind=draw(st.sampled_from(list(OobKind))),
                port=draw(addr)))
            continue
        if draw(st.booleans()):
            packet = ethernet(draw(addr), draw(addr))
        else:
            packet = tcp_packet(draw(addr), draw(addr),
                                f"10.0.0.{draw(addr)}",
                                f"10.0.0.{draw(addr)}",
                                draw(port16), draw(port16))
        if choice == "arr":
            events.append(PacketArrival(switch_id="s", time=t, packet=packet,
                                        in_port=draw(addr)))
        elif choice == "egr":
            events.append(PacketEgress(
                switch_id="s", time=t, packet=packet, in_port=draw(addr),
                out_port=draw(addr),
                action=draw(st.sampled_from(list(EgressAction)))))
        else:
            events.append(PacketDrop(switch_id="s", time=t, packet=packet,
                                     in_port=draw(addr), reason="r"))
    return events


class TestSerializationProperties:
    @settings(max_examples=50, deadline=None)
    @given(serializable_events())
    def test_roundtrip_structure(self, events):
        buf = io.StringIO()
        dump_trace(events, buf)
        buf.seek(0)
        loaded = load_trace(buf)
        assert len(loaded) == len(events)
        for original, restored in zip(events, loaded):
            assert type(original) is type(restored)
            assert restored.time == original.time
            packet = getattr(original, "packet", None)
            if packet is not None:
                assert restored.packet.uid == packet.uid
                assert restored.packet.fields() == packet.fields()

    @settings(max_examples=30, deadline=None)
    @given(serializable_events())
    def test_replayed_trace_gives_same_verdicts(self, events):
        """A monitor fed the reloaded trace reaches the same verdicts as
        one fed the original events."""
        from repro.core import (
            Bind,
            EventKind,
            EventPattern,
            FieldEq,
            Monitor,
            Observe,
            PropertySpec,
            Var,
        )

        def prop():
            return PropertySpec(
                name="echo", description="",
                stages=(
                    Observe("a", EventPattern(
                        kind=EventKind.ARRIVAL,
                        binds=(Bind("S", "eth.src"),))),
                    Observe("b", EventPattern(
                        kind=EventKind.ANY_PACKET,
                        guards=(FieldEq("eth.dst", Var("S")),))),
                ),
                key_vars=("S",),
            )

        def verdicts(stream):
            monitor = Monitor()
            monitor.add_property(prop())
            for event in stream:
                monitor.observe(event)
            return [(v.time, tuple(sorted((k, str(x)) for k, x in
                                          v.bindings.items())))
                    for v in monitor.violations]

        buf = io.StringIO()
        dump_trace(events, buf)
        buf.seek(0)
        assert verdicts(load_trace(buf)) == verdicts(events)


class TestCompiledVaranusProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_compiled_agrees_with_engine(self, seed):
        """Random knock traffic: dataplane-compiled rules and the engine
        raise the same number of violations."""
        from tests.integration.test_varanus_compiler import (  # noqa: F401
            drive,
            knock_chain,
            pkt,
        )

        rng = random.Random(seed)
        packets = []
        t = 0.0
        for _ in range(40):
            t += rng.uniform(0.01, 0.3)
            packets.append((t, pkt(f"10.0.0.{rng.randint(1, 3)}",
                                   rng.choice([7001, 7002, 22, 80]))))
        alerts, violations = drive(knock_chain(name=f"h-{seed}"), packets)
        assert len(alerts) == len(violations)
