"""Regenerate the calibration tables in ``repro/lint/calibration.py``.

Run after a deliberate Varanus-compiler rule-plan change or a codegen
emission change::

    PYTHONPATH=src python -m tests.regen_calibration

The script measures every calibration-corpus property with
``plan_property`` (the compiler table) and every codegen-corpus property
with a single-property codegen monitor (the codegen table), then splices
the resulting dict literals over the ``CALIBRATION = {...}`` and
``CALIBRATION_CODEGEN = {...}`` blocks in the module source.  ``--check``
compares the live measurements against the checked-in tables without
writing (exit 1 on drift) — CI runs this so the tables cannot go stale
silently.
"""

import argparse
import os
import re
import sys

from repro.lint import calibration
from repro.lint.calibration import (
    CALIBRATION,
    CALIBRATION_CODEGEN,
    regenerate,
    regenerate_codegen,
)

SOURCE = calibration.__file__

#: (table name, checked-in table, live measurer) for each spliced block.
TABLES = (
    ("CALIBRATION", CALIBRATION, regenerate),
    ("CALIBRATION_CODEGEN", CALIBRATION_CODEGEN, regenerate_codegen),
)


def _table_re(name):
    return re.compile(
        rf"^{name}: Dict\[str, Tuple\[int, int, int\]\] = \{{$.*?^\}}$",
        re.MULTILINE | re.DOTALL,
    )


def render_table(name, table):
    lines = [f"{name}: Dict[str, Tuple[int, int, int]] = {{"]
    for key in sorted(table):
        lines.append(f"    {key!r}: {table[key]!r},")
    lines.append("}")
    return "\n".join(lines)


def check():
    failed = 0
    for name, checked_in, measure in TABLES:
        live = measure()
        if live == checked_in:
            print(f"{name} up to date ({len(live)} properties)")
            continue
        failed = 1
        for key in sorted(set(live) | set(checked_in)):
            if live.get(key) != checked_in.get(key):
                print(f"  {name}[{key}]: checked-in {checked_in.get(key)} "
                      f"vs measured {live.get(key)}")
        print(f"{name} drifted: rerun "
              "PYTHONPATH=src python -m tests.regen_calibration")
    return failed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="compare the checked-in tables against live measurements "
             "instead of rewriting them")
    args = parser.parse_args()
    if args.check:
        raise SystemExit(check())
    with open(SOURCE, encoding="utf-8") as fp:
        source = fp.read()
    for name, _, measure in TABLES:
        pattern = _table_re(name)
        if not pattern.search(source):
            print(f"could not locate the {name} block in {SOURCE}",
                  file=sys.stderr)
            raise SystemExit(2)
        table = measure()
        source = pattern.sub(
            render_table(name, table).replace("\\", r"\\"), source, count=1)
        print(f"measured {len(table)} {name} rows")
    with open(SOURCE, "w", encoding="utf-8") as fp:
        fp.write(source)
    print(f"wrote {os.path.relpath(SOURCE)}")


if __name__ == "__main__":
    main()
