"""Regenerate the compiler-calibration table in ``repro/lint/calibration.py``.

Run after a deliberate Varanus-compiler rule-plan change::

    PYTHONPATH=src python -m tests.regen_calibration

The script measures every calibration-corpus property with
``plan_property`` and splices the resulting dict literal over the
``CALIBRATION = {...}`` block in the module source.  ``--check`` compares
the live measurements against the checked-in table without writing (exit
1 on drift) — CI runs this so the table cannot go stale silently.
"""

import argparse
import os
import re
import sys

from repro.lint import calibration
from repro.lint.calibration import CALIBRATION, regenerate

SOURCE = calibration.__file__

_TABLE_RE = re.compile(
    r"^CALIBRATION: Dict\[str, Tuple\[int, int, int\]\] = \{$.*?^\}$",
    re.MULTILINE | re.DOTALL,
)


def render_table(table):
    lines = ["CALIBRATION: Dict[str, Tuple[int, int, int]] = {"]
    for name in sorted(table):
        lines.append(f"    {name!r}: {table[name]!r},")
    lines.append("}")
    return "\n".join(lines)


def check():
    live = regenerate()
    if live == CALIBRATION:
        print(f"calibration table up to date ({len(live)} properties)")
        return 0
    for name in sorted(set(live) | set(CALIBRATION)):
        if live.get(name) != CALIBRATION.get(name):
            print(f"  {name}: checked-in {CALIBRATION.get(name)} "
                  f"vs measured {live.get(name)}")
    print("calibration table drifted: rerun "
          "PYTHONPATH=src python -m tests.regen_calibration")
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="compare the checked-in table against live measurements "
             "instead of rewriting it")
    args = parser.parse_args()
    if args.check:
        raise SystemExit(check())
    with open(SOURCE, encoding="utf-8") as fp:
        source = fp.read()
    if not _TABLE_RE.search(source):
        print(f"could not locate the CALIBRATION block in {SOURCE}",
              file=sys.stderr)
        raise SystemExit(2)
    table = regenerate()
    updated = _TABLE_RE.sub(render_table(table).replace("\\", r"\\"),
                            source, count=1)
    with open(SOURCE, "w", encoding="utf-8") as fp:
        fp.write(updated)
    print(f"wrote {len(table)} measured rows to "
          f"{os.path.relpath(SOURCE)}")


if __name__ == "__main__":
    main()
