"""Regenerate the codegen backend's golden matcher sources.

Run after a deliberate change to the source emitted by
``repro.core.codegen``::

    PYTHONPATH=src python -m tests.regen_codegen_goldens

then eyeball the diff before committing — the goldens pin the exact
straight-line program the ``match_strategy="codegen"`` backend executes
for two representative Table-1 properties, so any emission change is
reviewable as a plain-text diff.  ``--check`` regenerates into a temp
directory and diffs against the checked-in fixtures instead of
overwriting them (exit 1 on drift) — CI runs this so the goldens cannot
go stale silently.
"""

import argparse
import difflib
import os
import sys
import tempfile

from repro.core import Monitor
from repro.props.catalog import build_table1

GOLDEN = os.path.join(os.path.dirname(__file__), "fixtures", "codegen")

#: properties whose generated programs are pinned.  One indexed-probe
#: multi-stage property with an ``unless`` watcher, one deadline (Feature
#: 7 ``within``) property — between them they cover candidate discharge,
#: advance, unless kills, refresh-vs-create, and deadline arming.
PINNED = ("knocking-invalidated", "dhcp-reply-within")


def generated_source(prop_name: str) -> str:
    props = {entry.prop.name: entry.prop for entry in build_table1()}
    monitor = Monitor(match_strategy="codegen")
    monitor.add_property(props[prop_name])
    return monitor.codegen_source()


def generate(out_dir: str) -> list:
    names = []
    for prop_name in PINNED:
        name = prop_name.replace("-", "_") + ".py.txt"
        with open(os.path.join(out_dir, name), "w") as fp:
            fp.write(generated_source(prop_name))
        names.append(name)
    return names


def check() -> int:
    drifted = False
    with tempfile.TemporaryDirectory() as tmp:
        for name in generate(tmp):
            try:
                with open(os.path.join(GOLDEN, name)) as fp:
                    want = fp.readlines()
            except FileNotFoundError:
                want = []
            with open(os.path.join(tmp, name)) as fp:
                got = fp.readlines()
            if want != got:
                drifted = True
                sys.stdout.writelines(difflib.unified_diff(
                    want, got, fromfile=f"codegen/{name}",
                    tofile=f"regenerated/{name}"))
    if drifted:
        print("codegen goldens drifted: rerun "
              "PYTHONPATH=src python -m tests.regen_codegen_goldens")
        return 1
    print("codegen goldens up to date")
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="diff regenerated goldens against fixtures instead of writing")
    args = parser.parse_args()
    if args.check:
        raise SystemExit(check())
    os.makedirs(GOLDEN, exist_ok=True)
    for name in generate(GOLDEN):
        print(f"wrote {os.path.join(GOLDEN, name)}")


if __name__ == "__main__":
    main()
