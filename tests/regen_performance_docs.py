"""Regenerate the codegen speedup table in ``docs/PERFORMANCE.md``.

The table between the ``<!-- codegen-speedup:start -->`` and
``<!-- codegen-speedup:end -->`` markers is rendered deterministically
from the checked-in measurement record
``benchmarks/records/codegen_speedup.json`` (written by
``test_codegen_speedup`` when ``REPRO_BENCH_CODEGEN_OUT`` is set).  To
refresh the numbers themselves::

    REPRO_BENCH_CODEGEN_OUT=benchmarks/records/codegen_speedup.json \\
        PYTHONPATH=src python -m pytest \\
        benchmarks/bench_monitor_throughput.py::test_codegen_speedup -q -s
    PYTHONPATH=src python -m tests.regen_performance_docs

``--check`` re-renders from the record and diffs against the docs
without writing (exit 1 on drift) — CI runs this so the published table
cannot disagree with the record it claims to report.
"""

import argparse
import difflib
import json
import os
import sys

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
RECORD = os.path.join(ROOT, "benchmarks", "records", "codegen_speedup.json")
DOC = os.path.join(ROOT, "docs", "PERFORMANCE.md")
START = "<!-- codegen-speedup:start -->"
END = "<!-- codegen-speedup:end -->"


def render_block():
    with open(RECORD, encoding="utf-8") as fp:
        rec = json.load(fp)
    rate = lambda ms: rec["num_events"] / (ms / 1e3) / 1e3  # noqa: E731
    lines = [
        START,
        f"| Configuration | {rec['properties']}-property catalog, "
        f"{rec['num_events']} events (1 core, best of {rec['rounds']}) "
        "| Rate |",
        "|---|---|---|",
        "| compiled closures, `observe_batch` | "
        f"{rec['compiled_ms']:.1f} ms | ~{rate(rec['compiled_ms']):.1f}k "
        "events/s |",
        "| codegen + columnar batches, `observe_batch` | "
        f"{rec['codegen_ms']:.1f} ms | ~{rate(rec['codegen_ms']):.1f}k "
        "events/s |",
        "",
        f"Measured speedup **{rec['speedup']:.2f}x** "
        f"(`test_codegen_speedup` asserts ≥ {rec['gate']:.1f}x); the "
        "one-time program generation + `exec` for the catalog costs "
        f"{rec['build_ms']:.1f} ms at startup, outside the timed region.",
        END,
    ]
    return "\n".join(lines)


def spliced():
    with open(DOC, encoding="utf-8") as fp:
        doc = fp.read()
    try:
        head, rest = doc.split(START, 1)
        _, tail = rest.split(END, 1)
    except ValueError:
        print(f"could not locate the {START} / {END} markers in {DOC}",
              file=sys.stderr)
        raise SystemExit(2)
    return doc, head + render_block() + tail


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="diff the re-rendered table against the docs instead of "
             "writing")
    args = parser.parse_args()
    current, updated = spliced()
    if args.check:
        if current == updated:
            print("PERFORMANCE.md codegen speedup table up to date")
            raise SystemExit(0)
        sys.stdout.writelines(difflib.unified_diff(
            current.splitlines(keepends=True),
            updated.splitlines(keepends=True),
            fromfile="docs/PERFORMANCE.md",
            tofile="rendered-from-record"))
        print("PERFORMANCE.md speedup table drifted from "
              "benchmarks/records/codegen_speedup.json: rerun "
              "PYTHONPATH=src python -m tests.regen_performance_docs")
        raise SystemExit(1)
    with open(DOC, "w", encoding="utf-8") as fp:
        fp.write(updated)
    print(f"wrote {os.path.relpath(DOC, ROOT)}")


if __name__ == "__main__":
    main()
