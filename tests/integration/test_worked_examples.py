"""Integration: the paper's worked examples, end to end.

Each test wires a real app onto a simulated switch, attaches the monitor,
drives traffic (with or without injected faults), and checks that
violations appear exactly when the paper says they should:

* S1   — learning switch (Sec. 1);
* S2.1 — stateful firewall, three refinements (Sec. 2.1);
* S2.2 — NAT reverse translation (Sec. 2.2);
* S2.3 — ARP proxy reply-within-T (Sec. 2.3);
* S2.4 — link-down multiple match (Sec. 2.4).
"""

import pytest

from repro.apps import (
    ArpProxyApp,
    FaultPlan,
    LearningSwitchApp,
    NatApp,
    StatefulFirewallApp,
    always,
    sometimes,
)
from repro.core import Monitor
from repro.netsim import single_switch_network
from repro.packet import (
    IPv4Address,
    MACAddress,
    arp_reply,
    arp_request,
    ethernet,
    tcp_fin,
    tcp_packet,
)
from repro.props import (
    ArpKnowledge,
    arp_reply_within,
    firewall_basic,
    firewall_drops_after_close,
    firewall_timed,
    firewall_with_close,
    learned_no_flood,
    learned_unicast_port,
    link_down_clears_learning,
    nat_reverse_translation,
)
from repro.switch.pipeline import MissPolicy


def monitored_net(num_hosts, app, *props, taps_before=(), monitor_kwargs=None):
    net, sw, hosts = single_switch_network(
        num_hosts, switch_kwargs={"miss_policy": MissPolicy.CONTROLLER}
    )
    sw.set_app(app)
    for tap in taps_before:
        sw.add_tap(tap)
    monitor = Monitor(scheduler=net.scheduler, **(monitor_kwargs or {}))
    for prop in props:
        monitor.add_property(prop)
    monitor.attach(sw)
    return net, sw, hosts, monitor


class TestLearningSwitchS1:
    def test_correct_switch_is_clean(self):
        net, sw, hosts, mon = monitored_net(
            3, LearningSwitchApp(), learned_unicast_port(), learned_no_flood()
        )
        hosts[0].send(ethernet(1, 2))
        net.run()
        hosts[1].send(ethernet(2, 1))
        net.run()
        hosts[2].send(ethernet(3, 1))
        net.run()
        assert mon.violations == []

    def test_wrong_port_fault_detected(self):
        net, sw, hosts, mon = monitored_net(
            3, LearningSwitchApp(faults=sometimes("wrong_port", 1.0)),
            learned_unicast_port(),
        )
        hosts[0].send(ethernet(1, 9))  # learn 1@port1
        net.run()
        hosts[1].send(ethernet(2, 1))  # misdelivered
        net.run()
        assert len(mon.violations) == 1
        v = mon.violations[0]
        assert v.bindings["D"] == MACAddress(1)
        assert v.bindings["p"] == 1

    def test_flood_known_fault_detected(self):
        net, sw, hosts, mon = monitored_net(
            3, LearningSwitchApp(faults=sometimes("flood_known", 1.0)),
            learned_no_flood(),
        )
        hosts[0].send(ethernet(1, 9))
        net.run()
        hosts[1].send(ethernet(2, 1))
        net.run()
        assert len(mon.violations) >= 1

    def test_initial_flood_is_not_a_violation(self):
        # Before D is learned, flooding to it is correct behaviour.
        net, sw, hosts, mon = monitored_net(
            3, LearningSwitchApp(), learned_no_flood()
        )
        hosts[0].send(ethernet(1, 2))  # 2 not yet learned: flood is fine
        net.run()
        assert mon.violations == []

    def test_host_move_is_tracked(self):
        # D re-learned on a new port: unicast to the new port is correct.
        net, sw, hosts, mon = monitored_net(
            3, LearningSwitchApp(), learned_unicast_port()
        )
        hosts[0].send(ethernet(1, 9))
        net.run()
        hosts[2].send(ethernet(1, 9))  # MAC 1 moves to port 3
        net.run()
        hosts[1].send(ethernet(2, 1))  # delivered to port 3: correct now
        net.run()
        assert mon.violations == []


class TestFirewallS21:
    def _out(self, sport=10000):
        return tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", sport, 80)

    def _back(self, sport=10000):
        return tcp_packet(2, 1, "198.51.100.1", "10.0.0.1", 80, sport)

    def test_correct_firewall_clean(self):
        net, sw, hosts, mon = monitored_net(
            2, StatefulFirewallApp(), firewall_basic()
        )
        hosts[0].send(self._out())
        net.run()
        hosts[1].send(self._back())
        net.run()
        assert mon.violations == []

    def test_drop_valid_detected_by_basic(self):
        net, sw, hosts, mon = monitored_net(
            2, StatefulFirewallApp(faults=sometimes("drop_valid", 1.0)),
            firewall_basic(),
        )
        hosts[0].send(self._out())
        net.run()
        hosts[1].send(self._back())
        net.run()
        assert len(mon.violations) == 1
        assert str(mon.violations[0].bindings["A"]) == "10.0.0.1"

    def test_basic_property_is_unsound_about_expiry(self):
        # The paper's point: without the timeout refinement, a correct
        # firewall expiring stale state looks like a violator.
        net, sw, hosts, mon = monitored_net(
            2, StatefulFirewallApp(state_timeout=5.0), firewall_basic()
        )
        hosts[0].send(self._out())
        hosts[1].send_at(10.0, self._back())  # correctly dropped: stale
        net.run()
        assert len(mon.violations) == 1  # false alarm from the naive property

    def test_timed_property_tolerates_expiry(self):
        net, sw, hosts, mon = monitored_net(
            2, StatefulFirewallApp(state_timeout=5.0), firewall_timed(T=5.0)
        )
        hosts[0].send(self._out())
        hosts[1].send_at(10.0, self._back())
        net.run()
        assert mon.violations == []

    def test_timed_property_catches_early_expiry_bug(self):
        net, sw, hosts, mon = monitored_net(
            2,
            StatefulFirewallApp(state_timeout=10.0,
                                faults=always("early_expiry")),
            firewall_timed(T=10.0),
        )
        hosts[0].send(self._out())
        hosts[1].send_at(7.0, self._back())  # inside advertised window
        net.run()
        assert len(mon.violations) == 1

    def test_close_property_tolerates_post_close_drop(self):
        net, sw, hosts, mon = monitored_net(
            2, StatefulFirewallApp(), firewall_with_close(T=30.0)
        )
        hosts[0].send(self._out())
        hosts[0].send_at(1.0, tcp_fin(1, 2, "10.0.0.1", "198.51.100.1",
                                      10000, 80))
        hosts[1].send_at(2.0, self._back())  # correctly dropped post-close
        net.run()
        assert mon.violations == []

    def test_timed_property_false_alarms_post_close(self):
        # Without the obligation refinement, the legitimate post-close drop
        # still looks like a violation inside the window.
        net, sw, hosts, mon = monitored_net(
            2, StatefulFirewallApp(), firewall_timed(T=30.0)
        )
        hosts[0].send(self._out())
        hosts[0].send_at(1.0, tcp_fin(1, 2, "10.0.0.1", "198.51.100.1",
                                      10000, 80))
        hosts[1].send_at(2.0, self._back())
        net.run()
        assert len(mon.violations) == 1

    def test_ignore_close_detected_by_converse_property(self):
        net, sw, hosts, mon = monitored_net(
            2, StatefulFirewallApp(faults=always("ignore_close")),
            firewall_drops_after_close(),
        )
        hosts[0].send(self._out())
        hosts[0].send_at(1.0, tcp_fin(1, 2, "10.0.0.1", "198.51.100.1",
                                      10000, 80))
        hosts[1].send_at(2.0, self._back())  # wrongly forwarded
        net.run()
        assert len(mon.violations) == 1


class TestNatS22:
    def _nat(self, **kw):
        kw.setdefault("public_ip", IPv4Address("203.0.113.1"))
        return NatApp(**kw)

    def test_correct_nat_clean(self):
        net, sw, hosts, mon = monitored_net(
            2, self._nat(), nat_reverse_translation()
        )
        hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 5555, 80))
        net.run()
        hosts[1].send(tcp_packet(2, 1, "198.51.100.1", "203.0.113.1",
                                 80, 40000))
        net.run()
        assert mon.violations == []

    def test_corrupt_reverse_port_detected(self):
        net, sw, hosts, mon = monitored_net(
            2, self._nat(faults=sometimes("corrupt_reverse", 1.0)),
            nat_reverse_translation(),
        )
        hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 5555, 80))
        net.run()
        hosts[1].send(tcp_packet(2, 1, "198.51.100.1", "203.0.113.1",
                                 80, 40000))
        net.run()
        assert len(mon.violations) == 1
        v = mon.violations[0]
        assert v.bindings["P"] == 5555
        assert v.bindings["A2"] == IPv4Address("203.0.113.1")

    def test_corrupt_reverse_ip_detected(self):
        net, sw, hosts, mon = monitored_net(
            2, self._nat(faults=sometimes("corrupt_reverse_ip", 1.0)),
            nat_reverse_translation(),
        )
        hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 5555, 80))
        net.run()
        hosts[1].send(tcp_packet(2, 1, "198.51.100.1", "203.0.113.1",
                                 80, 40000))
        net.run()
        assert len(mon.violations) == 1

    def test_unrelated_inbound_does_not_advance(self):
        net, sw, hosts, mon = monitored_net(
            2, self._nat(), nat_reverse_translation()
        )
        hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 5555, 80))
        net.run()
        # Inbound for a *different* public port: dropped by NAT, and must
        # not advance the instance (guards on A2/P2 fail).
        hosts[1].send(tcp_packet(2, 1, "198.51.100.1", "203.0.113.1",
                                 80, 49999))
        net.run()
        assert mon.violations == []

    def test_multiple_flows_tracked_independently(self):
        net, sw, hosts, mon = monitored_net(
            2, self._nat(faults=sometimes("corrupt_reverse", 1.0)),
            nat_reverse_translation(),
        )
        for i in range(3):
            hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1",
                                     5000 + i, 80))
        net.run()
        for i in range(3):
            hosts[1].send(tcp_packet(2, 1, "198.51.100.1", "203.0.113.1",
                                     80, 40000 + i))
        net.run()
        assert len(mon.violations) == 3


class TestArpProxyS23:
    def _setup(self, proxy_faults=None, refresh="never", T=1.0):
        app = ArpProxyApp(faults=proxy_faults)
        knowledge = ArpKnowledge()
        prop = arp_reply_within(knowledge, T=T, refresh=refresh)
        return monitored_net(3, app, prop, taps_before=(knowledge.observe,))

    def test_prompt_reply_is_clean(self):
        net, sw, hosts, mon = self._setup()
        hosts[2].send(arp_reply(3, "10.0.0.3", 1, "10.0.0.1"))  # teaches
        net.run()
        hosts[0].send(arp_request(1, "10.0.0.1", "10.0.0.3"))
        net.run(until=5.0)
        assert mon.violations == []

    def test_suppressed_reply_detected_by_timer(self):
        net, sw, hosts, mon = self._setup(
            proxy_faults=sometimes("suppress_reply", 1.0))
        hosts[2].send(arp_reply(3, "10.0.0.3", 1, "10.0.0.1"))
        net.run()
        hosts[0].send(arp_request(1, "10.0.0.1", "10.0.0.3"))
        net.run(until=5.0)
        assert len(mon.violations) == 1
        assert mon.violations[0].trigger is None  # fired by the timer

    def test_late_reply_detected(self):
        net, sw, hosts, mon = self._setup(
            proxy_faults=FaultPlan(values={"reply_delay": 3.0}), T=1.0)
        hosts[2].send(arp_reply(3, "10.0.0.3", 1, "10.0.0.1"))
        net.run()
        hosts[0].send(arp_request(1, "10.0.0.1", "10.0.0.3"))
        net.run(until=5.0)
        assert len(mon.violations) == 1

    def test_request_storm_caught_with_sound_refresh(self):
        # Requests every T-1: with refresh="never" the deadline holds.
        net, sw, hosts, mon = self._setup(
            proxy_faults=sometimes("suppress_reply", 1.0), T=2.0)
        hosts[2].send(arp_reply(3, "10.0.0.3", 1, "10.0.0.1"))
        net.run()
        for k in range(5):
            hosts[0].send_at(0.5 + k * 1.0,
                             arp_request(1, "10.0.0.1", "10.0.0.3"))
        net.run(until=10.0)
        assert len(mon.violations) >= 1
        assert mon.violations[0].time == pytest.approx(2.5, abs=0.01)

    def test_request_storm_missed_with_buggy_refresh(self):
        # The paper's warning: resetting on each repeated request hides a
        # never-answered storm for as long as it keeps arriving.
        net, sw, hosts, mon = self._setup(
            proxy_faults=sometimes("suppress_reply", 1.0),
            refresh="on_prior", T=2.0)
        hosts[2].send(arp_reply(3, "10.0.0.3", 1, "10.0.0.1"))
        net.run()
        for k in range(5):
            hosts[0].send_at(0.5 + k * 1.0,
                             arp_request(1, "10.0.0.1", "10.0.0.3"))
        net.run(until=6.0)
        assert mon.violations == []  # still hidden while the storm lasts
        net.run(until=10.0)
        assert len(mon.violations) == 1  # caught only after it stops


class TestMultipleMatchS24:
    def test_link_down_with_stale_forwarding(self):
        app = LearningSwitchApp(faults=always("keep_on_link_down"))
        net, sw, hosts, mon = monitored_net(
            3, app, link_down_clears_learning()
        )
        hosts[0].send(ethernet(1, 9))
        hosts[1].send(ethernet(2, 9))
        net.run()
        sw.link_down(3)  # app (buggy) keeps its table
        hosts[1].send(ethernet(2, 1))  # unicast to stale D=1
        net.run()
        assert len(mon.violations) == 1
        assert mon.violations[0].bindings["D"] == MACAddress(1)

    def test_relearning_cancels(self):
        app = LearningSwitchApp(faults=always("keep_on_link_down"))
        net, sw, hosts, mon = monitored_net(
            3, app, link_down_clears_learning()
        )
        hosts[0].send(ethernet(1, 9))
        net.run()
        sw.link_down(3)
        hosts[0].send(ethernet(1, 9))  # D=1 re-learned after the event
        net.run()
        hosts[1].send(ethernet(2, 1))
        net.run()
        assert mon.violations == []

    def test_correct_app_clean(self):
        net, sw, hosts, mon = monitored_net(
            3, LearningSwitchApp(), link_down_clears_learning()
        )
        hosts[0].send(ethernet(1, 9))
        net.run()
        sw.link_down(3)
        hosts[1].send(ethernet(2, 1))  # correctly flooded (not unicast)
        net.run()
        assert mon.violations == []
