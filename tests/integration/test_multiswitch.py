"""Integration: monitors on multi-switch topologies.

The paper scopes itself to "properties that can be monitored using a
single switch" — these tests demonstrate that boundary concretely: each
switch carries its own monitor over its own event stream, violations are
attributed to the misbehaving switch, and a property can scope itself to
one switch via the ``switch`` metadata field.
"""

import pytest

from repro.apps import LearningSwitchApp, sometimes
from repro.core import (
    Bind,
    Const,
    EventKind,
    EventPattern,
    FieldEq,
    Monitor,
    Observe,
    PropertySpec,
    Var,
)
from repro.netsim import Network, TraceRecorder
from repro.packet import MACAddress, ethernet
from repro.props import learned_unicast_port
from repro.switch.pipeline import MissPolicy


def two_switch_chain(app_a=None, app_b=None):
    """h1 -- s1 -- s2 -- h2 (hosts on port 1, inter-switch link on port 2)."""
    net = Network()
    sa = net.add_switch("s1", num_ports=3, miss_policy=MissPolicy.CONTROLLER)
    sb = net.add_switch("s2", num_ports=3, miss_policy=MissPolicy.CONTROLLER)
    net.link(sa, 2, sb, 2)
    h1 = net.add_host("h1", MACAddress(1), __import__(
        "repro.packet", fromlist=["IPv4Address"]).IPv4Address("10.0.0.1"),
        sa, port=1)
    h2 = net.add_host("h2", MACAddress(2), __import__(
        "repro.packet", fromlist=["IPv4Address"]).IPv4Address("10.0.0.2"),
        sb, port=1)
    sa.set_app(app_a if app_a is not None else LearningSwitchApp())
    sb.set_app(app_b if app_b is not None else LearningSwitchApp())
    return net, sa, sb, h1, h2


class TestPerSwitchMonitors:
    def test_traffic_crosses_the_chain(self):
        net, sa, sb, h1, h2 = two_switch_chain()
        h1.send(ethernet(1, 2))
        net.run()
        assert len(h2.received) == 1

    def test_violation_attributed_to_the_buggy_switch(self):
        buggy = LearningSwitchApp(faults=sometimes("wrong_port", 1.0))
        net, sa, sb, h1, h2 = two_switch_chain(app_b=buggy)

        monitor_a = Monitor(scheduler=net.scheduler)
        monitor_a.add_property(learned_unicast_port(name="lu-a"))
        monitor_a.attach(sa)
        monitor_b = Monitor(scheduler=net.scheduler)
        monitor_b.add_property(learned_unicast_port(name="lu-b"))
        monitor_b.attach(sb)

        # Teach both switches where MAC 2 lives, then traffic back toward
        # it: s2 (buggy) misdelivers, s1 behaves.
        h2.send(ethernet(2, 1))
        net.run()
        h1.send(ethernet(1, 2))
        net.run()
        assert monitor_a.violations == []
        assert len(monitor_b.violations) >= 1

    def test_unscoped_property_false_alarms_across_switches(self):
        """WHY the paper scopes monitoring to a single switch: a monitor
        naively fed both switches' streams conflates their learning state
        (D learned on port p at s1 is unrelated to s2's ports) and
        false-alarms on two perfectly correct switches.  Scoping the
        property with the ``switch`` metadata field fixes it."""
        from repro.core import FieldNe

        def learned_unicast(name, switch_id=None):
            scope = ((FieldEq("switch", Const(switch_id)),)
                     if switch_id else ())
            return PropertySpec(
                name=name, description="",
                stages=(
                    Observe("learn", EventPattern(
                        kind=EventKind.ARRIVAL,
                        guards=scope,
                        binds=(Bind("D", "eth.src"), Bind("p", "in_port")))),
                    Observe("bad", EventPattern(
                        kind=EventKind.EGRESS,
                        guards=scope + (FieldEq("eth.dst", Var("D")),
                                        FieldNe("out_port", Var("p"))))),
                ),
                key_vars=("D",),
            )

        net, sa, sb, h1, h2 = two_switch_chain()  # both CORRECT
        monitor = Monitor(scheduler=net.scheduler)
        monitor.add_property(learned_unicast("lu-global"))
        monitor.add_property(learned_unicast("lu-s1", "s1"))
        monitor.add_property(learned_unicast("lu-s2", "s2"))
        monitor.attach(sa)
        monitor.attach(sb)

        h2.send(ethernet(2, 1))
        net.run()
        h1.send(ethernet(1, 2))
        net.run()

        by_prop = {}
        for violation in monitor.violations:
            by_prop.setdefault(violation.property_name, 0)
            by_prop[violation.property_name] += 1
        # The per-switch-scoped properties are clean (the switches ARE
        # correct); the naive network-wide one false-alarms.
        assert by_prop.get("lu-s1", 0) == 0
        assert by_prop.get("lu-s2", 0) == 0
        assert by_prop.get("lu-global", 0) >= 1

    def test_link_failure_cuts_the_chain(self):
        net, sa, sb, h1, h2 = two_switch_chain()
        link = net.links[0]
        h1.send(ethernet(1, 2))
        net.run()
        assert len(h2.received) == 1
        link.fail()
        h1.send(ethernet(1, 2))
        net.run()
        assert len(h2.received) == 1  # nothing new crossed

    def test_independent_event_streams(self):
        net, sa, sb, h1, h2 = two_switch_chain()
        rec_a, rec_b = TraceRecorder(), TraceRecorder()
        sa.add_tap(rec_a)
        sb.add_tap(rec_b)
        h1.send(ethernet(1, 2))
        net.run()
        assert all(e.switch_id == "s1" for e in rec_a.events)
        assert all(e.switch_id == "s2" for e in rec_b.events)
        assert len(rec_a.arrivals) == 1  # h1's frame
        assert len(rec_b.arrivals) == 1  # the forwarded copy
