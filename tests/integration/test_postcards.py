"""Integration: NetSight-style postcard provenance (the Sec. 3.2
suggestion for full provenance without on-switch retention)."""

import pytest

from repro.core import Monitor, ProvenanceLevel
from repro.core.postcards import Postcard, PostcardCollector, PostcardMonitor
from repro.netsim import single_switch_network
from repro.packet import IPv4Address, tcp_packet
from repro.props import nat_reverse_translation
from repro.apps import NatApp, sometimes
from repro.switch.pipeline import MissPolicy

PUBLIC_IP = IPv4Address("203.0.113.1")


def nat_run(collector=None, corrupt=True, flows=1):
    net, switch, hosts = single_switch_network(
        2, switch_kwargs={"miss_policy": MissPolicy.CONTROLLER})
    faults = sometimes("corrupt_reverse", 1.0) if corrupt else None
    switch.set_app(NatApp(public_ip=PUBLIC_IP, faults=faults))
    collector = collector or PostcardCollector()
    pm = PostcardMonitor(collector, scheduler=net.scheduler)
    pm.add_property(nat_reverse_translation())
    pm.attach(switch)
    for i in range(flows):
        hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1",
                                 5000 + i, 80))
    net.run()
    for i in range(flows):
        hosts[1].send(tcp_packet(2, 1, "198.51.100.1", str(PUBLIC_IP),
                                 80, 40000 + i))
    net.run()
    return pm, collector


class TestPostcardReconstruction:
    def test_violation_reconstructed_with_full_chain(self):
        pm, collector = nat_run()
        assert len(pm.violations) == 1
        assert len(collector.reconstructed) == 1
        rebuilt = collector.reconstructed[0]
        stages = [p.stage_name for p in rebuilt.history]
        # All four NAT observations present, in order.
        assert stages == [
            "outbound_arrival",
            "outbound_translated",
            "return_arrival",
            "return_mistranslated",
        ]
        times = [p.time for p in rebuilt.history]
        assert times == sorted(times)

    def test_on_switch_memory_stays_limited(self):
        """The monitor itself retains no events (LIMITED level)."""
        pm, collector = nat_run()
        violation = pm.violations[0]
        assert all(r.event is None for r in violation.history)
        # ...yet the reconstruction has the full chain.
        assert len(collector.reconstructed[0].history) == 4

    def test_clean_run_keeps_chains_pending(self):
        pm, collector = nat_run(corrupt=False)
        assert pm.violations == []
        assert collector.reconstructed == []
        # The correct NAT still generated partial chains (stages 1-3).
        assert collector.stored_postcards > 0

    def test_multiple_flows_reconstruct_independently(self):
        pm, collector = nat_run(flows=3)
        assert len(collector.reconstructed) == 3
        keys = {r.violation.bindings["P"] for r in collector.reconstructed}
        assert keys == {5000, 5001, 5002}

    def test_violation_chain_removed_from_log(self):
        pm, collector = nat_run()
        # The reconstructed instance's postcards left the pending log.
        assert collector.stored_postcards == 0

    def test_describe_renders_chain(self):
        pm, collector = nat_run()
        text = collector.reconstructed[0].describe()
        assert "reconstructed from postcards" in text
        assert "outbound_arrival" in text


class TestCollectorRetention:
    def _card(self, t, key=("k",), prop="p", stage="s"):
        return Postcard(property_name=prop, instance_key=key,
                        stage_name=stage, time=t, packet_uid=None, digest="x")

    def test_garbage_collection_drops_stale_chains(self):
        collector = PostcardCollector(retention=10.0)
        collector.receive(self._card(0.0, key=("old",)))
        collector.receive(self._card(100.0, key=("new",)))
        dropped = collector.collect_garbage()
        assert dropped == 1
        assert collector.stored_postcards == 1
        assert collector.postcards_dropped == 1

    def test_fresh_chains_survive(self):
        collector = PostcardCollector(retention=10.0)
        collector.receive(self._card(95.0, key=("a",)))
        collector.receive(self._card(100.0, key=("b",)))
        assert collector.collect_garbage() == 0

    def test_retention_validation(self):
        with pytest.raises(ValueError):
            PostcardCollector(retention=0.0)


class TestTimerViolationsShipPostcards:
    def test_absent_violation_reconstructs(self):
        from repro.core import Absent, Bind, EventKind, EventPattern, FieldEq, Observe, PropertySpec, Var
        from repro.packet import ethernet
        from repro.switch.events import PacketArrival

        prop = PropertySpec(
            name="noreply", description="",
            stages=(
                Observe("ask", EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("S", "eth.src"),))),
                Absent("silence", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.dst", Var("S")),)), within=1.0),
            ),
            key_vars=("S",),
        )
        collector = PostcardCollector()
        pm = PostcardMonitor(collector)
        pm.add_property(prop)
        pm.observe(PacketArrival(switch_id="s", time=0.0,
                                 packet=ethernet(1, 2), in_port=1))
        pm.advance_to(5.0)
        assert len(pm.violations) == 1
        rebuilt = collector.reconstructed[0]
        assert [p.stage_name for p in rebuilt.history] == ["ask", "silence"]
        assert rebuilt.history[-1].digest == "timer"
