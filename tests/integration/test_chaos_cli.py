"""Integration tests: ``repro chaos`` — the acceptance-criteria runs."""

import json

from repro.cli import main
from repro.netsim.chaos import PROFILES
from repro import resilience


class TestChaosCommand:
    def test_overloaded_full_catalog(self, capsys):
        """The headline acceptance run: zero crashes, zero leaks, both
        shed mechanisms engaged, clean count inside the interval."""
        assert main(["chaos", "--profile", "overloaded",
                     "--events", "1500"]) == 0
        out = capsys.readouterr().out
        assert "clean count WITHIN interval" in out
        assert "instance-evicted" in out
        assert "op-shed" in out
        assert "INVARIANT" not in out

    def test_overloaded_report_fields(self):
        report = resilience.run_chaos(PROFILES["overloaded"], seed=7,
                                      num_events=1500)
        assert report.invariant_failures == []
        by_kind = report.ledger["by_kind"]
        assert by_kind.get("instance-evicted", 0) > 0
        assert by_kind.get("op-shed", 0) + by_kind.get("op-dropped", 0) > 0
        lo, hi = report.interval
        assert lo <= report.clean_total <= hi
        assert report.bounded is True
        # Telemetry snapshot rides along with the monitor's counters.
        metrics = {m["name"] for m in report.telemetry["metrics"]}
        assert "repro_monitor_instances_evicted_total" in metrics
        assert "repro_monitor_ops_shed_total" in metrics

    def test_soak_rounds_and_json(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert main(["chaos", "--profile", "lossy", "--rounds", "3",
                     "--events", "400", "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "round 3/3" in out
        payload = json.loads(out_path.read_text())
        assert payload["profile"] == "lossy"
        assert len(payload["rounds"]) == 3
        # Rounds use derived seeds; each is a full report.
        assert [r["seed"] for r in payload["rounds"]] == [7, 8, 9]
        for round_report in payload["rounds"]:
            assert round_report["invariant_failures"] == []
            assert round_report["violations"]["bounded"] is None  # link faults

    def test_clean_profile_perfect_recall(self, capsys):
        assert main(["chaos", "--profile", "clean", "--events", "400"]) == 0
        out = capsys.readouterr().out
        assert "recall=1.000" in out
        assert "overflow ledger: empty" in out

    def test_adversarial_completes(self, capsys):
        assert main(["chaos", "--profile", "adversarial",
                     "--events", "600"]) == 0
        out = capsys.readouterr().out
        assert "recall only" in out
        assert "INVARIANT" not in out
