"""Integration: every Table 1 property detects its fault and stays quiet on
correct behaviour — the executable half of the Table 1 reproduction.
"""

import pytest

from repro.apps import (
    ArpProxyApp,
    BalanceMode,
    DhcpServerApp,
    DhcpSnooper,
    FaultPlan,
    LoadBalancerApp,
    PortKnockingApp,
    always,
    ftp_session,
    sometimes,
)
from repro.core import Monitor
from repro.netsim import single_switch_network
from repro.netsim.workload import send_all
from repro.packet import (
    DhcpMessageType,
    IPv4Address,
    MACAddress,
    arp_reply,
    arp_request,
    dhcp_packet,
    tcp_fin,
    tcp_packet,
    tcp_syn,
)
from repro.props import (
    ArpKnowledge,
    LeaseKnowledge,
    RoundRobinExpectation,
    arp_cache_preloaded,
    arp_known_not_forwarded,
    arp_unknown_forwarded,
    dhcp_no_overlap,
    dhcp_no_reuse,
    dhcp_reply_within,
    ftp_data_port_matches,
    knocking_invalidated,
    knocking_recognized,
    lb_hashed_port,
    lb_round_robin_port,
    lb_sticky_port,
    no_unfounded_reply,
)
from repro.switch.pipeline import MissPolicy


def monitored_net(num_hosts, app, *props, taps_before=()):
    net, sw, hosts = single_switch_network(
        num_hosts, switch_kwargs={"miss_policy": MissPolicy.CONTROLLER}
    )
    sw.set_app(app)
    for tap in taps_before:
        sw.add_tap(tap)
    monitor = Monitor(scheduler=net.scheduler)
    for prop in props:
        monitor.add_property(prop)
    monitor.attach(sw)
    return net, sw, hosts, monitor


class TestArpRows:
    def test_known_not_forwarded_fault(self):
        app = ArpProxyApp(faults=sometimes("forward_known", 1.0))
        net, sw, hosts, mon = monitored_net(3, app, arp_known_not_forwarded())
        hosts[2].send(arp_reply(3, "10.0.0.3", 1, "10.0.0.1"))
        net.run()
        hosts[0].send(arp_request(1, "10.0.0.1", "10.0.0.3"))
        net.run()
        assert len(mon.violations) >= 1

    def test_known_not_forwarded_clean(self):
        net, sw, hosts, mon = monitored_net(3, ArpProxyApp(),
                                            arp_known_not_forwarded())
        hosts[2].send(arp_reply(3, "10.0.0.3", 1, "10.0.0.1"))
        net.run()
        hosts[0].send(arp_request(1, "10.0.0.1", "10.0.0.3"))
        net.run()
        assert mon.violations == []

    def test_unknown_forwarded_fault(self):
        knowledge = ArpKnowledge()
        app = ArpProxyApp(faults=sometimes("suppress_reply", 1.0))
        net, sw, hosts, mon = monitored_net(
            3, app, arp_unknown_forwarded(knowledge, T=1.0),
            taps_before=(knowledge.observe,),
        )
        hosts[0].send(arp_request(1, "10.0.0.1", "10.0.0.99"))
        net.run(until=3.0)
        assert len(mon.violations) == 1

    def test_unknown_forwarded_clean(self):
        knowledge = ArpKnowledge()
        net, sw, hosts, mon = monitored_net(
            3, ArpProxyApp(), arp_unknown_forwarded(knowledge, T=1.0),
            taps_before=(knowledge.observe,),
        )
        hosts[0].send(arp_request(1, "10.0.0.1", "10.0.0.99"))
        net.run(until=3.0)
        assert mon.violations == []


class TestPortKnockingRows:
    def _pkt(self, dport, src="10.0.0.1"):
        return tcp_syn(1, 2, src, "10.0.0.9", 30000, dport)

    def _app(self, faults=None):
        return PortKnockingApp(knock_sequence=(7001, 7002),
                               protected_port=22, faults=faults)

    def test_invalidation_ignored_fault(self):
        net, sw, hosts, mon = monitored_net(
            2, self._app(always("ignore_wrong_guess")),
            knocking_invalidated(sequence=(7001, 7002), protected=22),
        )
        for dport in (7001, 9999, 7002, 22):
            hosts[0].send(self._pkt(dport))
        net.run()
        assert len(mon.violations) == 1

    def test_invalidation_respected_clean(self):
        net, sw, hosts, mon = monitored_net(
            2, self._app(),
            knocking_invalidated(sequence=(7001, 7002), protected=22),
        )
        for dport in (7001, 9999, 7002, 22):
            hosts[0].send(self._pkt(dport))
        net.run()
        assert mon.violations == []

    def test_never_open_fault(self):
        net, sw, hosts, mon = monitored_net(
            2, self._app(always("never_open")),
            knocking_recognized(sequence=(7001, 7002), protected=22),
        )
        for dport in (7001, 7002, 22):
            hosts[0].send(self._pkt(dport))
        net.run()
        assert len(mon.violations) == 1

    def test_recognition_clean(self):
        net, sw, hosts, mon = monitored_net(
            2, self._app(),
            knocking_recognized(sequence=(7001, 7002), protected=22),
        )
        for dport in (7001, 7002, 22):
            hosts[0].send(self._pkt(dport))
        net.run()
        assert mon.violations == []

    def test_recognition_not_owed_after_wrong_guess(self):
        # A strict gateway that denies after an intervening wrong guess is
        # correct: the unless pattern discharges the expectation.
        net, sw, hosts, mon = monitored_net(
            2, self._app(),
            knocking_recognized(sequence=(7001, 7002), protected=22),
        )
        for dport in (7001, 9999, 7002, 22):
            hosts[0].send(self._pkt(dport))
        net.run()
        assert mon.violations == []


class TestLoadBalancingRows:
    VIP = IPv4Address("10.0.0.100")

    def _app(self, mode=BalanceMode.HASH, faults=None):
        return LoadBalancerApp(vip=self.VIP, backend_ports=(2, 3, 4),
                               mode=mode, faults=faults)

    def _flow(self, sport, flags=None):
        kw = {} if flags is None else {"flags": flags}
        return tcp_syn(1, 0xFE, "10.0.0.1", self.VIP, sport, 8080) \
            if flags is None else tcp_packet(1, 0xFE, "10.0.0.1", self.VIP,
                                             sport, 8080, **kw)

    def test_hashed_port_fault(self):
        net, sw, hosts, mon = monitored_net(
            4, self._app(faults=sometimes("misroute_new", 1.0)),
            lb_hashed_port(self.VIP, (2, 3, 4)),
        )
        hosts[0].send(self._flow(1000))
        net.run()
        assert len(mon.violations) == 1

    def test_hashed_port_clean(self):
        net, sw, hosts, mon = monitored_net(
            4, self._app(), lb_hashed_port(self.VIP, (2, 3, 4)),
        )
        for sport in (1000, 1001, 1002):
            hosts[0].send(self._flow(sport))
        net.run()
        assert mon.violations == []

    def test_round_robin_fault(self):
        rr = RoundRobinExpectation(self.VIP, (2, 3, 4))
        net, sw, hosts, mon = monitored_net(
            4,
            self._app(mode=BalanceMode.ROUND_ROBIN,
                      faults=sometimes("misroute_new", 1.0)),
            lb_round_robin_port(self.VIP, (2, 3, 4), rr),
            taps_before=(rr.observe,),
        )
        hosts[0].send(self._flow(1000))
        net.run()
        assert len(mon.violations) == 1

    def test_round_robin_clean(self):
        rr = RoundRobinExpectation(self.VIP, (2, 3, 4))
        net, sw, hosts, mon = monitored_net(
            4, self._app(mode=BalanceMode.ROUND_ROBIN),
            lb_round_robin_port(self.VIP, (2, 3, 4), rr),
            taps_before=(rr.observe,),
        )
        for sport in (1000, 1001, 1002, 1003):
            hosts[0].send(self._flow(sport))
        net.run()
        assert mon.violations == []

    def test_sticky_fault(self):
        net, sw, hosts, mon = monitored_net(
            4, self._app(faults=sometimes("rebalance_midflow", 1.0)),
            lb_sticky_port(self.VIP),
        )
        from repro.packet import TCPFlags

        hosts[0].send(self._flow(1000))
        hosts[0].send(self._flow(1000, flags=TCPFlags.ACK))
        net.run()
        assert len(mon.violations) >= 1

    def test_sticky_clean_across_many_packets(self):
        net, sw, hosts, mon = monitored_net(
            4, self._app(), lb_sticky_port(self.VIP),
        )
        from repro.packet import TCPFlags

        hosts[0].send(self._flow(1000))
        for _ in range(4):
            hosts[0].send(self._flow(1000, flags=TCPFlags.ACK))
        net.run()
        assert mon.violations == []

    def test_sticky_move_after_close_is_clean(self):
        net, sw, hosts, mon = monitored_net(
            4, self._app(mode=BalanceMode.ROUND_ROBIN), lb_sticky_port(self.VIP),
        )
        from repro.packet import TCPFlags

        hosts[0].send(self._flow(1000))
        hosts[0].send(self._flow(1000, flags=TCPFlags.FIN | TCPFlags.ACK))
        # New flow with the same 5-tuple lands on the next backend: fine.
        hosts[0].send(self._flow(1000))
        net.run()
        assert mon.violations == []


class TestFtpRow:
    def _run(self, actual_port):
        from repro.apps import FtpAlgApp, always as _always

        app = FtpAlgApp(faults=_always("no_enforce"))
        net, sw, hosts, mon = monitored_net(2, app, ftp_data_port_matches())
        session = ftp_session(hosts[0].mac, hosts[1].mac, hosts[0].ip,
                              hosts[1].ip, advertised_port=1025,
                              actual_port=actual_port)
        send_all(hosts, session)
        net.run()
        return mon

    def test_matching_data_port_clean(self):
        assert self._run(actual_port=1025).violations == []

    def test_mismatched_data_port_detected(self):
        mon = self._run(actual_port=2000)
        assert len(mon.violations) == 1
        assert mon.violations[0].bindings["dport"] == 1025


class TestDhcpRows:
    def _server(self, **kw):
        kw.setdefault("server_id", IPv4Address("10.0.0.254"))
        kw.setdefault("pool_start", IPv4Address("10.0.0.100"))
        kw.setdefault("pool_size", 4)
        return DhcpServerApp(**kw)

    def test_reply_within_clean(self):
        net, sw, hosts, mon = monitored_net(
            2, self._server(), dhcp_reply_within(T=2.0))
        hosts[0].send(dhcp_packet(5, DhcpMessageType.REQUEST, xid=1))
        net.run(until=5.0)
        assert mon.violations == []

    def test_reply_delay_detected(self):
        net, sw, hosts, mon = monitored_net(
            2, self._server(faults=FaultPlan(values={"reply_delay": 4.0})),
            dhcp_reply_within(T=2.0))
        hosts[0].send(dhcp_packet(5, DhcpMessageType.REQUEST, xid=1))
        net.run(until=10.0)
        assert len(mon.violations) == 1

    def test_no_reply_detected(self):
        net, sw, hosts, mon = monitored_net(
            2, self._server(faults=sometimes("no_reply", 1.0)),
            dhcp_reply_within(T=2.0))
        hosts[0].send(dhcp_packet(5, DhcpMessageType.REQUEST, xid=1))
        net.run(until=10.0)
        assert len(mon.violations) == 1

    def test_no_reuse_clean_with_renewal(self):
        net, sw, hosts, mon = monitored_net(
            2, self._server(lease_time=60.0), dhcp_no_reuse(lease_time=60.0))
        hosts[0].send(dhcp_packet(5, DhcpMessageType.REQUEST, xid=1))
        # Renewal by the same client must not look like re-use.
        hosts[0].send_at(5.0, dhcp_packet(5, DhcpMessageType.REQUEST, xid=2))
        net.run()
        assert mon.violations == []

    def test_reuse_detected(self):
        net, sw, hosts, mon = monitored_net(
            2, self._server(pool_size=1, faults=always("reuse_leased")),
            dhcp_no_reuse(lease_time=60.0))
        hosts[0].send(dhcp_packet(5, DhcpMessageType.REQUEST, xid=1))
        hosts[0].send_at(5.0, dhcp_packet(6, DhcpMessageType.REQUEST, xid=2))
        net.run()
        assert len(mon.violations) == 1

    def test_reuse_after_release_is_clean(self):
        net, sw, hosts, mon = monitored_net(
            2, self._server(pool_size=1), dhcp_no_reuse(lease_time=60.0))
        hosts[0].send(dhcp_packet(5, DhcpMessageType.REQUEST, xid=1))
        hosts[0].send_at(5.0, dhcp_packet(5, DhcpMessageType.RELEASE))
        hosts[0].send_at(6.0, dhcp_packet(6, DhcpMessageType.REQUEST, xid=2))
        net.run()
        assert mon.violations == []

    def test_reuse_after_expiry_is_clean(self):
        net, sw, hosts, mon = monitored_net(
            2, self._server(pool_size=1, lease_time=5.0),
            dhcp_no_reuse(lease_time=5.0))
        hosts[0].send(dhcp_packet(5, DhcpMessageType.REQUEST, xid=1))
        hosts[0].send_at(10.0, dhcp_packet(6, DhcpMessageType.REQUEST, xid=2))
        net.run()
        assert mon.violations == []

    def test_overlap_between_servers_detected(self):
        # Two servers with overlapping pools, punted in parallel: the first
        # to answer leases 10.0.0.100; so does the second (same pool, no
        # coordination). The monitor sees two ACKs for one address with
        # different server ids.
        server_a = self._server(server_id=IPv4Address("10.0.0.254"),
                                pool_size=1)
        server_b = self._server(server_id=IPv4Address("10.0.0.253"),
                                pool_size=1)

        class TwinServers:
            def setup(self, switch):
                server_a.setup(switch)
                server_b.setup(switch)

            def on_packet_in(self, switch, packet, in_port):
                server_a.on_packet_in(switch, packet, in_port)
                server_b.on_packet_in(switch, packet, in_port)

            def on_oob(self, switch, event):
                pass

        net, sw, hosts, mon = monitored_net(2, TwinServers(),
                                            dhcp_no_overlap())
        hosts[0].send(dhcp_packet(5, DhcpMessageType.REQUEST, xid=1))
        net.run()
        assert len(mon.violations) == 1

    def test_single_server_no_overlap(self):
        net, sw, hosts, mon = monitored_net(2, self._server(),
                                            dhcp_no_overlap())
        hosts[0].send(dhcp_packet(5, DhcpMessageType.REQUEST, xid=1))
        hosts[0].send_at(1.0, dhcp_packet(6, DhcpMessageType.REQUEST, xid=2))
        net.run()
        assert mon.violations == []


class TestDhcpArpRows:
    def _setup(self, proxy_faults=None, with_snooper=True, extra_taps=()):
        proxy = ArpProxyApp(faults=proxy_faults)
        server = DhcpServerApp(
            server_id=IPv4Address("10.0.0.254"),
            pool_start=IPv4Address("10.0.0.100"), pool_size=4)
        snooper = DhcpSnooper(proxy)

        class ProxyPlusDhcp:
            def setup(self, switch):
                proxy.setup(switch)
                server.setup(switch)

            def on_packet_in(self, switch, packet, in_port):
                from repro.packet import Dhcp

                if packet.has(Dhcp):
                    server.on_packet_in(switch, packet, in_port)
                else:
                    proxy.on_packet_in(switch, packet, in_port)

            def on_oob(self, switch, event):
                pass

        taps = list(extra_taps)
        if with_snooper:
            taps.append(snooper.observe)
        return ProxyPlusDhcp(), taps, proxy

    def test_preload_honoured_clean(self):
        app, taps, proxy = self._setup()
        net, sw, hosts, mon = monitored_net(
            3, app, arp_cache_preloaded(T=1.0), taps_before=taps)
        hosts[0].send(dhcp_packet(5, DhcpMessageType.REQUEST, xid=1,
                                  requested_ip="10.0.0.100"))
        net.run()
        # Another host asks for the leased address: proxy must answer with
        # the leased MAC.
        hosts[1].send(arp_request(2, "10.0.0.2", "10.0.0.100"))
        net.run(until=5.0)
        assert mon.violations == []

    def test_skip_preload_detected(self):
        app, taps, proxy = self._setup(proxy_faults=always("skip_preload"))
        net, sw, hosts, mon = monitored_net(
            3, app, arp_cache_preloaded(T=1.0), taps_before=taps)
        hosts[0].send(dhcp_packet(5, DhcpMessageType.REQUEST, xid=1,
                                  requested_ip="10.0.0.100"))
        net.run()
        hosts[1].send(arp_request(2, "10.0.0.2", "10.0.0.100"))
        net.run(until=5.0)
        assert len(mon.violations) == 1

    def test_unfounded_reply_detected(self):
        knowledge = LeaseKnowledge()
        app, taps, proxy = self._setup(proxy_faults=always("reply_unknown"))
        net, sw, hosts, mon = monitored_net(
            3, app, no_unfounded_reply(knowledge),
            taps_before=taps + [knowledge.observe])
        hosts[1].send(arp_request(2, "10.0.0.2", "10.0.0.99"))
        net.run()
        assert len(mon.violations) == 1

    def test_founded_reply_clean(self):
        knowledge = LeaseKnowledge()
        app, taps, proxy = self._setup()
        net, sw, hosts, mon = monitored_net(
            3, app, no_unfounded_reply(knowledge),
            taps_before=taps + [knowledge.observe])
        # Lease first: the address becomes known via DHCP.
        hosts[0].send(dhcp_packet(5, DhcpMessageType.REQUEST, xid=1,
                                  requested_ip="10.0.0.100"))
        net.run()
        hosts[1].send(arp_request(2, "10.0.0.2", "10.0.0.100"))
        net.run()
        assert mon.violations == []
