"""Integration: the linter against the full catalog and the live engine.

Three consistency bars from the issue:

* the feasibility pass must agree with ``repro survey`` — i.e. with
  ``Backend.check`` — for every catalog property x backend pair;
* the split-mode verdicts must be consistent with the
  ``bench_split_vs_inline`` experiment: its echo property (inline-required
  statically) really does miss violations under split processing with a
  fast response, and a split-safe catalog property really does not;
* the shipped example files lint clean (exit 0) through the CLI.
"""

import glob
import os

import pytest

from repro.backends import UnsupportedFeature, all_backends
from repro.cli import main
from repro.core import (
    Bind,
    EventKind,
    EventPattern,
    FieldEq,
    Monitor,
    Observe,
    PropertySpec,
    Var,
)
from repro.lint import (
    DEFAULT_SPLIT_LAG,
    INLINE_REQUIRED,
    SPLIT_SAFE,
    analyze_split,
    survey_property,
)
from repro.packet import ethernet
from repro.props import build_table1
from repro.switch.events import PacketArrival
from repro.switch.switch import ProcessingMode

EXAMPLES = sorted(glob.glob(os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "properties",
    "*.prop")))


def echo_property():
    """The bench_split_vs_inline experiment's property, verbatim shape."""
    return PropertySpec(
        name="echo", description="response to a request",
        stages=(
            Observe("request", EventPattern(
                kind=EventKind.ARRIVAL, binds=(Bind("S", "eth.src"),))),
            Observe("response", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("eth.dst", Var("S")),))),
        ),
        key_vars=("S",),
    )


class TestFeasibilityAgreesWithSurvey:
    """survey_property() and Backend.check() can never disagree."""

    @pytest.mark.parametrize(
        "entry", build_table1(), ids=lambda e: e.prop.name)
    def test_catalog_property_against_every_backend(self, entry):
        verdicts = {v.backend: v for v in survey_property(entry.prop)}
        for backend in all_backends():
            try:
                backend.check(entry.prop)
                hosted = True
                feature = None
            except UnsupportedFeature as exc:
                hosted = False
                feature = exc.feature
            verdict = verdicts[backend.caps.name]
            assert verdict.hosted == hosted, (
                f"{entry.prop.name} x {backend.caps.name}")
            if not hosted:
                # check() raises the first blocker; the linter lists it first
                assert verdict.blockers[0].feature == feature

    def test_survey_covers_all_seven_backends(self):
        verdicts = survey_property(build_table1()[0].prop)
        assert len(verdicts) == 7


class TestSplitVerdictsMatchTheBench:
    def test_echo_property_is_inline_required(self):
        report = analyze_split(echo_property())
        assert report.classification == INLINE_REQUIRED
        assert any(h.code == "L200" for h in report.hazards)

    def test_echo_misses_violations_under_split_as_predicted(self):
        """The static verdict, validated against the live engine: a fast
        response (gap < lag) is missed in split mode, caught inline."""
        def drive(mode, gap):
            monitor = Monitor(mode=mode, split_lag=DEFAULT_SPLIT_LAG)
            monitor.add_property(echo_property())
            monitor.observe(PacketArrival(
                switch_id="s", time=0.0,
                packet=ethernet(1, 0xFFFF), in_port=1))
            monitor.observe(PacketArrival(
                switch_id="s", time=gap,
                packet=ethernet(0xEEEE, 1), in_port=2))
            monitor.advance_to(10.0)
            return len(monitor.violations)

        fast_gap = DEFAULT_SPLIT_LAG / 5
        assert drive(ProcessingMode.SPLIT, fast_gap) == 0  # missed
        assert drive(ProcessingMode.INLINE, fast_gap) == 1  # caught

    def test_at_least_one_catalog_property_is_inline_required(self):
        verdicts = {e.prop.name: analyze_split(e.prop).classification
                    for e in build_table1()}
        inline = [n for n, c in verdicts.items() if c == INLINE_REQUIRED]
        assert inline, verdicts

    def test_long_deadline_absent_property_is_split_safe(self):
        """A property whose violation path is a timer with seconds of slack
        tolerates a sub-millisecond update lag."""
        entries = {e.prop.name: e.prop for e in build_table1()}
        prop = entries["dhcp-reply-within"]
        report = analyze_split(prop)
        assert report.classification == SPLIT_SAFE
        # ... but shrink the lag budget past its deadline and it flips
        deadline = max(getattr(s, "within", 0) or 0 for s in prop.stages)
        assert analyze_split(
            prop, lag=deadline * 2).classification == INLINE_REQUIRED

    def test_split_safe_property_catches_violation_under_split(self):
        """The split-safe verdict's stated basis: every hazard on
        dhcp-reply-within carries more guaranteed slack than the lag."""
        entries = {e.prop.name: e.prop for e in build_table1()}
        prop = entries["dhcp-reply-within"]
        report = analyze_split(prop)
        assert report.classification == SPLIT_SAFE
        assert all(h.guaranteed_slack > DEFAULT_SPLIT_LAG
                   for h in report.hazards)


class TestShippedExamplesLintClean:
    def test_cli_lint_examples_exits_zero(self, capsys):
        assert len(EXAMPLES) == 20
        assert main(["lint"] + EXAMPLES) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_intentional_suppressions_are_counted(self, capsys):
        assert main(["lint"] + EXAMPLES) == 0
        out = capsys.readouterr().out
        # 3 infeasible-everywhere rows + 1 provenance bind = 4 suppressions
        assert "4 suppressed" in out

    def test_catalog_split_costs_are_priced(self):
        for entry in build_table1():
            cost = analyze_split(entry.prop).cost
            assert cost.pipeline_tables >= entry.prop.num_stages
            assert cost.state_bits_per_instance >= 0
            assert cost.model in ("rules", "engine")


class TestSplitLagProfiles:
    def test_table2_profile_covers_every_backend(self):
        from repro.backends import FAST_PATH_SPLIT_LAG, all_backends
        from repro.lint import backend_lag_profile

        profile = backend_lag_profile()
        names = {b.caps.name for b in all_backends()}
        assert set(profile) == names
        # Fast-path update backends get the fast lag, slow-path the default.
        assert profile["OpenState"] == FAST_PATH_SPLIT_LAG
        assert profile["Varanus"] == DEFAULT_SPLIT_LAG

    def test_resolve_prefers_focus_then_worst_case(self):
        from repro.lint import resolve_split_lag

        profile = {"A": 1e-6, "B": 1e-3}
        assert resolve_split_lag(profile, "A") == 1e-6
        assert resolve_split_lag(profile, "C") == 1e-3  # worst case
        assert resolve_split_lag(profile, None) == 1e-3
        assert resolve_split_lag(2e-4) == 2e-4
        assert resolve_split_lag({}) == DEFAULT_SPLIT_LAG

    def test_parse_split_lag_forms(self):
        import pytest

        from repro.lint import parse_split_lag

        assert parse_split_lag("0.001") == 0.001
        assert parse_split_lag("table2") == parse_split_lag("auto")
        profile = parse_split_lag("varanus=0.01,openstate=1e-6")
        assert profile == {"Varanus": 0.01, "OpenState": 1e-6}
        with pytest.raises(ValueError):
            parse_split_lag("-1")
        with pytest.raises(ValueError):
            parse_split_lag("bogus")
        with pytest.raises(ValueError):
            parse_split_lag("varanus=-0.5")

    def test_cli_lint_accepts_lag_profiles(self, capsys):
        assert main(["lint", "--split-lag", "table2", "--quiet"]
                    + EXAMPLES[:1]) == 0
        capsys.readouterr()
        assert main(["lint", "--split-lag", "nope", "--quiet"]
                    + EXAMPLES[:1]) == 2
        assert "bad --split-lag" in capsys.readouterr().err
