"""Attack synthesis closes the taint-lint loop (repro.adversarial).

The contract under test: a property the taint pass *flags* really does
degrade under the synthesized attack (shed counters above zero, ledger
uncertainty interval widened), while the benign control trace — and any
property the lint did *not* flag — stays clean.  If either side fails,
the lint is crying wolf or sleeping through one.
"""

import json

from repro.adversarial import (
    AttackFinding,
    catalog_findings,
    findings_for,
    render_attack_report,
    run_attack,
    run_attacks,
    run_exhaustion,
    synthesize_flood,
)
from repro.cli import main
from repro.lint import lint_source
from repro.props.dsl_sources import DSL_SOURCES

FLOODABLE_KEY = "knocking-invalidated"  # predicate-free stage 0, L017

PACED = """\
property paced_request "deadline the sender controls"
key PORT
observe request : arrival
    where tcp.dst == 7001
    bind PORT = in_port
absent reply : arrival within 5 refresh on_prior
    where tcp.src == 7001
"""

UNFLAGGED = """\
property pinned_lb "key half-pinned: the lint stays quiet"
key CLIENT, VIP
observe req : arrival
    where ipv4.dst == 10.0.0.100
    bind CLIENT = ipv4.src, VIP = ipv4.dst
observe resp : arrival
    where ipv4.src == $VIP and ipv4.dst == $CLIENT
"""


class TestExhaustionFlood:
    def test_flagged_property_degrades_and_control_stays_clean(self):
        (finding,) = [f for f in catalog_findings([FLOODABLE_KEY])
                      if f.code == "L017"]
        outcome = run_exhaustion(finding, cap=32, events=128)
        assert outcome.kind == "exhaustion-flood"
        # the acceptance bar: the attack pushes shed counters above zero
        # while the clean run stays at zero
        assert outcome.attack_sheds > 0
        assert outcome.control_sheds == 0
        assert outcome.succeeded and outcome.clean_control
        # the ledger's uncertainty interval widened under attack: every
        # evicted instance is a potentially missed violation
        low, high = outcome.attack_interval
        assert high >= outcome.attack_violations + outcome.attack_sheds

    def test_unflagged_property_yields_no_attack(self):
        assert findings_for(UNFLAGGED) == []
        # and the lint agrees end to end
        report = lint_source(UNFLAGGED)
        assert not [d for d in report.all_diagnostics()
                    if d.code in ("L017", "L018")]

    def test_flood_matches_the_stage0_guards(self):
        (finding,) = [f for f in catalog_findings([FLOODABLE_KEY])
                      if f.code == "L017"]
        flood = synthesize_flood(finding, 16)
        # knocking stage 0 requires tcp.dst == 7001; every forged packet
        # must honour it or the flood would not create instances
        for event in flood:
            fields = _tcp_dst(event.packet)
            assert fields == 7001
        # and the key field cycles: all sources distinct
        sources = {str(_ipv4_src(event.packet)) for event in flood}
        assert len(sources) == 16


def _tcp_dst(packet):
    return packet.field("tcp.dst")


def _ipv4_src(packet):
    return packet.field("ipv4.src")


class TestEvasionPacing:
    def test_pacing_defers_the_deadline(self):
        (finding,) = findings_for(PACED)
        assert finding.code == "L018"
        outcome = run_attack(finding)
        assert outcome.kind == "evasion-pacing"
        assert outcome.succeeded and outcome.clean_control
        # the unpaced control collects the violation the attacker dodged
        assert outcome.control_violations > 0


class TestSweep:
    def test_catalog_sweep_confirms_every_executed_attack(self):
        report = run_attacks(
            keys=[FLOODABLE_KEY, "dhcp-reply-within"],
            extra_sources=[PACED], cap=32)
        assert not report.failed
        kinds = {o.kind for o in report.outcomes}
        assert "exhaustion-flood" in kinds
        assert "evasion-pacing" in kinds
        text = render_attack_report(report)
        assert "confirmed" in text and "passed" in text

    def test_opaque_stage0_predicates_are_skipped_not_attacked(self):
        outcomes = [run_attack(f)
                    for f in catalog_findings(["firewall-basic"])]
        assert outcomes  # the property is flagged...
        assert all(o.kind == "skipped" for o in outcomes)  # ...not forged
        assert all("opaque predicate" in o.detail for o in outcomes)


class TestCli:
    def test_chaos_attack_smoke(self, tmp_path, capsys):
        out_path = str(tmp_path / "attack.json")
        assert main(["chaos", "--attack", "--rounds", "1",
                     "--json", out_path]) == 0
        out = capsys.readouterr().out
        assert "adversarial sweep" in out
        assert "attack sweep passed" in out
        with open(out_path, encoding="utf-8") as fp:
            payload = json.load(fp)
        assert payload["failed"] is False
        executed = [o for o in payload["outcomes"]
                    if o["kind"] != "skipped"]
        assert executed
        assert all(o["succeeded"] and o["clean_control"] for o in executed)
