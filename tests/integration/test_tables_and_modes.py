"""Integration: Table 1/Table 2 regeneration and side-effect-control modes."""

import pytest

from repro.backends import (
    PAPER_TABLE2,
    build_table2,
    diff_against_paper,
    render_table2,
)
from repro.core import Monitor
from repro.netsim import single_switch_network
from repro.packet import ethernet, tcp_packet
from repro.props import build_table1, render_table1
from repro.switch.events import PacketArrival
from repro.switch.switch import ProcessingMode


class TestTable1Reproduction:
    def test_every_row_matches(self):
        for entry in build_table1():
            assert entry.matches_paper(), entry.description

    def test_rows_are_monitorable(self):
        """Every catalog property loads into a monitor without error."""
        monitor = Monitor()
        for entry in build_table1():
            monitor.add_property(entry.prop)
        # And survives an arbitrary event without raising.
        monitor.observe(PacketArrival(switch_id="s", time=0.0,
                                      packet=ethernet(1, 2), in_port=1))

    def test_render_table1_is_stable(self):
        assert render_table1() == render_table1()


class TestTable2Reproduction:
    def test_cell_for_cell(self):
        assert diff_against_paper() == []

    def test_varanus_is_the_only_full_column(self):
        table = build_table2()
        semantic_rows = [
            "Event History", "Identification of related events",
            "Negative match", "Rule timeouts", "Timeout actions",
            "Symmetric match", "Wandering match", "Out-of-band events",
        ]
        for name in ("OpenState", "FAST", "POF and P4", "SNAP",
                     "Static Varanus"):
            cells = [table[row][name] for row in semantic_rows]
            assert "X" in cells or "" in cells, name
        varanus = [table[row]["Varanus"] for row in semantic_rows]
        assert all(c == "Y" for c in varanus)

    def test_nobody_has_full_provenance(self):
        table = build_table2()
        assert all(c in ("X", "") for c in table["Full provenance"].values())

    def test_paper_table_is_complete(self):
        # 13 rows x 7 backends
        assert len(PAPER_TABLE2) == 13
        for row, cells in PAPER_TABLE2.items():
            assert len(cells) == 7, row


class TestSideEffectModes:
    """Feature 9 at the system level: split monitors miss racing responses."""

    def _drive(self, mode, gap):
        from repro.core import Bind, EventKind, EventPattern, FieldEq, Observe, PropertySpec, Var

        prop = PropertySpec(
            name="echo", description="",
            stages=(
                Observe("seen", EventPattern(
                    kind=EventKind.ARRIVAL, binds=(Bind("S", "eth.src"),))),
                Observe("answered", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.dst", Var("S")),))),
            ),
            key_vars=("S",),
        )
        monitor = Monitor(mode=mode, split_lag=500e-6)
        monitor.add_property(prop)
        monitor.observe(PacketArrival(switch_id="s", time=0.0,
                                      packet=ethernet(1, 9), in_port=1))
        monitor.observe(PacketArrival(switch_id="s", time=gap,
                                      packet=ethernet(7, 1), in_port=2))
        monitor.advance_to(1.0)
        return monitor.violations

    def test_inline_catches_immediate_response(self):
        assert len(self._drive(ProcessingMode.INLINE, gap=1e-6)) == 1

    def test_split_misses_immediate_response(self):
        assert self._drive(ProcessingMode.SPLIT, gap=1e-6) == []

    def test_split_catches_slow_response(self):
        assert len(self._drive(ProcessingMode.SPLIT, gap=0.01)) == 1

    def test_error_rate_depends_on_gap_vs_lag(self):
        """Sweep the response gap across the split lag: the miss/catch
        boundary sits exactly at the lag."""
        for gap in (1e-4, 2e-4, 4e-4):
            assert self._drive(ProcessingMode.SPLIT, gap=gap) == []
        for gap in (6e-4, 1e-3, 1e-2):
            assert len(self._drive(ProcessingMode.SPLIT, gap=gap)) == 1


class TestMonitorOnSwitchLatency:
    """Inline on-switch monitoring adds forwarding latency; split does not
    (the latency/accuracy trade of Feature 9)."""

    def test_inline_monitor_charges_switch_meter(self):
        from repro.props import learned_unicast_port

        net, sw, hosts = single_switch_network(3)
        monitor = Monitor(meter=sw.meter, slow_path_updates=False)
        monitor.add_property(learned_unicast_port())
        monitor.attach(sw)
        before = sw.meter.fast_updates
        hosts[0].send(ethernet(1, 2))
        net.run()
        assert sw.meter.fast_updates > before
