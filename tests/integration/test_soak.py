"""Soak test: the full catalog against a long mixed workload, twice.

Determinism is a design requirement (DESIGN.md): the simulator has no
wall-clock dependence, so the same seed must give byte-identical verdicts.
The soak also acts as a smoke screen for interactions between properties
sharing one monitor over thousands of events.
"""

import random

import pytest

from repro.core import Monitor
from repro.packet import (
    DhcpMessageType,
    IPv4Address,
    arp_reply,
    arp_request,
    dhcp_packet,
    ethernet,
    tcp_fin,
    tcp_packet,
    tcp_syn,
)
from repro.props import build_table1, worked_examples
from repro.switch.events import (
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
)

NUM_EVENTS = 4000


def mixed_trace(seed):
    """A randomized stream touching every protocol the catalog reads."""
    rng = random.Random(seed)
    events = []
    t = 0.0
    uid_pool = []
    for _ in range(NUM_EVENTS):
        t += rng.uniform(1e-4, 0.05)
        roll = rng.random()
        src, dst = rng.randint(1, 8), rng.randint(1, 8)
        if roll < 0.25:
            packet = tcp_packet(src, dst, f"10.0.0.{src}",
                                f"198.51.100.{dst}",
                                rng.randint(1000, 1040), rng.choice(
                                    [80, 22, 7001, 7002, 8080]))
        elif roll < 0.40:
            packet = tcp_syn(src, 0xFE, f"10.0.0.{src}", "10.0.0.100",
                             rng.randint(1000, 1040), 8080)
        elif roll < 0.55:
            packet = arp_request(src, f"10.0.0.{src}",
                                 f"10.0.0.{rng.randint(1, 120)}")
        elif roll < 0.62:
            packet = arp_reply(src, f"10.0.0.{src}", dst, f"10.0.0.{dst}")
        elif roll < 0.72:
            packet = dhcp_packet(src, rng.choice(
                [DhcpMessageType.REQUEST, DhcpMessageType.ACK,
                 DhcpMessageType.RELEASE]),
                xid=rng.randint(1, 9),
                yiaddr=f"10.0.0.{100 + rng.randint(0, 9)}",
                server_id=f"10.0.0.{250 + rng.randint(0, 3)}")
        elif roll < 0.80:
            packet = tcp_fin(src, dst, f"10.0.0.{src}", f"198.51.100.{dst}",
                             rng.randint(1000, 1040), 80)
        elif roll < 0.85:
            events.append(OutOfBandEvent(
                switch_id="s", time=t,
                oob_kind=rng.choice([OobKind.PORT_DOWN, OobKind.PORT_UP]),
                port=rng.randint(1, 4)))
            continue
        else:
            packet = ethernet(src, dst)
        kind = rng.random()
        if kind < 0.5:
            events.append(PacketArrival(switch_id="s", time=t, packet=packet,
                                        in_port=rng.randint(1, 4)))
            uid_pool.append(packet)
        elif kind < 0.85 and uid_pool:
            # Egress of a previously-arrived packet (identity-coherent).
            prior = rng.choice(uid_pool[-50:])
            events.append(PacketEgress(
                switch_id="s", time=t, packet=prior, in_port=1,
                out_port=rng.randint(1, 4),
                action=rng.choice([EgressAction.UNICAST, EgressAction.FLOOD])))
        else:
            events.append(PacketDrop(switch_id="s", time=t, packet=packet,
                                     in_port=rng.randint(1, 4), reason="x"))
    return events


def run_catalog(seed):
    monitor = Monitor()
    for entry in build_table1():
        monitor.add_property(entry.prop)
    for prop in worked_examples():
        monitor.add_property(prop)
    events = mixed_trace(seed)
    for event in events:
        monitor.observe(event)
    monitor.advance_to(events[-1].time + 600.0)
    return monitor


def fingerprint(monitor):
    return [
        (v.property_name, round(v.time, 9),
         tuple(sorted((k, str(val)) for k, val in v.bindings.items())))
        for v in monitor.violations
    ]


class TestSoak:
    def test_catalog_survives_long_mixed_trace(self):
        monitor = run_catalog(seed=42)
        assert monitor.stats.events == pytest.approx(NUM_EVENTS, abs=1)
        # The random trace inevitably trips several properties; the point
        # is no crashes, no stuck instances, sane bookkeeping.
        stats = monitor.stats
        retired = (stats.violations + stats.instances_expired
                   + stats.instances_discharged + stats.instances_cancelled)
        assert stats.instances_created == monitor.live_instances() + retired

    def test_determinism_same_seed_same_verdicts(self):
        assert fingerprint(run_catalog(7)) == fingerprint(run_catalog(7))

    def test_different_seeds_differ(self):
        # Sanity that the fingerprint actually discriminates.
        assert fingerprint(run_catalog(7)) != fingerprint(run_catalog(8))

    def test_indexed_and_linear_agree_on_soak(self):
        def run(strategy):
            monitor = Monitor(store_strategy=strategy)
            for entry in build_table1():
                monitor.add_property(entry.prop)
            events = mixed_trace(21)
            for event in events:
                monitor.observe(event)
            monitor.advance_to(events[-1].time + 600.0)
            return fingerprint(monitor)

        assert run("indexed") == run("linear")
