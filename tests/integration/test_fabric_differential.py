"""Differential suite: the sharded fabric is observationally identical
to one plain :class:`Monitor` on unbounded (clean) configurations.

This is the fabric's correctness contract — partitioning by key must
never change *what* is monitored, only *where*.  Equality is asserted on
violation fingerprints, the full counter set, live/pending state, and
ledger emptiness, across shard counts and both execution modes.  Chaos
profiles with bounded stores split one global budget into per-shard
budgets (a documented difference), so for those the suite checks the
per-shard soak invariants and ledger-interval arithmetic instead of
exact equality.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import Monitor, MonitorStats
from repro.fabric import ShardedMonitor, fork_available
from repro.props import build_table1
from repro.resilience import (
    PROFILES,
    RunResult,
    build_sharded_monitor,
    catalog_trace,
    check_invariants,
)

SETTLE = 600.0
COUNTERS = tuple(MonitorStats._COUNTERS)


def catalog_props():
    return [entry.prop for entry in build_table1()]


def fingerprint(violations):
    # Sorted: the fabric orders same-timestamp violations by (time,
    # property, bindings) while the plain monitor keeps emission order.
    return sorted(
        (v.property_name, round(v.time, 9),
         tuple(sorted((k, str(val)) for k, val in v.bindings.items())))
        for v in violations
    )


def run_plain(events):
    monitor = Monitor()
    for prop in catalog_props():
        monitor.add_property(prop)
    monitor.observe_batch(events)
    monitor.advance_to(events[-1].time + SETTLE)
    return monitor


def run_sharded(events, num_shards, mode, batch=256):
    fabric = ShardedMonitor(
        catalog_props(), num_shards=num_shards, mode=mode)
    try:
        for i in range(0, len(events), batch):
            fabric.observe_batch(events[i:i + batch])
        fabric.advance_to(events[-1].time + SETTLE)
        fabric.sync()
    finally:
        if mode == "mp":
            fabric.stop()
    return fabric


def assert_equivalent(plain, fabric):
    assert fingerprint(fabric.violations) == fingerprint(plain.violations)
    for name in COUNTERS:
        assert getattr(fabric.stats, name) == getattr(plain.stats, name), name
    assert fabric.live_instances() == plain.live_instances()
    assert fabric.pending_op_count() == plain.pending_op_count() == 0
    assert not fabric.ledger.records
    assert not plain.ledger.records


class TestInprocessDifferential:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_matches_plain_monitor(self, num_shards):
        events = catalog_trace(seed=7, num_events=2000)
        plain = run_plain(events)
        fabric = run_sharded(events, num_shards, "inprocess")
        assert fabric.violations, "workload produced no violations — vacuous"
        assert_equivalent(plain, fabric)

    def test_every_shard_contributes(self):
        # The catalog has keyed and pinned properties on several shards;
        # a partitioning bug that starves one shard would shift work.
        events = catalog_trace(seed=7, num_events=2000)
        fabric = run_sharded(events, 4, "inprocess")
        per_shard = [m.stats.events for m in fabric.shard_monitors]
        assert all(count > 0 for count in per_shard), per_shard


@pytest.mark.skipif(not fork_available(),
                    reason="fork start method unavailable")
class TestMpDifferential:
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_matches_plain_monitor(self, num_shards):
        events = catalog_trace(seed=7, num_events=2000)
        plain = run_plain(events)
        fabric = run_sharded(events, num_shards, "mp")
        assert fabric.violations, "workload produced no violations — vacuous"
        assert_equivalent(plain, fabric)


class TestHypothesisWorkloads:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 16),
           num_shards=st.sampled_from([2, 3, 4]))
    def test_random_workload_equivalence(self, seed, num_shards):
        events = catalog_trace(seed=seed, num_events=400)
        plain = run_plain(events)
        fabric = run_sharded(events, num_shards, "inprocess", batch=64)
        assert_equivalent(plain, fabric)


class TestChaosProfilesPerShard:
    @pytest.mark.parametrize("profile_name", sorted(PROFILES))
    def test_invariants_hold_on_every_shard(self, profile_name):
        events = catalog_trace(seed=13, num_events=1500)
        fabric = build_sharded_monitor(
            PROFILES[profile_name], num_shards=2, mode="inprocess")
        for i in range(0, len(events), 256):
            fabric.observe_batch(events[i:i + 256])
        assert fabric.drain(until=events[-1].time + SETTLE) == 0
        for shard in fabric.shard_monitors:
            result = RunResult(monitor=shard, events_offered=len(events),
                               events_seen=shard.stats.events,
                               link_counters={})
            assert check_invariants(result) == []
        # Shed records from every shard land in the one fabric ledger,
        # and the interval stays well-formed around the observed count.
        observed = len(fabric.violations)
        lo, hi = fabric.ledger.interval(observed)
        assert lo <= observed <= hi
        shard_sheds = sum(
            len(m.ledger.records) for m in fabric.shard_monitors)
        assert len(fabric.ledger.records) == shard_sheds
