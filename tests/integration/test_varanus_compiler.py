"""Integration: the Varanus property-to-rules compiler.

The strongest check is differential: the compiled dataplane monitor (pure
switch rules, no engine) and the reference monitor engine watch the same
traffic and must raise the same violations.
"""

import random

import pytest

from repro.backends.varanus_compiler import (
    VaranusCompileError,
    check_compilable,
    compile_property,
)
from repro.core import (
    Absent,
    Bind,
    Const,
    EventKind,
    EventPattern,
    FieldEq,
    FieldNe,
    Monitor,
    Observe,
    PropertySpec,
    Var,
)
from repro.netsim import EventScheduler
from repro.packet import IPv4Address, tcp_syn
from repro.props import firewall_basic, link_down_clears_learning, nat_reverse_translation
from repro.switch.match import MatchSpec
from repro.switch.pipeline import MissPolicy
from repro.switch.switch import Switch


def knock_chain(name="pk-chain"):
    """3-stage all-arrival property: 7001, then 7002, then 22 => violation."""
    return PropertySpec(
        name=name, description="knock sequence leads to access",
        stages=(
            Observe("k1", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("tcp.dst", Const(7001)),),
                binds=(Bind("knocker", "ipv4.src"),))),
            Observe("k2", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("ipv4.src", Var("knocker")),
                        FieldEq("tcp.dst", Const(7002))))),
            Observe("access", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("ipv4.src", Var("knocker")),
                        FieldEq("tcp.dst", Const(22))))),
        ),
        key_vars=("knocker",),
    )


def knock_with_cancel(name="pk-cancel"):
    """As above (2 stages) but a wrong guess cancels the instance."""
    return PropertySpec(
        name=name, description="",
        stages=(
            Observe("k1", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("tcp.dst", Const(7001)),),
                binds=(Bind("knocker", "ipv4.src"),))),
            Observe("access", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("ipv4.src", Var("knocker")),
                        FieldEq("tcp.dst", Const(22)))),
                unless=(EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("ipv4.src", Var("knocker")),
                            FieldEq("tcp.dst", Const(9999)))),)),
        ),
        key_vars=("knocker",),
    )


def unanswered(name="unanswered", T=2.0):
    """Absent final stage: a 7001 knock must be followed by 7002 within T."""
    return PropertySpec(
        name=name, description="",
        stages=(
            Observe("k1", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("tcp.dst", Const(7001)),),
                binds=(Bind("knocker", "ipv4.src"),))),
            Absent("no_followup", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("ipv4.src", Var("knocker")),
                        FieldEq("tcp.dst", Const(7002)))),
                within=T),
        ),
        key_vars=("knocker",),
    )


def build_switch():
    sched = EventScheduler()
    return Switch("mon", sched, num_ports=2, num_tables=1,
                  miss_policy=MissPolicy.FLOOD), sched


def drive(prop, packets, settle=0.0):
    """Run the same timed packets through the compiled rules AND the
    reference engine; return (dataplane alert count, engine violations)."""
    switch, sched = build_switch()
    compile_property(switch, prop)
    alerts = []
    switch.add_alert_sink(alerts.append)

    engine = Monitor(scheduler=sched)
    engine.add_property(prop)
    engine.attach(switch)

    for when, packet in packets:
        sched.call_at(when, lambda p=packet: switch.receive(p, 1))
    sched.run()
    if settle:
        sched.clock.advance_to(max(sched.clock.now(), settle))
        switch._on_expiry_deadline()  # fire any remaining rule timers
        engine.advance_to(sched.clock.now())
    return alerts, engine.violations


def pkt(src_ip, dport):
    return tcp_syn(1, 2, src_ip, "10.0.0.99", 30000, dport)


class TestCompiledChain:
    def test_full_sequence_raises_alert(self):
        packets = [
            (0.0, pkt("10.0.0.1", 7001)),
            (1.0, pkt("10.0.0.1", 7002)),
            (2.0, pkt("10.0.0.1", 22)),
        ]
        alerts, violations = drive(knock_chain(), packets)
        assert len(alerts) == 1
        assert len(violations) == 1
        assert alerts[0].message == "pk-chain"
        assert alerts[0].carried.get("ipv4.src") == IPv4Address("10.0.0.1")

    def test_incomplete_sequence_is_silent(self):
        packets = [
            (0.0, pkt("10.0.0.1", 7001)),
            (1.0, pkt("10.0.0.1", 22)),  # skipped 7002
        ]
        alerts, violations = drive(knock_chain(), packets)
        assert alerts == [] and violations == []

    def test_per_key_instances(self):
        packets = [
            (0.0, pkt("10.0.0.1", 7001)),
            (0.1, pkt("10.0.0.2", 7001)),
            (1.0, pkt("10.0.0.1", 7002)),
            (1.1, pkt("10.0.0.2", 7002)),
            (2.0, pkt("10.0.0.1", 22)),
            (2.1, pkt("10.0.0.2", 22)),
        ]
        alerts, violations = drive(knock_chain(), packets)
        assert len(alerts) == 2 == len(violations)

    def test_cross_key_events_do_not_advance(self):
        packets = [
            (0.0, pkt("10.0.0.1", 7001)),
            (1.0, pkt("10.0.0.2", 7002)),  # different knocker
            (2.0, pkt("10.0.0.1", 22)),
        ]
        alerts, violations = drive(knock_chain(), packets)
        assert alerts == [] and violations == []

    def test_instance_tables_unroll_depth(self):
        switch, sched = build_switch()
        compile_property(switch, knock_chain())
        base = switch.pipeline.depth
        for i in range(4):
            switch.receive(pkt(f"10.0.0.{i + 1}", 7001), 1)
        assert switch.pipeline.depth == base + 4  # one table per instance

    def test_cancel_pattern_kills_instance(self):
        packets = [
            (0.0, pkt("10.0.0.1", 7001)),
            (1.0, pkt("10.0.0.1", 9999)),  # the cancel
            (2.0, pkt("10.0.0.1", 22)),
        ]
        alerts, violations = drive(knock_with_cancel(), packets)
        assert alerts == [] and violations == []

    def test_without_cancel_event_violates(self):
        packets = [
            (0.0, pkt("10.0.0.1", 7001)),
            (2.0, pkt("10.0.0.1", 22)),
        ]
        alerts, violations = drive(knock_with_cancel(), packets)
        assert len(alerts) == 1 == len(violations)


class TestCompiledTimeoutAction:
    def test_timer_fires_violation(self):
        packets = [(0.0, pkt("10.0.0.1", 7001))]
        alerts, violations = drive(unanswered(T=2.0), packets, settle=5.0)
        assert len(alerts) == 1
        assert len(violations) == 1
        assert alerts[0].carried.get("ipv4.src") == IPv4Address("10.0.0.1")

    def test_discharge_cancels_timer(self):
        packets = [
            (0.0, pkt("10.0.0.1", 7001)),
            (1.0, pkt("10.0.0.1", 7002)),  # the awaited follow-up
        ]
        alerts, violations = drive(unanswered(T=2.0), packets, settle=5.0)
        assert alerts == [] and violations == []

    def test_observe_within_expires_silently(self):
        prop = PropertySpec(
            name="timed-chain", description="",
            stages=(
                Observe("k1", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("tcp.dst", Const(7001)),),
                    binds=(Bind("knocker", "ipv4.src"),))),
                Observe("k2", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("ipv4.src", Var("knocker")),
                            FieldEq("tcp.dst", Const(7002)))),
                    within=1.0),
            ),
            key_vars=("knocker",),
        )
        packets = [
            (0.0, pkt("10.0.0.1", 7001)),
            (3.0, pkt("10.0.0.1", 7002)),  # after the 1s window
        ]
        alerts, violations = drive(prop, packets, settle=5.0)
        assert alerts == [] and violations == []


class TestFragmentValidation:
    def test_accepts_the_knock_chain(self):
        check_compilable(knock_chain())

    def test_rejects_predicate_guards(self):
        # firewall_basic's stage 0 uses an internal->external Predicate.
        with pytest.raises(VaranusCompileError) as exc:
            check_compilable(firewall_basic())
        assert "Predicate" in str(exc.value)

    def test_rejects_drop_observations(self):
        prop = PropertySpec(
            name="needs-drops", description="",
            stages=(
                Observe("a", EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("S", "ipv4.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.DROP,
                    guards=(FieldEq("ipv4.dst", Var("S")),))),
            ),
            key_vars=("S",),
        )
        with pytest.raises(VaranusCompileError) as exc:
            check_compilable(prop)
        assert "taps" in str(exc.value)

    def test_rejects_identity(self):
        with pytest.raises(VaranusCompileError):
            check_compilable(nat_reverse_translation())

    def test_rejects_oob(self):
        with pytest.raises(VaranusCompileError):
            check_compilable(link_down_clears_learning())

    def test_rejects_intermediate_absent(self):
        prop = PropertySpec(
            name="bad", description="",
            stages=(
                Observe("a", EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("S", "ipv4.src"),))),
                Absent("quiet", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("ipv4.src", Var("S")),)), within=1.0),
                Observe("late", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("ipv4.src", Var("S")),))),
            ),
            key_vars=("S",),
        )
        with pytest.raises(VaranusCompileError):
            check_compilable(prop)

    def test_rejects_unflowable_variable(self):
        # $S is bound at stage 0 but stage 1 neither binds nor pins it, so
        # stage 2 cannot read it from the stage-1 packet.
        prop = PropertySpec(
            name="no-flow", description="",
            stages=(
                Observe("a", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("tcp.dst", Const(1)),),
                    binds=(Bind("S", "ipv4.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("tcp.dst", Const(2)),))),
                Observe("c", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("ipv4.src", Var("S")),))),
            ),
            key_vars=("S",),
        )
        with pytest.raises(VaranusCompileError) as exc:
            compile_property(build_switch()[0], prop)
        assert "value flow" in str(exc.value)


class TestDifferential:
    """Random traffic: compiled rules and the engine must agree."""

    @pytest.mark.parametrize("seed", range(8))
    def test_knock_chain_agrees_on_random_traffic(self, seed):
        rng = random.Random(seed)
        packets = []
        t = 0.0
        for _ in range(60):
            t += rng.uniform(0.01, 0.2)
            src = f"10.0.0.{rng.randint(1, 4)}"
            dport = rng.choice([7001, 7002, 22, 80])
            packets.append((t, pkt(src, dport)))
        alerts, violations = drive(knock_chain(name=f"pk-{seed}"), packets)
        assert len(alerts) == len(violations), (
            f"seed {seed}: dataplane {len(alerts)} vs engine "
            f"{len(violations)}"
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_timeout_property_agrees_on_random_traffic(self, seed):
        rng = random.Random(100 + seed)
        packets = []
        t = 0.0
        for _ in range(30):
            t += rng.uniform(0.1, 1.5)
            src = f"10.0.0.{rng.randint(1, 3)}"
            dport = rng.choice([7001, 7002, 80])
            packets.append((t, pkt(src, dport)))
        alerts, violations = drive(
            unanswered(name=f"un-{seed}", T=2.0), packets, settle=t + 10.0
        )
        assert len(alerts) == len(violations), (
            f"seed {seed}: dataplane {len(alerts)} vs engine "
            f"{len(violations)}"
        )
