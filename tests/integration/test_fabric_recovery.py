"""Crash-recovery equivalence: a supervised fabric that loses workers
mid-replay still reports the plain monitor's violation set, within the
overflow ledger's uncertainty interval.

Three fault families, all on real forked workers:

* SIGKILL mid-replay — the supervisor restarts the worker, rehydrates
  it from checkpoint + journal, and the merged violation set matches
  the clean single-monitor baseline (exactly, when the ledger is
  empty).
* A hung worker at shutdown (SIGSTOP) — ``stop()`` stays bounded, the
  unrecovered tail is ledgered as ``shard-quit-timeout`` ink.
* A poison batch (an event whose property predicate SIGKILLs its own
  worker) — quarantined after ``poison_threshold`` replay deaths
  instead of burning the restart budget forever.
"""

import os
import signal
import time

import pytest

from repro.core.monitor import Monitor
from repro.core.refs import EventKind, EventPattern, Predicate
from repro.core.spec import Observe, PropertySpec
from repro.fabric import ShardedMonitor, SupervisorPolicy, fork_available
from repro.fabric.supervise import KIND_QUARANTINE, KIND_QUIT_TIMEOUT
from repro.netsim.chaos import PROFILES
from repro.packet import tcp_packet
from repro.props import build_table1
from repro.resilience import (
    catalog_trace,
    crash_schedule,
    render_crash_report,
    run_crash_chaos,
)
from repro.switch.events import PacketArrival

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable")

SETTLE = 600.0

#: fast-recovery knobs so tests don't sit in real backoff sleeps
FAST = dict(heartbeat_interval=0.2, heartbeat_timeout=10.0,
            backoff_base=0.01, backoff_max=0.2)


def catalog_props():
    return [entry.prop for entry in build_table1()]


def fingerprint(violations):
    return sorted(
        (v.property_name, round(v.time, 9),
         tuple(sorted((k, str(val)) for k, val in v.bindings.items())))
        for v in violations
    )


def run_plain(events):
    monitor = Monitor()
    for prop in catalog_props():
        monitor.add_property(prop)
    monitor.observe_batch(events)
    monitor.advance_to(events[-1].time + SETTLE)
    return monitor


class TestSigkillEquivalence:
    def test_sigkill_one_shard_mid_replay(self):
        events = catalog_trace(seed=7, num_events=4000)
        plain = run_plain(events)
        assert plain.violations, "workload produced no violations — vacuous"

        policy = SupervisorPolicy(checkpoint_interval=512, **FAST)
        fabric = ShardedMonitor(catalog_props(), num_shards=2, mode="mp",
                                supervision=policy)
        batch = 256
        kill_at = (len(events) // batch // 2) * batch
        try:
            for i in range(0, len(events), batch):
                if i == kill_at:
                    pid = fabric.supervisor.worker_pids()[0]
                    assert pid is not None
                    os.kill(pid, signal.SIGKILL)
                fabric.observe_batch(events[i:i + batch])
            fabric.advance_to(events[-1].time + SETTLE)
            fabric.sync()
            fabric.stop()

            assert fabric.supervisor.total_restarts() >= 1
            assert not fabric.supervisor.failed()
            observed = len(fabric.violations)
            lo, hi = fabric.ledger.interval(observed)
            assert lo <= len(plain.violations) <= hi, (
                lo, len(plain.violations), hi)
            if not fabric.ledger.records:
                # nothing was lost: recovery must be *exact*
                assert fingerprint(fabric.violations) \
                    == fingerprint(plain.violations)
        finally:
            fabric.close()

    def test_run_crash_chaos_roundtrip(self):
        profile = PROFILES["worker-crash"]
        report = run_crash_chaos(profile, seed=3, num_events=3000)
        assert report.kills_delivered >= 1
        assert report.restarts >= report.kills_delivered
        assert report.bounded, (report.clean_total, report.interval)
        assert not report.failed_shards
        assert not report.invariant_failures
        rendered = render_crash_report(report)
        assert "WITHIN interval" in rendered
        payload = report.to_dict()
        assert payload["violations"]["bounded"] is True
        assert payload["recovery"]["restarts"] == report.restarts

    def test_crash_schedule_is_deterministic_and_staggered(self):
        profile = PROFILES["worker-crash"]
        a = crash_schedule(profile, 4000, 2, 256)
        b = crash_schedule(profile, 4000, 2, 256)
        assert a == b
        assert sum(len(v) for v in a.values()) == 2  # one kill per shard


class TestQuiesceTimeout:
    def test_sigstop_worker_bounds_stop_and_ledgers(self):
        events = catalog_trace(seed=5, num_events=1000)
        policy = SupervisorPolicy(quiesce_timeout=0.3,
                                  heartbeat_interval=1e9,
                                  heartbeat_timeout=10.0)
        fabric = ShardedMonitor(catalog_props(), num_shards=2, mode="mp",
                                supervision=policy)
        try:
            fabric.observe_batch(events)
            pid = fabric.supervisor.worker_pids()[0]
            os.kill(pid, signal.SIGSTOP)
            try:
                t0 = time.monotonic()
                fabric.stop(now=events[-1].time + SETTLE)
                elapsed = time.monotonic() - t0
            finally:
                try:
                    os.kill(pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass  # quit() already reaped it
            assert elapsed < 10.0, "stop() must stay bounded"
            by_kind = fabric.ledger.summary()["by_kind"]
            assert by_kind.get(KIND_QUIT_TIMEOUT, 0) >= 1
            rows = fabric.shard_liveness()
            assert rows[0]["down_reason"] == "hung at quiesce"
        finally:
            fabric.close()


# -- poison batch -----------------------------------------------------------

POISON_PORT = 31337


def _boom(fields, env):
    if fields.get("tcp.dst") == POISON_PORT:
        os.kill(os.getpid(), signal.SIGKILL)
    return False


def poison_prop():
    """Unkeyed (pinned) property whose guard kills its own worker on a
    magic destination port — only ever evaluated inside shard workers."""
    return PropertySpec(
        name="poison-pill",
        description="crashes the owning worker on the magic port",
        stages=(
            Observe("boom", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(Predicate(_boom, "magic port crashes the worker",
                                  fields_used=("tcp.dst",)),))),
            Observe("never", EventPattern(kind=EventKind.DROP)),
        ),
        key_vars=(),
    )


def arrival(n, t, dst_port=99):
    return PacketArrival(
        switch_id="s", time=t,
        packet=tcp_packet(f"00:00:00:00:{(n >> 8) & 0xFF:02x}:{n & 0xFF:02x}",
                          "00:00:00:00:00:99",
                          f"10.0.{(n >> 8) & 0xFF}.{n & 0xFF}",
                          "198.51.100.9", 1024 + (n % 1000), dst_port),
        in_port=1)


class TestPoisonQuarantine:
    def test_poison_batch_is_quarantined_not_retried_forever(self):
        policy = SupervisorPolicy(poison_threshold=2, restart_budget=10,
                                  checkpoint_interval=10_000,
                                  heartbeat_interval=1e9,
                                  heartbeat_timeout=10.0,
                                  backoff_base=0.0, backoff_max=0.0)
        fabric = ShardedMonitor([poison_prop()], num_shards=2, mode="mp",
                                supervision=policy)
        try:
            t = 0.0
            batch_size = 25
            made = 0

            def next_batch(poison=False):
                nonlocal t, made
                out = []
                for _ in range(batch_size):
                    t += 0.01
                    made += 1
                    out.append(arrival(made, t))
                if poison:
                    t += 0.01
                    out.append(arrival(0, t, dst_port=POISON_PORT))
                return out

            fabric.observe_batch(next_batch())
            fabric.observe_batch(next_batch(poison=True))  # kills worker
            # subsequent batches trigger detect -> restart -> replay;
            # the replayed poison batch kills two replacements, then is
            # quarantined and the third replay goes through clean
            for _ in range(6):
                fabric.observe_batch(next_batch())
            fabric.stop(now=t + 1.0)

            sup = fabric.supervisor
            assert len(sup.quarantine_log) == 1
            record = sup.quarantine_log[0]
            assert record.kills == 2
            assert record.events == batch_size + 1
            assert sup.total_restarts() >= 2
            assert not sup.failed()
            by_kind = fabric.ledger.summary()["by_kind"]
            assert by_kind[KIND_QUARANTINE] == record.events
            rows = fabric.shard_liveness()
            assert sum(r["quarantined_batches"] for r in rows) == 1
        finally:
            fabric.close()
