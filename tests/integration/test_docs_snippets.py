"""Every fenced ``python`` snippet in the documentation actually runs.

Snippets are extracted from README.md and docs/*.md and executed in
order, one shared namespace per file (later snippets in a page may
build on earlier ones, exactly as a reader would run them top to
bottom), with the repository root as the working directory so shipped
``examples/properties/*.prop`` paths resolve.  The runnable examples
under examples/ are exercised the same way.  A doc edit that breaks a
snippet — or a code change that breaks a doc — fails here.
"""

import glob
import io
import os
import re
import runpy
import contextlib

import pytest

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.M | re.S)


def doc_pages():
    pages = [os.path.join(ROOT, "README.md")]
    pages.extend(sorted(glob.glob(os.path.join(ROOT, "docs", "*.md"))))
    return pages


def snippets(path):
    with open(path, encoding="utf-8") as fp:
        return [match.group(1) for match in FENCE.finditer(fp.read())]


@pytest.fixture()
def repo_root_cwd(monkeypatch):
    monkeypatch.chdir(ROOT)


class TestDocSnippets:
    @pytest.mark.parametrize(
        "page", doc_pages(), ids=lambda p: os.path.relpath(p, ROOT))
    def test_page_snippets_run(self, page, repo_root_cwd, capsys):
        blocks = snippets(page)
        namespace = {"__name__": "__docs__"}
        for index, block in enumerate(blocks):
            code = compile(
                block, f"{os.path.relpath(page, ROOT)}[snippet {index}]",
                "exec")
            exec(code, namespace)

    def test_there_are_snippets_at_all(self):
        # The extraction regex matching nothing would green-wash
        # everything; pin the pages known to carry runnable examples.
        counted = {os.path.basename(page): len(snippets(page))
                   for page in doc_pages()}
        assert counted["README.md"] >= 2
        assert counted["LANGUAGE.md"] >= 1
        assert counted["OBSERVABILITY.md"] >= 2
        assert counted["PERFORMANCE.md"] >= 1


class TestExamples:
    @pytest.mark.parametrize("script", ["quickstart.py"])
    def test_example_runs(self, script, repo_root_cwd):
        with contextlib.redirect_stdout(io.StringIO()) as out:
            runpy.run_path(
                os.path.join(ROOT, "examples", script), run_name="__main__")
        assert "VIOLATION" in out.getvalue()
