"""Integration: the DSL catalog matches the programmatic catalog.

DESIGN.md promises every property "as both DSL text and IR"; these tests
keep the two halves in lock-step — each DSL-compiled property must analyze
to exactly the same feature requirements as its programmatic twin (and
therefore reproduce the same Table 1 row).
"""

import pytest

from repro.core import Monitor, analyze
from repro.props import build_table1
from repro.props.dsl_sources import (
    DSL_SOURCES,
    TABLE1_DSL_KEYS,
    WORKED_EXAMPLE_DSL_KEYS,
    dsl_table1,
    dsl_worked_examples,
)


@pytest.fixture(scope="module")
def programmatic():
    return build_table1()


@pytest.fixture(scope="module")
def dsl_specs():
    return dict(dsl_table1())


class TestDslTable1Equivalence:
    def test_all_thirteen_present(self, dsl_specs):
        assert len(dsl_specs) == 13

    @pytest.mark.parametrize("row", range(13))
    def test_row_analyzes_identically(self, row, programmatic, dsl_specs):
        entry = programmatic[row]
        key = TABLE1_DSL_KEYS[row]
        dsl_prop = dsl_specs[key]
        assert analyze(dsl_prop) == analyze(entry.prop), (
            f"{key}: DSL analysis diverges from the programmatic catalog"
        )

    @pytest.mark.parametrize("row", range(13))
    def test_row_reproduces_paper_cells(self, row, programmatic, dsl_specs):
        entry = programmatic[row]
        dsl_prop = dsl_specs[TABLE1_DSL_KEYS[row]]
        assert analyze(dsl_prop).table1_row() == entry.expected_row

    @pytest.mark.parametrize("row", range(13))
    def test_same_stage_structure(self, row, programmatic, dsl_specs):
        entry = programmatic[row]
        dsl_prop = dsl_specs[TABLE1_DSL_KEYS[row]]
        assert dsl_prop.num_stages == entry.prop.num_stages
        assert len(dsl_prop.key_vars) == len(entry.prop.key_vars)


class TestDslWorkedExamples:
    def test_all_compile(self):
        specs = dsl_worked_examples()
        assert len(specs) == len(WORKED_EXAMPLE_DSL_KEYS)

    def test_firewall_equivalence(self):
        from repro.props import firewall_basic, firewall_timed, firewall_with_close

        specs = dict(dsl_worked_examples())
        assert analyze(specs["firewall-basic"]) == analyze(firewall_basic())
        assert analyze(specs["firewall-timed"]) == analyze(firewall_timed())
        assert analyze(specs["firewall-with-close"]) == analyze(
            firewall_with_close())

    def test_nat_equivalence(self):
        from repro.props import nat_reverse_translation

        specs = dict(dsl_worked_examples())
        assert analyze(specs["nat-reverse-translation"]) == analyze(
            nat_reverse_translation())

    def test_learning_equivalence(self):
        from repro.props import (
            learned_no_flood,
            learned_unicast_port,
            link_down_clears_learning,
        )

        specs = dict(dsl_worked_examples())
        assert analyze(specs["learned-unicast-port"]) == analyze(
            learned_unicast_port())
        assert analyze(specs["learned-no-flood"]) == analyze(learned_no_flood())
        assert analyze(specs["link-down-clears-learning"]) == analyze(
            link_down_clears_learning())


class TestDslCatalogRuns:
    def test_dsl_nat_detects_the_violation(self):
        """The DSL-compiled NAT property works end to end, not just
        statically."""
        from repro.apps import NatApp, sometimes
        from repro.netsim import single_switch_network
        from repro.packet import IPv4Address, tcp_packet
        from repro.switch.pipeline import MissPolicy

        specs = dict(dsl_worked_examples())
        net, switch, hosts = single_switch_network(
            2, switch_kwargs={"miss_policy": MissPolicy.CONTROLLER})
        switch.set_app(NatApp(public_ip=IPv4Address("203.0.113.1"),
                              faults=sometimes("corrupt_reverse", 1.0)))
        monitor = Monitor(scheduler=net.scheduler)
        monitor.add_property(specs["nat-reverse-translation"])
        monitor.attach(switch)
        hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 5555, 80))
        net.run()
        hosts[1].send(tcp_packet(2, 1, "198.51.100.1", "203.0.113.1",
                                 80, 40000))
        net.run()
        assert len(monitor.violations) == 1

    def test_full_dsl_catalog_loads_into_one_monitor(self):
        monitor = Monitor()
        for _, prop in dsl_table1() + dsl_worked_examples():
            monitor.add_property(prop)
        # survives an arbitrary event
        from repro.packet import ethernet
        from repro.switch.events import PacketArrival

        monitor.observe(PacketArrival(switch_id="s", time=0.0,
                                      packet=ethernet(1, 2), in_port=1))
