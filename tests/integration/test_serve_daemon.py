"""End-to-end tests of the live daemon: boot, stream, scrape, drain.

Each test boots a real :class:`ServeDaemon` on ephemeral ports in a
background thread, drives it over actual sockets (``stream_trace`` is
the same code path ``repro send`` uses), scrapes the HTTP plane with
stdlib ``urllib``, and asserts the graceful-shutdown contract: the
queue drains, the monitor stops, and the final report's uncertainty
interval accounts for everything shed.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.apps import LearningSwitchApp, sometimes
from repro.netsim import TraceRecorder, single_switch_network
from repro.netsim.serialize import save_trace, trace_header
from repro.netsim.workload import l2_pairs, send_all
from repro.serve import (
    ServeConfig,
    ServeDaemon,
    serve_in_thread,
    stream_trace,
)
from repro.switch.pipeline import MissPolicy


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """A recorded learning-switch trace (with faults, so properties fire)."""
    net, switch, hosts = single_switch_network(
        4, switch_kwargs={"miss_policy": MissPolicy.CONTROLLER})
    switch.set_app(LearningSwitchApp(faults=sometimes("wrong_port", 0.2,
                                                      seed=11)))
    recorder = TraceRecorder()
    switch.add_tap(recorder)
    send_all(hosts, l2_pairs(4, 80, seed=11))
    net.run()
    path = tmp_path_factory.mktemp("serve") / "trace.jsonl"
    save_trace(recorder.events, str(path),
               header=trace_header(seed=11, hosts=4, packets=80))
    return str(path)


def boot(**config_overrides):
    fields = dict(port=0, ingest=("tcp:0",), poll_interval=0.05)
    fields.update(config_overrides)
    config = ServeConfig(**fields)
    daemon = ServeDaemon(config)
    handle = serve_in_thread(daemon)
    return daemon, handle


def get(daemon, path):
    url = f"http://127.0.0.1:{daemon.http_port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestEndToEnd:
    def test_stream_scrape_drain(self, trace_path):
        daemon, handle = boot()
        try:
            result = stream_trace(
                trace_path, "127.0.0.1", daemon.ingest_ports[0], rate=0)
            assert result.events > 0
            assert wait_until(
                lambda: daemon.monitor.stats.events >= result.events)

            status, body = get(daemon, "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"

            status, body = get(daemon, "/readyz")
            assert status == 200
            assert json.loads(body)["ready"] is True

            status, body = get(daemon, "/stats")
            stats = json.loads(body)
            assert stats["monitor"]["events"] == result.events
            assert stats["queue"]["accepted"] == result.events
            assert stats["queue"]["shed"] == 0

            status, text = get(daemon, "/metrics")
            assert status == 200
            assert f"repro_serve_events_ingested_total {result.events}" \
                in text
            assert f"repro_monitor_events_total {result.events}" in text
            # Ingest-latency histogram made it to the exposition.
            assert "repro_serve_ingest_latency_seconds_count" in text
            assert "# TYPE repro_serve_ingest_latency_seconds histogram" \
                in text

            status, body = get(daemon, "/trace?limit=10")
            trace = json.loads(body)
            assert status == 200
            assert 0 < trace["count"] <= 10
            uids = [s["uid"] for s in trace["spans"] if s.get("uid")]
            assert uids, "root spans carry packet uids"
        finally:
            report = handle.stop()
        assert report.events_ingested == result.events
        assert report.events_observed == result.events
        assert report.events_shed == 0
        assert report.exact
        assert report.pending_ops == 0

    def test_wall_clock_poller_collects_samples(self, trace_path):
        daemon, handle = boot(poll_interval=0.02)
        try:
            stream_trace(trace_path, "127.0.0.1", daemon.ingest_ports[0])
            assert wait_until(lambda: len(daemon.poller.samples) >= 3)
            row = daemon.poller.samples[-1]
            assert "jitter" in row
            assert "repro_serve_queue_depth" in row["values"]
        finally:
            handle.stop()

    def test_repeat_streams_multiply_events(self, trace_path):
        daemon, handle = boot()
        try:
            result = stream_trace(
                trace_path, "127.0.0.1", daemon.ingest_ports[0], repeat=3)
            assert wait_until(
                lambda: daemon.monitor.stats.events >= result.events)
        finally:
            report = handle.stop()
        assert report.events_observed == result.events
        single = result.events // 3
        assert result.events == single * 3

    def test_unknown_route_404s_with_route_list(self, trace_path):
        daemon, handle = boot()
        try:
            status, body = get(daemon, "/nope")
            assert status == 404
            assert "/metrics" in json.loads(body)["routes"]
        finally:
            handle.stop()

    def test_garbage_frames_counted_not_fatal(self, trace_path):
        import socket

        daemon, handle = boot()
        try:
            with socket.create_connection(
                    ("127.0.0.1", daemon.ingest_ports[0])) as sock:
                sock.sendall(b"this is not json\n[]\n")
            assert wait_until(
                lambda: json.loads(get(daemon, "/stats")[1])
                ["frame_errors"] == 2)
            # Daemon still serves and still ingests after the garbage.
            result = stream_trace(
                trace_path, "127.0.0.1", daemon.ingest_ports[0])
            assert wait_until(
                lambda: daemon.monitor.stats.events >= result.events)
        finally:
            report = handle.stop()
        assert report.frame_errors == 2


class TestBackpressure:
    def test_flood_flips_readyz_and_ledgers_sheds(self, trace_path):
        daemon, handle = boot(max_queue=8, shed_window=30.0)
        # Pause dispatch so the flood actually piles up in the queue
        # instead of racing the consumer.
        daemon.queue.take_batch, real_take = (
            lambda n: [], daemon.queue.take_batch)
        try:
            result = stream_trace(
                trace_path, "127.0.0.1", daemon.ingest_ports[0], rate=0)
            assert wait_until(lambda: daemon.queue.shed > 0)

            status, body = get(daemon, "/readyz")
            payload = json.loads(body)
            assert status == 503
            assert payload["ready"] is False
            assert payload["reasons"]

            ledger = daemon.monitor.ledger
            assert len(ledger) == daemon.queue.shed
            assert all(r.kind == "ingest-shed" for r in ledger.records)
        finally:
            daemon.queue.take_batch = real_take
            report = handle.stop()
        # Accept + shed accounts for every event sent.
        assert report.events_ingested + report.events_shed == result.events
        assert report.events_shed > 0
        assert not report.exact
        lo, hi = report.interval
        assert lo <= report.violations <= hi
        assert hi - lo >= report.events_shed

    def test_final_report_written_to_disk(self, trace_path, tmp_path):
        out = tmp_path / "report.json"
        daemon, handle = boot(report_path=str(out))
        try:
            result = stream_trace(trace_path, "127.0.0.1",
                                  daemon.ingest_ports[0])
            assert wait_until(
                lambda: daemon.queue.accepted >= result.events)
        finally:
            report = handle.stop()
        data = json.loads(out.read_text())
        assert data["events"]["ingested"] == report.events_ingested
        assert data["violations"]["exact"] is True


class TestGracefulShutdown:
    def test_stop_drains_queue_before_reporting(self, trace_path):
        # Slow the dispatcher down so a backlog exists at stop time.
        daemon, handle = boot(batch_max=1)
        result = stream_trace(trace_path, "127.0.0.1",
                              daemon.ingest_ports[0], repeat=2)
        # Stop only once every frame crossed the socket into the queue;
        # stopping mid-accept is allowed to drop the connection, which
        # is not what this test is about.
        assert wait_until(lambda: daemon.queue.accepted >= result.events)
        report = handle.stop()
        # Everything accepted was observed — nothing stranded in the queue.
        assert report.events_observed == report.events_ingested
        assert daemon.queue.depth == 0
        assert report.pending_ops == 0

    def test_spans_written_on_shutdown(self, trace_path, tmp_path):
        from repro.telemetry import load_spans, validate_spans

        spans_out = tmp_path / "spans.jsonl"
        daemon, handle = boot(spans_path=str(spans_out), trace_buffer=32)
        result = stream_trace(trace_path, "127.0.0.1",
                              daemon.ingest_ports[0])
        assert wait_until(lambda: daemon.queue.accepted >= result.events)
        handle.stop()
        with open(spans_out, "r", encoding="utf-8") as fp:
            spans = load_spans(fp)
        assert spans
        spans.sort(key=lambda s: s.span_id)
        assert validate_spans(spans) == []
