"""Regenerate the linter's golden render fixtures.

Run after a deliberate renderer format change::

    PYTHONPATH=src python -m tests.regen_lint_goldens

then eyeball the diff before committing.
"""

import os

from repro.lint import lint_source, render_json, render_text

GOLDEN = os.path.join(os.path.dirname(__file__), "fixtures", "lint", "golden")


def main() -> None:
    with open(os.path.join(GOLDEN, "golden_input.prop")) as fp:
        report = lint_source(fp.read(), path="golden_input.prop")
    with open(os.path.join(GOLDEN, "report.txt"), "w") as fp:
        fp.write(render_text([report]) + "\n")
    with open(os.path.join(GOLDEN, "report.json"), "w") as fp:
        fp.write(render_json([report]) + "\n")
    print(f"wrote {GOLDEN}/report.txt and report.json")


if __name__ == "__main__":
    main()
