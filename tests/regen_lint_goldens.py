"""Regenerate the linter's golden render fixtures.

Run after a deliberate renderer format change::

    PYTHONPATH=src python -m tests.regen_lint_goldens

then eyeball the diff before committing.  ``--check`` regenerates into a
temp directory and diffs against the checked-in fixtures instead of
overwriting them (exit 1 on drift) — CI runs this so the goldens cannot
go stale silently.
"""

import argparse
import difflib
import os
import sys
import tempfile

from repro.lint import lint_source, render_json, render_text

GOLDEN = os.path.join(os.path.dirname(__file__), "fixtures", "lint", "golden")


def generate(out_dir: str) -> list:
    with open(os.path.join(GOLDEN, "golden_input.prop")) as fp:
        report = lint_source(fp.read(), path="golden_input.prop")
    outputs = [
        ("report.txt", render_text([report]) + "\n"),
        ("report.json", render_json([report]) + "\n"),
    ]
    paths = []
    for name, text in outputs:
        path = os.path.join(out_dir, name)
        with open(path, "w") as fp:
            fp.write(text)
        paths.append(name)
    return paths


def check() -> int:
    drifted = False
    with tempfile.TemporaryDirectory() as tmp:
        for name in generate(tmp):
            with open(os.path.join(GOLDEN, name)) as fp:
                want = fp.readlines()
            with open(os.path.join(tmp, name)) as fp:
                got = fp.readlines()
            if want != got:
                drifted = True
                sys.stdout.writelines(difflib.unified_diff(
                    want, got, fromfile=f"golden/{name}",
                    tofile=f"regenerated/{name}"))
    if drifted:
        print("lint goldens drifted: rerun "
              "PYTHONPATH=src python -m tests.regen_lint_goldens")
        return 1
    print("lint goldens up to date")
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="diff regenerated goldens against fixtures instead of writing")
    args = parser.parse_args()
    if args.check:
        raise SystemExit(check())
    for name in generate(GOLDEN):
        print(f"wrote {GOLDEN}/{name}")


if __name__ == "__main__":
    main()
