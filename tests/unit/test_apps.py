"""Unit tests: the monitored network functions and their fault knobs."""

import pytest

from repro.apps import (
    ArpProxyApp,
    BalanceMode,
    DhcpServerApp,
    DhcpSnooper,
    FaultPlan,
    FtpAlgApp,
    LearningSwitchApp,
    LoadBalancerApp,
    NatApp,
    PortKnockingApp,
    StatefulFirewallApp,
    always,
    flow_hash,
    ftp_session,
    install_dataplane_learning,
    no_faults,
    sometimes,
)
from repro.netsim import Network, TraceRecorder, single_switch_network
from repro.packet import (
    Arp,
    Dhcp,
    DhcpMessageType,
    IPv4Address,
    MACAddress,
    TCP,
    arp_reply,
    arp_request,
    dhcp_packet,
    ethernet,
    tcp_fin,
    tcp_packet,
    tcp_syn,
    udp_packet,
)
from repro.switch.events import EgressAction
from repro.switch.pipeline import MissPolicy


class TestFaultPlan:
    def test_no_faults_never_fires(self):
        plan = no_faults()
        assert not plan.fires("anything")
        assert not plan.enabled("anything")

    def test_always_flag(self):
        assert always("bug").enabled("bug")
        assert not always("bug").enabled("other")

    def test_sometimes_rate_deterministic(self):
        a = FaultPlan(rates={"f": 0.5}, seed=9)
        b = FaultPlan(rates={"f": 0.5}, seed=9)
        assert [a.fires("f") for _ in range(20)] == [b.fires("f") for _ in range(20)]

    def test_rate_one_always_fires(self):
        assert all(sometimes("f", 1.0).fires("f") for _ in range(5))

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(rates={"f": 1.5})

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(values={"delay": -1.0})
        with pytest.raises(ValueError):
            FaultPlan(values={"delay": float("inf")})
        with pytest.raises(ValueError):
            FaultPlan(values={"delay": float("nan")})

    def test_per_fault_streams_independent(self):
        # Adding a second fault must not reshuffle the first one's
        # firing pattern: each name rolls its own derived RNG stream.
        alone = FaultPlan(rates={"a": 0.5}, seed=9)
        paired = FaultPlan(rates={"a": 0.5, "b": 0.5}, seed=9)
        fired_alone = [alone.fires("a") for _ in range(50)]
        fired_paired = []
        for _ in range(50):
            fired_paired.append(paired.fires("a"))
            paired.fires("b")  # interleaved rolls on the other stream
        assert fired_alone == fired_paired


def controller_net(num_hosts, app, **kw):
    kw.setdefault("switch_kwargs", {})
    kw["switch_kwargs"].setdefault("miss_policy", MissPolicy.CONTROLLER)
    net, sw, hosts = single_switch_network(num_hosts, **kw)
    sw.set_app(app)
    return net, sw, hosts


class TestLearningSwitch:
    def test_floods_unknown_then_unicasts(self):
        app = LearningSwitchApp()
        net, sw, hosts = controller_net(3, app)
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(ethernet(1, 2))  # learns 1@1, floods
        net.run()
        assert any(e.action is EgressAction.FLOOD for e in rec.egresses)
        rec.clear()
        hosts[1].send(ethernet(2, 1))  # 1 is known: unicast on port 1
        net.run()
        assert [(e.out_port, e.action) for e in rec.egresses] == [
            (1, EgressAction.UNICAST)
        ]
        assert app.learned_port(MACAddress(2)) == 2

    def test_relearns_moved_host(self):
        app = LearningSwitchApp()
        net, sw, hosts = controller_net(3, app)
        hosts[0].send(ethernet(1, 9))
        net.run()
        assert app.learned_port(MACAddress(1)) == 1
        hosts[2].send(ethernet(1, 9))  # same MAC appears on port 3
        net.run()
        assert app.learned_port(MACAddress(1)) == 3

    def test_broadcast_always_floods(self):
        app = LearningSwitchApp()
        net, sw, hosts = controller_net(3, app)
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(ethernet(1, MACAddress.BROADCAST))
        net.run()
        assert all(e.action is EgressAction.FLOOD for e in rec.egresses)

    def test_link_down_clears_learning(self):
        app = LearningSwitchApp()
        net, sw, hosts = controller_net(3, app)
        hosts[0].send(ethernet(1, 9))
        net.run()
        sw.link_down(1)
        assert app.learned_port(MACAddress(1)) is None

    def test_keep_on_link_down_fault(self):
        app = LearningSwitchApp(faults=always("keep_on_link_down"))
        net, sw, hosts = controller_net(3, app)
        hosts[0].send(ethernet(1, 9))
        net.run()
        sw.link_down(1)
        assert app.learned_port(MACAddress(1)) == 1

    def test_wrong_port_fault(self):
        app = LearningSwitchApp(faults=sometimes("wrong_port", 1.0))
        net, sw, hosts = controller_net(3, app)
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(ethernet(1, 9))
        net.run()
        rec.clear()
        hosts[1].send(ethernet(2, 1))
        net.run()
        assert rec.egresses[0].out_port != 1  # should have been port 1

    def test_dataplane_learning_no_controller(self):
        net, sw, hosts = single_switch_network(
            3, switch_kwargs={"num_tables": 2, "miss_policy": MissPolicy.FLOOD}
        )
        install_dataplane_learning(sw)
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(ethernet(1, 2))
        net.run()
        rec.clear()
        hosts[1].send(ethernet(2, 1))
        net.run()
        unicasts = [e for e in rec.egresses if e.action is EgressAction.UNICAST]
        assert [(e.out_port) for e in unicasts] == [1]
        assert sw.stats.controller_punts == 0

    def test_dataplane_learning_needs_two_tables(self):
        net, sw, _ = single_switch_network(2)
        with pytest.raises(ValueError):
            install_dataplane_learning(sw)


class TestStatefulFirewall:
    def _net(self, **fw_kw):
        app = StatefulFirewallApp(**fw_kw)
        net, sw, hosts = controller_net(2, app)
        return net, sw, hosts, app

    def _out(self, flow=0):
        return tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 10000 + flow, 80)

    def _back(self, flow=0):
        return tcp_packet(2, 1, "198.51.100.1", "10.0.0.1", 80, 10000 + flow)

    def test_return_traffic_allowed_after_outbound(self):
        net, sw, hosts, app = self._net()
        hosts[0].send(self._out())
        net.run()
        hosts[1].send(self._back())
        net.run()
        assert len(hosts[0].received) == 1

    def test_unsolicited_traffic_dropped(self):
        net, sw, hosts, app = self._net()
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[1].send(self._back())
        net.run()
        assert hosts[0].received == []
        assert rec.drops[0].reason == "fw-no-state"

    def test_pinhole_expires(self):
        net, sw, hosts, app = self._net(state_timeout=5.0)
        hosts[0].send(self._out())
        net.run()
        hosts[1].send_at(10.0, self._back())
        net.run()
        assert hosts[0].received == []

    def test_close_tears_down(self):
        net, sw, hosts, app = self._net()
        hosts[0].send(self._out())
        net.run()
        hosts[0].send(tcp_fin(1, 2, "10.0.0.1", "198.51.100.1", 10000, 80))
        net.run()
        hosts[1].send(self._back())
        net.run()
        assert hosts[0].received == []

    def test_ignore_close_fault(self):
        net, sw, hosts, app = self._net(faults=always("ignore_close"))
        hosts[0].send(self._out())
        net.run()
        hosts[0].send(tcp_fin(1, 2, "10.0.0.1", "198.51.100.1", 10000, 80))
        net.run()
        hosts[1].send(self._back())
        net.run()
        assert len(hosts[0].received) == 1  # wrongly forwarded

    def test_drop_valid_fault(self):
        net, sw, hosts, app = self._net(faults=sometimes("drop_valid", 1.0))
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(self._out())
        net.run()
        hosts[1].send(self._back())
        net.run()
        assert rec.drops[-1].reason == "fw-bug"

    def test_same_ports_rejected(self):
        with pytest.raises(ValueError):
            StatefulFirewallApp(internal_port=1, external_port=1)


class TestNat:
    def _net(self, **nat_kw):
        nat_kw.setdefault("public_ip", IPv4Address("203.0.113.1"))
        app = NatApp(**nat_kw)
        net, sw, hosts = controller_net(2, app)
        return net, sw, hosts, app

    def test_outbound_rewritten(self):
        net, sw, hosts, app = self._net()
        hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 5555, 80))
        net.run()
        out = hosts[1].received[0].packet
        assert out.ip_src == IPv4Address("203.0.113.1")
        assert out.get(TCP).src_port == 40000
        assert app.translation_count() == 1

    def test_reverse_translation(self):
        net, sw, hosts, app = self._net()
        hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 5555, 80))
        net.run()
        hosts[1].send(tcp_packet(2, 1, "198.51.100.1", "203.0.113.1", 80, 40000))
        net.run()
        back = hosts[0].received[0].packet
        assert back.ip_dst == IPv4Address("10.0.0.1")
        assert back.get(TCP).dst_port == 5555

    def test_same_flow_reuses_mapping(self):
        net, sw, hosts, app = self._net()
        for _ in range(3):
            hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 5555, 80))
        net.run()
        assert app.translation_count() == 1

    def test_unknown_inbound_dropped(self):
        net, sw, hosts, app = self._net()
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[1].send(tcp_packet(2, 1, "198.51.100.1", "203.0.113.1", 80, 49999))
        net.run()
        assert rec.drops[0].reason == "nat-no-mapping"

    def test_corrupt_reverse_fault(self):
        net, sw, hosts, app = self._net(faults=sometimes("corrupt_reverse", 1.0))
        hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 5555, 80))
        net.run()
        hosts[1].send(tcp_packet(2, 1, "198.51.100.1", "203.0.113.1", 80, 40000))
        net.run()
        assert hosts[0].received[0].packet.get(TCP).dst_port != 5555

    def test_uid_preserved_across_rewrite(self):
        net, sw, hosts, app = self._net()
        p = tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 5555, 80)
        hosts[0].send(p)
        net.run()
        assert hosts[1].received[0].packet.uid == p.uid


class TestArpProxy:
    def _net(self, **kw):
        app = ArpProxyApp(**kw)
        net, sw, hosts = controller_net(3, app)
        return net, sw, hosts, app

    def test_unknown_request_flooded(self):
        net, sw, hosts, app = self._net()
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(arp_request(1, "10.0.0.1", "10.0.0.3"))
        net.run()
        assert any(e.action is EgressAction.FLOOD for e in rec.egresses)

    def test_known_request_answered_directly(self):
        net, sw, hosts, app = self._net()
        hosts[2].send(arp_reply(3, "10.0.0.3", 1, "10.0.0.1"))
        net.run()
        assert app.knows(IPv4Address("10.0.0.3"))
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(arp_request(1, "10.0.0.1", "10.0.0.3"))
        net.run()
        replies = [
            e for e in rec.egresses
            if e.packet.has(Arp) and e.packet.get(Arp).is_reply
        ]
        assert len(replies) == 1
        assert replies[0].in_port == 0  # switch-originated
        assert replies[0].packet.get(Arp).sender_mac == MACAddress(3)

    def test_suppress_reply_fault(self):
        net, sw, hosts, app = self._net(faults=sometimes("suppress_reply", 1.0))
        hosts[2].send(arp_reply(3, "10.0.0.3", 1, "10.0.0.1"))
        net.run()
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(arp_request(1, "10.0.0.1", "10.0.0.3"))
        net.run()
        assert rec.egresses == []

    def test_reply_unknown_fault_fabricates(self):
        net, sw, hosts, app = self._net(faults=always("reply_unknown"))
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(arp_request(1, "10.0.0.1", "10.0.0.99"))
        net.run()
        replies = [e for e in rec.egresses if e.packet.has(Arp)
                   and e.packet.get(Arp).is_reply]
        assert len(replies) == 1

    def test_dhcp_snooper_preloads(self):
        app = ArpProxyApp()
        snooper = DhcpSnooper(app)
        net, sw, hosts = controller_net(3, app)
        sw.add_tap(snooper.observe)
        sw.inject(dhcp_packet(5, DhcpMessageType.ACK, yiaddr="10.0.0.42"), 1)
        assert app.knows(IPv4Address("10.0.0.42"))

    def test_skip_preload_fault(self):
        app = ArpProxyApp(faults=always("skip_preload"))
        app.preload(IPv4Address("10.0.0.42"), MACAddress(5))
        assert not app.knows(IPv4Address("10.0.0.42"))


class TestDhcpServer:
    def _net(self, **kw):
        kw.setdefault("server_id", IPv4Address("10.0.0.254"))
        kw.setdefault("pool_start", IPv4Address("10.0.0.100"))
        kw.setdefault("pool_size", 4)
        app = DhcpServerApp(**kw)
        net, sw, hosts = controller_net(2, app)
        return net, sw, hosts, app

    def _lease(self, hosts, net, mac=5, xid=1):
        hosts[0].send(dhcp_packet(mac, DhcpMessageType.DISCOVER, xid=xid))
        net.run()
        hosts[0].send(dhcp_packet(mac, DhcpMessageType.REQUEST, xid=xid))
        net.run()

    def test_discover_offer_request_ack(self):
        net, sw, hosts, app = self._net()
        self._lease(hosts, net)
        msgs = [r.packet.get(Dhcp) for r in hosts[0].received]
        assert msgs[0].is_offer and msgs[1].is_ack
        assert msgs[1].yiaddr == IPv4Address("10.0.0.100")
        assert app.active_leases(net.now) == 1

    def test_distinct_clients_distinct_addresses(self):
        net, sw, hosts, app = self._net()
        self._lease(hosts, net, mac=5, xid=1)
        self._lease(hosts, net, mac=6, xid=2)
        acks = [r.packet.get(Dhcp) for r in hosts[0].received
                if r.packet.get(Dhcp).is_ack]
        assert acks[0].yiaddr != acks[1].yiaddr

    def test_release_frees_address(self):
        net, sw, hosts, app = self._net(pool_size=1)
        self._lease(hosts, net, mac=5)
        hosts[0].send(dhcp_packet(5, DhcpMessageType.RELEASE))
        net.run()
        assert app.active_leases(net.now) == 0
        self._lease(hosts, net, mac=6, xid=2)
        assert app.active_leases(net.now) == 1

    def test_lease_expiry_frees_address(self):
        net, sw, hosts, app = self._net(pool_size=1, lease_time=5.0)
        self._lease(hosts, net, mac=5)
        hosts[0].send_at(10.0, dhcp_packet(6, DhcpMessageType.DISCOVER, xid=9))
        net.run()
        offers = [r.packet.get(Dhcp) for r in hosts[0].received
                  if r.packet.get(Dhcp).is_offer]
        assert len(offers) == 2  # the pool's only address re-offered

    def test_pool_exhaustion_silent(self):
        net, sw, hosts, app = self._net(pool_size=1)
        self._lease(hosts, net, mac=5)
        before = len(hosts[0].received)
        hosts[0].send(dhcp_packet(6, DhcpMessageType.DISCOVER, xid=2))
        net.run()
        assert len(hosts[0].received) == before

    def test_reuse_leased_fault(self):
        net, sw, hosts, app = self._net(pool_size=1,
                                        faults=always("reuse_leased"))
        self._lease(hosts, net, mac=5)
        self._lease(hosts, net, mac=6, xid=2)
        acks = [r.packet.get(Dhcp) for r in hosts[0].received
                if r.packet.get(Dhcp).is_ack]
        assert len(acks) == 2
        assert acks[0].yiaddr == acks[1].yiaddr  # the overlap bug

    def test_reply_delay_fault(self):
        net, sw, hosts, app = self._net(faults=FaultPlan(values={"reply_delay": 3.0}))
        hosts[0].send(dhcp_packet(5, DhcpMessageType.REQUEST, xid=1))
        net.run()
        assert hosts[0].received[0].time >= 3.0

    def test_replies_addressed_to_client(self):
        net, sw, hosts, app = self._net()
        self._lease(hosts, net, mac=5)
        for r in hosts[0].received:
            assert r.packet.eth.dst == MACAddress(5)
            assert r.packet.eth.src == app.server_mac


class TestLoadBalancer:
    def _net(self, mode=BalanceMode.HASH, **kw):
        app = LoadBalancerApp(vip=IPv4Address("10.0.0.100"),
                              backend_ports=(2, 3, 4), mode=mode, **kw)
        net, sw, hosts = controller_net(4, app)
        return net, sw, hosts, app

    def _flow_pkt(self, sport, flags=None):
        kw = {} if flags is None else {"flags": flags}
        return tcp_packet(1, 0xFE, "10.0.0.1", "10.0.0.100", sport, 8080, **kw)

    def test_hash_mode_deterministic(self):
        net, sw, hosts, app = self._net()
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(self._flow_pkt(1000))
        net.run()
        key = (IPv4Address("10.0.0.1"), 1000, IPv4Address("10.0.0.100"), 8080, 6)
        expected = (2, 3, 4)[flow_hash(key, 3)]
        assert rec.egresses[0].out_port == expected

    def test_flow_pinned_across_packets(self):
        net, sw, hosts, app = self._net()
        rec = TraceRecorder()
        sw.add_tap(rec)
        for _ in range(3):
            hosts[0].send(self._flow_pkt(1000))
        net.run()
        ports = {e.out_port for e in rec.egresses}
        assert len(ports) == 1

    def test_round_robin_cycles(self):
        net, sw, hosts, app = self._net(mode=BalanceMode.ROUND_ROBIN)
        rec = TraceRecorder()
        sw.add_tap(rec)
        for sport in (1000, 1001, 1002, 1003):
            hosts[0].send(self._flow_pkt(sport))
        net.run()
        assert [e.out_port for e in rec.egresses] == [2, 3, 4, 2]

    def test_close_unpins(self):
        net, sw, hosts, app = self._net(mode=BalanceMode.ROUND_ROBIN)
        hosts[0].send(self._flow_pkt(1000))
        net.run()
        key = (IPv4Address("10.0.0.1"), 1000, IPv4Address("10.0.0.100"), 8080, 6)
        assert app.pinned_backend(key) == 2
        from repro.packet import TCPFlags

        hosts[0].send(self._flow_pkt(1000, flags=TCPFlags.FIN | TCPFlags.ACK))
        net.run()
        assert app.pinned_backend(key) is None

    def test_misroute_fault(self):
        net, sw, hosts, app = self._net(faults=sometimes("misroute_new", 1.0))
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(self._flow_pkt(1000))
        net.run()
        key = (IPv4Address("10.0.0.1"), 1000, IPv4Address("10.0.0.100"), 8080, 6)
        expected = (2, 3, 4)[flow_hash(key, 3)]
        assert rec.egresses[0].out_port != expected

    def test_rebalance_midflow_fault(self):
        net, sw, hosts, app = self._net(
            faults=sometimes("rebalance_midflow", 1.0))
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(self._flow_pkt(1000))
        hosts[0].send(self._flow_pkt(1000))
        net.run()
        assert rec.egresses[0].out_port != rec.egresses[1].out_port

    def test_non_vip_traffic_flooded(self):
        net, sw, hosts, app = self._net()
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 1, 2))
        net.run()
        assert all(e.action is EgressAction.FLOOD for e in rec.egresses)

    def test_needs_two_backends(self):
        with pytest.raises(ValueError):
            LoadBalancerApp(vip=IPv4Address("10.0.0.100"), backend_ports=(2,))


class TestPortKnocking:
    def _net(self, **kw):
        kw.setdefault("knock_sequence", (7001, 7002))
        kw.setdefault("protected_port", 22)
        app = PortKnockingApp(**kw)
        net, sw, hosts = controller_net(2, app)
        return net, sw, hosts, app

    def _pkt(self, dport):
        return tcp_syn(1, 2, "10.0.0.1", "10.0.0.9", 30000, dport)

    def test_correct_sequence_grants(self):
        net, sw, hosts, app = self._net()
        hosts[0].send(self._pkt(7001))
        hosts[0].send(self._pkt(7002))
        net.run()
        assert app.has_access(IPv4Address("10.0.0.1"))
        hosts[0].send(self._pkt(22))
        net.run()
        assert len(hosts[1].received) == 1

    def test_wrong_guess_resets(self):
        net, sw, hosts, app = self._net()
        hosts[0].send(self._pkt(7001))
        hosts[0].send(self._pkt(9999))
        hosts[0].send(self._pkt(7002))
        net.run()
        assert not app.has_access(IPv4Address("10.0.0.1"))

    def test_denied_connection_dropped(self):
        net, sw, hosts, app = self._net()
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(self._pkt(22))
        net.run()
        assert rec.drops[0].reason == "pk-denied"

    def test_ignore_wrong_guess_fault(self):
        net, sw, hosts, app = self._net(faults=always("ignore_wrong_guess"))
        hosts[0].send(self._pkt(7001))
        hosts[0].send(self._pkt(9999))
        hosts[0].send(self._pkt(7002))
        net.run()
        assert app.has_access(IPv4Address("10.0.0.1"))  # the bug

    def test_never_open_fault(self):
        net, sw, hosts, app = self._net(faults=always("never_open"))
        hosts[0].send(self._pkt(7001))
        hosts[0].send(self._pkt(7002))
        net.run()
        assert not app.has_access(IPv4Address("10.0.0.1"))

    def test_protected_in_sequence_rejected(self):
        with pytest.raises(ValueError):
            PortKnockingApp(knock_sequence=(22, 7001), protected_port=22)


class TestFtp:
    def test_session_advertised_port_matches(self):
        session = ftp_session(
            MACAddress(1), MACAddress(2),
            IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
            advertised_port=1025,
        )
        data = session[-1].packet
        assert data.get(TCP).dst_port == 1025
        assert data.get(TCP).is_syn

    def test_session_mismatch_knob(self):
        session = ftp_session(
            MACAddress(1), MACAddress(2),
            IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
            advertised_port=1025, actual_port=2000,
        )
        assert session[-1].packet.get(TCP).dst_port == 2000

    def test_alg_tracks_endpoint(self):
        app = FtpAlgApp()
        net, sw, hosts = controller_net(2, app)
        from repro.netsim.workload import send_all

        session = ftp_session(hosts[0].mac, hosts[1].mac, hosts[0].ip,
                              hosts[1].ip, advertised_port=1025)
        send_all(hosts, session)
        net.run()
        assert app.expected[(hosts[0].ip, hosts[1].ip)] == 1025
