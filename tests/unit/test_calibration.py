"""The compiler-calibrated cost model (repro.lint.calibration).

Three invariants keep the estimate-vs-measured loop closed:

* the analytic estimator (`estimate_cost`, rules model) agrees with the
  plan the Varanus compiler actually emits (`plan_property`) on
  tables/rules/flow-mods per instance, for every corpus property;
* the checked-in CALIBRATION table agrees with live measurements (the
  regen script's --check, exercised here directly);
* a compiled corpus property really *behaves* like its plan says — the
  switch's meter observes the planned flow-mod count on a violating run.
"""

import pytest

from repro.backends.varanus_compiler import (
    check_compilable,
    compile_property,
    plan_property,
)
from repro.lint.calibration import (
    CALIBRATION,
    MeasuredCost,
    calibration_corpus,
    measured_cost,
    regenerate,
)
from repro.lint.splitmode import estimate_cost

CORPUS = {prop.name: prop for prop in calibration_corpus()}


def test_corpus_is_rule_compilable():
    for prop in CORPUS.values():
        check_compilable(prop)  # raises VaranusCompileError on regression


def test_corpus_covers_every_plan_shape():
    from repro.core.spec import Absent

    shapes = {
        "two_stage": any(p.num_stages == 2 for p in CORPUS.values()),
        "three_stage": any(p.num_stages >= 3 for p in CORPUS.values()),
        "cancel": any(
            any(getattr(s, "unless", ()) for s in p.stages)
            for p in CORPUS.values()),
        "final_absent": any(
            isinstance(p.stages[-1], Absent) for p in CORPUS.values()),
        "deadline": any(
            any(getattr(s, "within", None) for s in p.stages
                if not isinstance(s, Absent))
            for p in CORPUS.values()),
    }
    missing = [name for name, present in shapes.items() if not present]
    assert not missing, f"corpus lost plan shapes: {missing}"


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_estimate_matches_emitted_plan(name):
    est = estimate_cost(CORPUS[name])
    plan = plan_property(CORPUS[name])
    assert est.model == "rules"
    assert est.instance_tables == plan.instance_tables
    assert est.rules_per_instance == plan.rules_per_instance
    assert est.slow_updates_per_instance == plan.flow_mods_per_instance


def test_checked_in_table_matches_live_measurements():
    assert regenerate() == CALIBRATION, (
        "CALIBRATION drifted from the compiler: rerun "
        "PYTHONPATH=src python -m tests.regen_calibration")


def test_estimator_consults_the_table():
    est = estimate_cost(CORPUS["cal-chain-3"])
    assert est.source == "calibrated"
    assert est.measured == MeasuredCost(*CALIBRATION["cal-chain-3"])


def test_uncalibrated_property_has_no_measurement():
    assert measured_cost("not-in-the-table") is None
    prop = CORPUS["cal-chain-2"]
    renamed = type(prop)(
        name="uncalibrated-echo", description=prop.description,
        stages=prop.stages, key_vars=prop.key_vars)
    est = estimate_cost(renamed)
    assert est.measured is None
    assert est.source == "model"


def test_planned_flow_mods_match_metered_run():
    """Drive one instance of the 3-stage chain through its full violating
    lifecycle on a real switch; the meter's slow-update count must equal
    the plan's flow-mods-per-instance."""
    from repro.netsim import EventScheduler
    from repro.packet import tcp_syn
    from repro.switch.pipeline import MissPolicy
    from repro.switch.switch import Switch

    prop = CORPUS["cal-chain-3"]
    plan = plan_property(prop)
    switch = Switch("cal", EventScheduler(), num_ports=2, num_tables=1,
                    miss_policy=MissPolicy.FLOOD)
    compile_property(switch, prop)
    baseline = switch.meter.slow_updates
    for port in (7001, 7002, 22):
        switch.receive(
            tcp_syn(1, 2, "10.0.0.1", "10.0.0.9", 30000, port), 1)
    assert switch.meter.slow_updates - baseline == \
        plan.flow_mods_per_instance
    assert plan.instance_tables == 1
