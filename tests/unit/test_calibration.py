"""The compiler-calibrated cost model (repro.lint.calibration).

Three invariants keep the estimate-vs-measured loop closed:

* the analytic estimator (`estimate_cost`, rules model) agrees with the
  plan the Varanus compiler actually emits (`plan_property`) on
  tables/rules/flow-mods per instance, for every corpus property;
* the checked-in CALIBRATION table agrees with live measurements (the
  regen script's --check, exercised here directly);
* a compiled corpus property really *behaves* like its plan says — the
  switch's meter observes the planned flow-mod count on a violating run.
"""

import pytest

from repro.backends.varanus_compiler import (
    check_compilable,
    compile_property,
    plan_property,
)
from repro.lint.calibration import (
    CALIBRATION,
    CALIBRATION_CODEGEN,
    MeasuredCodegenCost,
    MeasuredCost,
    calibration_corpus,
    codegen_corpus,
    measured_codegen_cost,
    measured_cost,
    regenerate,
    regenerate_codegen,
)
from repro.lint.splitmode import estimate_codegen_cost, estimate_cost

CORPUS = {prop.name: prop for prop in calibration_corpus()}
CODEGEN_CORPUS = {prop.name: prop for prop in codegen_corpus()}


def test_corpus_is_rule_compilable():
    for prop in CORPUS.values():
        check_compilable(prop)  # raises VaranusCompileError on regression


def test_corpus_covers_every_plan_shape():
    from repro.core.spec import Absent

    shapes = {
        "two_stage": any(p.num_stages == 2 for p in CORPUS.values()),
        "three_stage": any(p.num_stages >= 3 for p in CORPUS.values()),
        "cancel": any(
            any(getattr(s, "unless", ()) for s in p.stages)
            for p in CORPUS.values()),
        "final_absent": any(
            isinstance(p.stages[-1], Absent) for p in CORPUS.values()),
        "deadline": any(
            any(getattr(s, "within", None) for s in p.stages
                if not isinstance(s, Absent))
            for p in CORPUS.values()),
    }
    missing = [name for name, present in shapes.items() if not present]
    assert not missing, f"corpus lost plan shapes: {missing}"


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_estimate_matches_emitted_plan(name):
    est = estimate_cost(CORPUS[name])
    plan = plan_property(CORPUS[name])
    assert est.model == "rules"
    assert est.instance_tables == plan.instance_tables
    assert est.rules_per_instance == plan.rules_per_instance
    assert est.slow_updates_per_instance == plan.flow_mods_per_instance


def test_checked_in_table_matches_live_measurements():
    assert regenerate() == CALIBRATION, (
        "CALIBRATION drifted from the compiler: rerun "
        "PYTHONPATH=src python -m tests.regen_calibration")


def test_estimator_consults_the_table():
    est = estimate_cost(CORPUS["cal-chain-3"])
    assert est.source == "calibrated"
    assert est.measured == MeasuredCost(*CALIBRATION["cal-chain-3"])


def test_uncalibrated_property_has_no_measurement():
    assert measured_cost("not-in-the-table") is None
    prop = CORPUS["cal-chain-2"]
    renamed = type(prop)(
        name="uncalibrated-echo", description=prop.description,
        stages=prop.stages, key_vars=prop.key_vars)
    est = estimate_cost(renamed)
    assert est.measured is None
    assert est.source == "model"


class TestCodegenCalibration:
    """The codegen side of the estimate-vs-measured loop."""

    def test_corpus_spans_rule_shapes_and_the_catalog(self):
        # Every compiler-calibration shape recurs, plus the full Table-1
        # catalog — codegen hosts everything, so nothing waits on
        # rule-compilability.
        assert set(CORPUS) <= set(CODEGEN_CORPUS)
        assert sum(1 for n in CODEGEN_CORPUS if not n.startswith("cal-")) >= 13

    @pytest.mark.parametrize("name", sorted(CODEGEN_CORPUS))
    def test_estimate_matches_emitted_program(self, name):
        """The analytic dispatch-plan walk predicts exactly what the
        emitter generated: event classes and inline boolean terms."""
        from repro.core import Monitor

        est = estimate_codegen_cost(CODEGEN_CORPUS[name])
        monitor = Monitor(match_strategy="codegen")
        monitor.add_property(CODEGEN_CORPUS[name])
        emission = monitor.codegen_emissions()[name]
        assert est.event_classes == emission.event_classes
        assert est.inline_terms == emission.inline_terms
        assert emission.matcher_lines > 0  # measured-only, sanity floor

    def test_checked_in_table_matches_live_emissions(self):
        assert regenerate_codegen() == CALIBRATION_CODEGEN, (
            "CALIBRATION_CODEGEN drifted from the emitter: rerun "
            "PYTHONPATH=src python -m tests.regen_calibration")

    def test_estimator_consults_the_table(self):
        est = estimate_codegen_cost(CODEGEN_CORPUS["knocking-invalidated"])
        assert est.source == "calibrated"
        assert est.measured == MeasuredCodegenCost(
            *CALIBRATION_CODEGEN["knocking-invalidated"])

    def test_cost_estimate_carries_codegen_for_engine_props(self):
        # Catalog rows are engine-model for the rule compiler, but the
        # codegen block still prices them.
        est = estimate_cost(CODEGEN_CORPUS["knocking-invalidated"])
        assert est.model == "engine"
        assert est.codegen is not None
        assert est.codegen.source == "calibrated"

    def test_uncalibrated_property_has_no_measurement(self):
        assert measured_codegen_cost("not-in-the-table") is None


def test_planned_flow_mods_match_metered_run():
    """Drive one instance of the 3-stage chain through its full violating
    lifecycle on a real switch; the meter's slow-update count must equal
    the plan's flow-mods-per-instance."""
    from repro.netsim import EventScheduler
    from repro.packet import tcp_syn
    from repro.switch.pipeline import MissPolicy
    from repro.switch.switch import Switch

    prop = CORPUS["cal-chain-3"]
    plan = plan_property(prop)
    switch = Switch("cal", EventScheduler(), num_ports=2, num_tables=1,
                    miss_policy=MissPolicy.FLOOD)
    compile_property(switch, prop)
    baseline = switch.meter.slow_updates
    for port in (7001, 7002, 22):
        switch.receive(
            tcp_syn(1, 2, "10.0.0.1", "10.0.0.9", 30000, port), 1)
    assert switch.meter.slow_updates - baseline == \
        plan.flow_mods_per_instance
    assert plan.instance_tables == 1
