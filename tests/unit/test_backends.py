"""Unit tests: backend capability models and their mechanism executables."""

import pytest

from repro.backends import (
    ControllerMirror,
    FastBackend,
    FastStateMachine,
    FastTransition,
    OpenFlow13Backend,
    OpenStateBackend,
    P4Backend,
    P4Program,
    P4Stage,
    SnapBackend,
    SnapProgram,
    SnapStatement,
    StaticVaranusBackend,
    UnsupportedFeature,
    VaranusBackend,
    XfsmTable,
    XfsmTransition,
    all_backends,
    build_table2,
    compile_firewall_to_rules,
    diff_against_paper,
    fnv1a,
    render_table2,
)
from repro.core.refs import event_fields
from repro.netsim import EventScheduler, TraceRecorder, single_switch_network
from repro.packet import IPv4Address, ethernet, tcp_packet, tcp_syn
from repro.props import (
    arp_cache_preloaded,
    dhcp_reply_within,
    firewall_basic,
    firewall_timed,
    ftp_data_port_matches,
    knocking_invalidated,
    link_down_clears_learning,
    nat_reverse_translation,
)
from repro.switch.events import PacketArrival, PacketDrop
from repro.switch.match import MatchSpec
from repro.switch.pipeline import MissPolicy


def arr(packet, t, port=1):
    return PacketArrival(switch_id="s", time=t, packet=packet, in_port=port)


class TestCompileChecks:
    def test_openflow_rejects_stateful_properties(self):
        backend = OpenFlow13Backend()
        with pytest.raises(UnsupportedFeature) as exc:
            backend.compile(firewall_basic())
        assert exc.value.feature == "event history"
        assert not exc.value.precluded  # blank, not X

    def test_fixed_parsers_reject_l7(self):
        for backend in (OpenStateBackend(), FastBackend(), VaranusBackend()):
            with pytest.raises(UnsupportedFeature) as exc:
                backend.compile(ftp_data_port_matches())
            assert exc.value.feature == "field access"

    def test_dynamic_parsers_accept_l7(self):
        # The FTP property needs only symmetric+negative on a dynamic
        # parser; P4/SNAP compile it.
        for backend in (P4Backend(), SnapBackend()):
            monitor = backend.compile(ftp_data_port_matches())
            assert monitor.backend_name == backend.caps.name

    def test_fast_rejects_rule_timeouts(self):
        with pytest.raises(UnsupportedFeature) as exc:
            FastBackend().compile(firewall_timed())
        assert exc.value.feature == "rule timeouts"
        assert exc.value.precluded

    def test_only_varanus_family_accepts_timeout_actions(self):
        prop_factory = dhcp_reply_within  # L7 though; use a neutral probe
        from repro.backends.conformance import timeout_action_probe

        for backend in (OpenStateBackend(), FastBackend(), P4Backend(),
                        SnapBackend()):
            with pytest.raises(UnsupportedFeature):
                backend.compile(timeout_action_probe())
        for backend in (VaranusBackend(), StaticVaranusBackend()):
            backend.compile(timeout_action_probe())

    def test_only_varanus_accepts_oob(self):
        prop = link_down_clears_learning()
        VaranusBackend().compile(prop)
        with pytest.raises(UnsupportedFeature):
            StaticVaranusBackend().compile(prop)
        with pytest.raises(UnsupportedFeature):
            P4Backend().compile(prop)

    def test_drop_visibility_gates_firewall(self):
        # The firewall property watches drops: only approaches with drop
        # visibility (P4's egress metadata, Varanus's OVS extensions) can
        # host it; OpenState cannot.
        with pytest.raises(UnsupportedFeature) as exc:
            OpenStateBackend().compile(firewall_basic())
        assert exc.value.feature == "drop visibility"
        VaranusBackend().compile(firewall_basic())

    def test_nat_needs_identity(self):
        prop = nat_reverse_translation()
        for backend in (VaranusBackend(),):
            backend.compile(prop)
        with pytest.raises(UnsupportedFeature) as exc:
            OpenStateBackend().compile(prop)
        assert exc.value.feature == "identification of related events"

    def test_compile_needs_a_property(self):
        with pytest.raises(ValueError):
            VaranusBackend().compile()


class TestBackendMonitorRuntime:
    def test_varanus_depth_tracks_instances(self):
        backend = VaranusBackend()
        monitor = backend.compile(knocking_invalidated())
        base = monitor.pipeline_depth
        for i in range(5):
            monitor.observe(arr(
                tcp_syn(1, 2, f"10.0.0.{i + 1}", "10.0.0.9", 30000, 7001),
                i * 0.01))
        monitor.advance_to(1.0)  # split mode: let creations apply
        assert monitor.live_instances == 5
        assert monitor.pipeline_depth == base + 5

    def test_static_varanus_depth_constant(self):
        backend = StaticVaranusBackend()
        monitor = backend.compile(knocking_invalidated())
        base = monitor.pipeline_depth
        for i in range(5):
            monitor.observe(arr(
                tcp_syn(1, 2, f"10.0.0.{i + 1}", "10.0.0.9", 30000, 7001),
                i * 0.01))
        monitor.advance_to(1.0)
        assert monitor.pipeline_depth == base  # one table per stage, fixed

    def test_drop_events_filtered_without_visibility(self):
        from repro.backends.conformance import history_probe

        backend = OpenStateBackend()
        monitor = backend.compile(history_probe())
        monitor.observe(PacketDrop(switch_id="s", time=0.0,
                                   packet=ethernet(1, 2), in_port=1))
        assert monitor.events_filtered == 1
        assert monitor.events_seen == 0

    def test_slow_path_backends_charge_slow_updates(self):
        from repro.backends.conformance import history_probe

        fast = OpenStateBackend().compile(history_probe())
        slow = StaticVaranusBackend().compile(history_probe())
        event = arr(ethernet(1, 9), 0.0)
        fast.observe(event)
        slow.observe(event)
        slow.advance_to(1.0)
        assert fast.meter.fast_updates >= 1 and fast.meter.slow_updates == 0
        assert slow.meter.slow_updates >= 1 and slow.meter.fast_updates == 0

    def test_controller_mirror_sees_everything_at_slow_cost(self):
        mirror = ControllerMirror([firewall_basic()])
        out = tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 1000, 80)
        back = tcp_packet(2, 1, "198.51.100.1", "10.0.0.1", 80, 1000)
        mirror.observe(arr(out, 0.0))
        mirror.observe(PacketDrop(switch_id="s", time=1.0, packet=back,
                                  in_port=2, reason="x"))
        assert len(mirror.violations) == 1
        assert mirror.events_mirrored == 2
        assert mirror.meter.slow_updates == 2  # every event shipped off-switch


class TestTable2:
    def test_reproduces_paper_exactly(self):
        assert diff_against_paper() == []

    def test_all_backends_count(self):
        assert len(all_backends()) == 7

    def test_render_contains_all_backends(self):
        text = render_table2()
        for name in ("OpenFlow 1.3", "OpenState", "FAST", "POF and P4",
                     "SNAP", "Varanus", "Static Varanus"):
            assert name in text


class TestXfsm:
    def _port_knock_table(self):
        table = XfsmTable(lookup_scope=("ipv4.src",))
        table.add_transition(XfsmTransition(
            state=0, predicate=lambda f: f.get("tcp.dst") == 7001,
            next_state=1, label="knock1"))
        table.add_transition(XfsmTransition(
            state=1, predicate=lambda f: f.get("tcp.dst") == 7002,
            next_state=2, label="open"))
        table.add_transition(XfsmTransition(
            state=1, predicate=lambda f: f.get("tcp.dst") != 7002,
            next_state=0, label="reset"))
        return table

    def _knock(self, dport, src="10.0.0.1"):
        return arr(tcp_syn(1, 2, src, "10.0.0.9", 30000, dport), 0.0)

    def test_sequence_advances(self):
        table = self._port_knock_table()
        assert table.process(self._knock(7001)) == 1
        assert table.process(self._knock(7002)) == 2

    def test_wrong_guess_resets(self):
        table = self._port_knock_table()
        table.process(self._knock(7001))
        assert table.process(self._knock(9999)) == 0
        fields = event_fields(self._knock(7002))
        assert table.state_of(fields) == 0

    def test_per_flow_isolation(self):
        table = self._port_knock_table()
        table.process(self._knock(7001, src="10.0.0.1"))
        table.process(self._knock(7001, src="10.0.0.2"))
        assert table.population() == 2

    def test_missing_scope_field_is_default_state(self):
        table = self._port_knock_table()
        assert table.process(arr(ethernet(1, 2), 0.0)) is None

    def test_meter_counts_fast_updates(self):
        table = self._port_knock_table()
        table.process(self._knock(7001))
        assert table.meter.fast_updates == 1
        assert table.meter.lookups == 1

    def test_empty_scope_rejected(self):
        with pytest.raises(ValueError):
            XfsmTable(lookup_scope=())


class TestFastMachine:
    def test_mac_learning_state_machine(self):
        net, sw, hosts = single_switch_network(
            3, switch_kwargs={"num_tables": 2, "miss_policy": MissPolicy.FLOOD}
        )
        from repro.switch.actions import FieldRef, Output

        machine = FastStateMachine(sw)
        machine.install([
            FastTransition(
                from_state=0, trigger=MatchSpec(), to_state=1,
                key_fields=(("eth.dst", "eth.src"),),
                actions=(Output(FieldRef("in_port")),),
            ),
        ])
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(ethernet(1, 2))
        net.run()
        assert machine.state_rule_count() == 1
        rec.clear()
        hosts[1].send(ethernet(2, 1))
        net.run()
        from repro.switch.events import EgressAction

        unicasts = [e for e in rec.egresses if e.action is EgressAction.UNICAST]
        assert [e.out_port for e in unicasts] == [1]

    def test_state_updates_are_slow_path(self):
        net, sw, hosts = single_switch_network(
            2, switch_kwargs={"num_tables": 2, "miss_policy": MissPolicy.FLOOD}
        )
        from repro.switch.actions import FieldRef, Output

        machine = FastStateMachine(sw)
        machine.install([
            FastTransition(
                from_state=0, trigger=MatchSpec(), to_state=1,
                key_fields=(("eth.dst", "eth.src"),),
                actions=(Output(FieldRef("in_port")),),
            ),
        ])
        before = sw.meter.slow_updates
        hosts[0].send(ethernet(1, 2))
        net.run()
        assert sw.meter.slow_updates > before

    def test_empty_machine_rejected(self):
        net, sw, _ = single_switch_network(2)
        with pytest.raises(ValueError):
            FastStateMachine(sw).install([])


class TestP4Program:
    def test_register_stage_updates(self):
        program = P4Program(register_size=64)
        program.add_stage(P4Stage(
            guard=lambda f: "ipv4.src" in f,
            array="seen", key_fields=("ipv4.src",),
            update=lambda old, f: old + 1,
        ))
        p = tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 1, 2)
        assert program.process(arr(p, 0.0)) == 1
        assert program.process(arr(p.refreshed(), 0.1)) == 1
        index = program.index_for(program.stages[0],
                                  event_fields(arr(p, 0.0)))
        assert program.array("seen").read(index) == 2

    def test_guard_skips(self):
        program = P4Program()
        program.add_stage(P4Stage(
            guard=lambda f: False, array="x", key_fields=("ipv4.src",),
            update=lambda old, f: 1,
        ))
        assert program.process(arr(ethernet(1, 2), 0.0)) == 0

    def test_updates_fast_path(self):
        program = P4Program()
        program.add_stage(P4Stage(
            guard=lambda f: True, array="x", key_fields=("eth.src",),
            update=lambda old, f: 1,
        ))
        program.process(arr(ethernet(1, 2), 0.0))
        assert program.meter.fast_updates == 1
        assert program.meter.slow_updates == 0

    def test_fnv1a_deterministic(self):
        assert fnv1a((1, 2, 3)) == fnv1a((1, 2, 3))
        assert fnv1a((1, 2, 3)) != fnv1a((3, 2, 1))


class TestSnapProgram:
    def test_stateful_test_fires_on_match(self):
        program = SnapProgram()
        seen = []
        program.add(SnapStatement(
            guard=lambda f: "ipv4.src" in f,
            array="contacted", key_fields=("ipv4.src", "ipv4.dst"),
            test=lambda v: v == 1,
            on_match=lambda f: seen.append(f["ipv4.src"]),
            write=lambda old, f: 1,
        ))
        p = tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 1, 2)
        program.process(arr(p, 0.0))          # writes 1, test saw 0
        assert seen == []
        program.process(arr(p.refreshed(), 0.1))  # test sees 1 now
        assert len(seen) == 1
        assert program.matches == 1

    def test_missing_key_field_skips(self):
        program = SnapProgram()
        program.add(SnapStatement(
            guard=lambda f: True, array="x", key_fields=("ipv4.src",),
            write=lambda old, f: 1,
        ))
        assert program.process(arr(ethernet(1, 2), 0.0)) == 0


class TestVaranusRuleCompilation:
    def test_each_flow_grows_one_table(self):
        net, sw, hosts = single_switch_network(
            2, switch_kwargs={"miss_policy": MissPolicy.FLOOD})
        compile_firewall_to_rules(sw)
        alerts = []
        sw.add_alert_sink(alerts.append)
        depth0 = sw.pipeline.depth
        for i in range(3):
            hosts[0].send(tcp_packet(1, 2, f"10.0.0.{i + 1}",
                                     "198.51.100.1", 1000, 80))
        net.run()
        assert sw.pipeline.depth == depth0 + 3  # one table per instance

    def test_return_traffic_raises_alert(self):
        net, sw, hosts = single_switch_network(
            2, switch_kwargs={"miss_policy": MissPolicy.FLOOD})
        compile_firewall_to_rules(sw)
        alerts = []
        sw.add_alert_sink(alerts.append)
        hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 1000, 80))
        net.run()
        hosts[1].send(tcp_packet(2, 1, "198.51.100.1", "10.0.0.1", 80, 1000))
        net.run()
        assert len(alerts) == 1
        assert "ipv4.src" in alerts[0].carried
