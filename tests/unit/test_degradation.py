"""Unit tests: bounded monitor state, backpressure, the overflow ledger."""

import pytest

from repro.core import (
    Bind,
    DegradationPolicy,
    EventKind,
    EventPattern,
    FieldEq,
    IMPACT_FALSE,
    IMPACT_MISSED,
    Monitor,
    Observe,
    OverflowLedger,
    PropertySpec,
    Var,
    classify_op,
)
from repro.packet import MACAddress, ethernet
from repro.switch.events import PacketArrival
from repro.switch.switch import ProcessingMode


def arr(packet, t, port=1):
    return PacketArrival(switch_id="s", time=t, packet=packet, in_port=port)


def two_stage(name="p"):
    """frame from S, then frame to S."""
    return PropertySpec(
        name=name,
        description="test property",
        stages=(
            Observe("seen", EventPattern(kind=EventKind.ARRIVAL,
                                         binds=(Bind("S", "eth.src"),))),
            Observe("answered", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("eth.dst", Var("S")),))),
        ),
        key_vars=("S",),
    )


def degraded_monitor(policy, mode=ProcessingMode.INLINE, **kw):
    monitor = Monitor(mode=mode, degradation=policy, **kw)
    monitor.add_property(two_stage())
    return monitor


class TestPolicyValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            DegradationPolicy(max_instances=0)
        with pytest.raises(ValueError):
            DegradationPolicy(eviction="drop-table")
        with pytest.raises(ValueError):
            DegradationPolicy(max_pending_ops=0)
        with pytest.raises(ValueError):
            DegradationPolicy(retry_backoff=-1.0)
        with pytest.raises(ValueError):
            DegradationPolicy(max_retries=-1)


class TestClassifyOp:
    def test_primary_direction(self):
        assert classify_op("create", "dropped")[0] == IMPACT_MISSED
        assert classify_op("advance", "dropped")[0] == IMPACT_MISSED
        assert classify_op("refresh", "dropped")[0] == IMPACT_MISSED
        assert classify_op("kill", "dropped")[0] == IMPACT_FALSE

    def test_both_sides_always_present(self):
        for kind in ("create", "advance", "refresh", "kill"):
            impacts = classify_op(kind, "dropped")
            assert set(impacts) == {IMPACT_MISSED, IMPACT_FALSE}


class TestLedger:
    def test_interval_clamps_at_zero(self):
        ledger = OverflowLedger()
        ledger.record("op-dropped", "p", "kill", 1.0,
                      classify_op("kill", "dropped"))
        ledger.record("op-dropped", "p", "create", 2.0,
                      classify_op("create", "dropped"))
        assert ledger.interval(0) == (0, 2)
        assert ledger.interval(5) == (3, 7)
        assert ledger.potential_missed() == 2
        assert ledger.potential_false() == 2

    def test_per_property_filtering(self):
        ledger = OverflowLedger()
        ledger.record("instance-evicted", "a", "", 1.0,
                      (IMPACT_MISSED, IMPACT_FALSE))
        ledger.record("op-shed", "b", "advance", 2.0,
                      classify_op("advance", "dropped"))
        assert ledger.potential_missed("a") == 1
        assert ledger.potential_missed("b") == 1
        assert ledger.potential_missed() == 2
        assert ledger.properties() == ("a", "b")
        summary = ledger.summary()
        assert summary["records"] == 2
        assert summary["by_kind"] == {"instance-evicted": 1, "op-shed": 1}


class TestBoundedStores:
    def _fill(self, policy, n=4):
        monitor = degraded_monitor(policy)
        for i in range(n):
            monitor.observe(arr(ethernet(i + 1, 100 + i), 0.1 * (i + 1)))
        return monitor

    def test_reject_new(self):
        monitor = self._fill(
            DegradationPolicy(max_instances=2, eviction="reject-new"))
        assert monitor.live_instances() == 2
        assert monitor.stats.instances_created == 2
        assert monitor.stats.instances_rejected == 2
        assert monitor.ledger.by_kind() == {"instance-rejected": 2}

    def test_evict_oldest(self):
        monitor = self._fill(
            DegradationPolicy(max_instances=2, eviction="evict-oldest"))
        assert monitor.live_instances() == 2
        assert monitor.stats.instances_created == 4
        assert monitor.stats.instances_evicted == 2
        # The two oldest (keys 1 and 2) were shed; key 3 and 4 survive.
        store = monitor._stores["p"]
        assert store.by_key((MACAddress(1),)) is None or not store.by_key((MACAddress(1),)).alive
        assert store.by_key((MACAddress(4),)).alive

    def test_evict_lru_prefers_stale_instance(self):
        monitor = degraded_monitor(
            DegradationPolicy(max_instances=2, eviction="evict-lru"))
        monitor.observe(arr(ethernet(1, 100), 0.1))
        monitor.observe(arr(ethernet(2, 100), 0.2))
        # Refresh key 1 (stage-0 re-match touches advanced_at)...
        monitor.observe(arr(ethernet(1, 100), 0.3))
        # ...so the LRU victim for the next create is key 2.
        monitor.observe(arr(ethernet(3, 100), 0.4))
        store = monitor._stores["p"]
        assert store.by_key((MACAddress(1),)).alive
        assert store.by_key((MACAddress(3),)).alive
        assert store.by_key((MACAddress(2),)) is None or not store.by_key((MACAddress(2),)).alive

    def test_eviction_keeps_accounting_identity(self):
        monitor = self._fill(
            DegradationPolicy(max_instances=2, eviction="evict-oldest"), n=6)
        stats = monitor.stats
        retired = (stats.violations + stats.instances_expired
                   + stats.instances_discharged + stats.instances_cancelled
                   + stats.instances_evicted)
        assert stats.instances_created == monitor.live_instances() + retired


class TestBackpressure:
    def test_queue_bound_retries_then_sheds(self):
        policy = DegradationPolicy(max_pending_ops=2, retry_backoff=1.0,
                                   max_retries=1)
        monitor = Monitor(mode=ProcessingMode.SPLIT, split_lag=0.5,
                          degradation=policy)
        monitor.add_property(two_stage())
        # Four creations in one lag window: 2 queue, 1 retries, then the
        # queue is still full at t+backoff... with backoff 1.0 > lag 0.5
        # the retry lands after the queue drains, so nothing sheds yet.
        for i in range(4):
            monitor.observe(arr(ethernet(i + 1, 100 + i), 0.01 * (i + 1)))
        assert monitor.pending_op_count() == 4  # 2 queued + 2 retrying
        assert monitor.stats.op_retries == 2
        monitor.advance_to(10.0)
        assert monitor.pending_op_count() == 0
        assert monitor.stats.instances_created == 4
        assert monitor.stats.ops_shed == 0

    def test_exhausted_retries_shed(self):
        policy = DegradationPolicy(max_pending_ops=1, retry_backoff=1e-4,
                                   max_retries=1)
        monitor = Monitor(mode=ProcessingMode.SPLIT, split_lag=1.0,
                          degradation=policy)
        monitor.add_property(two_stage())
        for i in range(3):
            monitor.observe(arr(ethernet(i + 1, 100 + i), 0.01))
        monitor.advance_to(20.0)
        # Queue held 1; the other two retried once (backoff far shorter
        # than the 1s lag, so the queue was still full) and were shed.
        assert monitor.stats.ops_shed == 2
        assert monitor.stats.op_retries == 2
        assert monitor.stats.instances_created == 1
        assert monitor.ledger.by_kind()["op-shed"] == 2
        assert monitor.pending_op_count() == 0

    def test_shed_ops_enter_ledger_with_primary(self):
        policy = DegradationPolicy(max_pending_ops=1, retry_backoff=1e-4,
                                   max_retries=0)
        monitor = Monitor(mode=ProcessingMode.SPLIT, split_lag=1.0,
                          degradation=policy)
        monitor.add_property(two_stage())
        for i in range(3):
            monitor.observe(arr(ethernet(i + 1, 100 + i), 0.01))
        monitor.advance_to(20.0)
        shed = [r for r in monitor.ledger.records if r.kind == "op-shed"]
        assert len(shed) == 2
        assert all(r.primary == IMPACT_MISSED for r in shed)  # creates
