"""Unit tests: the netsim chaos layer (fault profiles and injectors)."""

import warnings

import pytest

from repro.netsim import (
    EventScheduler,
    Network,
    SchedulerTruncationError,
    single_switch_network,
)
from repro.netsim.chaos import (
    DUPLICATE_GAP,
    PROFILES,
    ChaosProfile,
    ControlFaultProfile,
    FaultInjector,
    FaultyEventChannel,
    LinkFaultProfile,
    corrupt_packet,
    install_host_chaos,
    install_link_chaos,
)
from repro.packet import ethernet, tcp_packet
from repro.switch.events import PacketArrival


class TestProfiles:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            LinkFaultProfile(drop=1.5)
        with pytest.raises(ValueError):
            LinkFaultProfile(jitter=-0.1)
        with pytest.raises(ValueError):
            LinkFaultProfile(reorder=0.5)  # no window
        with pytest.raises(ValueError):
            ControlFaultProfile(drop=-0.1)
        with pytest.raises(ValueError):
            ControlFaultProfile(extra_lag=float("inf"))
        with pytest.raises(ValueError):
            ChaosProfile(name="x", description="", mode="both")

    def test_is_null(self):
        assert LinkFaultProfile().is_null
        assert not LinkFaultProfile(drop=0.1).is_null
        assert ControlFaultProfile().is_null
        assert not ControlFaultProfile(extra_lag=1e-3).is_null

    def test_named_catalog(self):
        assert set(PROFILES) == {"clean", "lossy", "overloaded",
                                 "adversarial", "worker-crash"}
        clean = PROFILES["clean"]
        assert clean.link.is_null and clean.control.is_null
        assert not clean.degraded() and clean.ledgered
        assert PROFILES["overloaded"].ledgered  # perfect tap
        assert not PROFILES["lossy"].ledgered
        assert not PROFILES["adversarial"].ledgered
        assert PROFILES["overloaded"].degraded()
        crash = PROFILES["worker-crash"]
        assert crash.link.is_null and crash.control.is_null
        assert crash.ledgered  # perfect tap: all loss is monitor-side
        assert crash.worker_crash.kills_per_shard == 1


class TestControlChannel:
    def test_deterministic_streams(self):
        prof = ControlFaultProfile(drop=0.3, extra_lag=1e-3, jitter=1e-3,
                                   seed=5)
        runs = []
        for _ in range(2):
            chan = prof.channel("m")
            runs.append([chan.perturb() for _ in range(50)])
        assert runs[0] == runs[1]
        assert any(x is None for x in runs[0])
        assert any(x is not None and x > 1e-3 for x in runs[0])

    def test_drop_stream_independent_of_lag(self):
        # Which ops drop must not change when lag knobs are toggled.
        drops = []
        for extra in (0.0, 0.5):
            chan = ControlFaultProfile(drop=0.5, extra_lag=extra,
                                       seed=9).channel("m")
            drops.append([chan.perturb() is None for _ in range(100)])
        assert drops[0] == drops[1]


class TestCorruptPacket:
    def test_keeps_uid_truncates_headers(self):
        packet = tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 1000, 80)
        bad = corrupt_packet(packet)
        assert bad.uid == packet.uid
        assert len(bad.headers) == 1
        assert bad.payload == b"\xde\xad"


def _drive(profile, num_packets=60, seed_packets=3):
    """Send traffic across a host attachment under chaos; return injector."""
    net, switch, hosts = single_switch_network(2)
    injector = install_host_chaos(hosts[0], profile)
    for i in range(num_packets):
        hosts[0].send_at(0.001 * (i + 1), ethernet(1, 2))
    net.run()
    return injector


class TestFaultInjector:
    def test_clean_profile_delivers_everything(self):
        counters = _drive(LinkFaultProfile()).counters
        assert counters["offered"] == counters["delivered"] == 60
        assert counters["dropped"] == 0

    def test_drop_all(self):
        counters = _drive(LinkFaultProfile(drop=1.0)).counters
        assert counters["dropped"] == 60
        assert counters["delivered"] == 0

    def test_deterministic_for_seed(self):
        profile = LinkFaultProfile(drop=0.2, duplicate=0.1, jitter=1e-4,
                                   corrupt=0.1, seed=3)
        a = _drive(profile).counters
        b = _drive(profile).counters
        assert a == b
        assert a["dropped"] > 0 and a["duplicated"] > 0

    def test_fault_streams_independent(self):
        # Enabling duplication must not change which packets drop.
        base = _drive(LinkFaultProfile(drop=0.3, seed=3)).counters
        both = _drive(LinkFaultProfile(drop=0.3, duplicate=0.5,
                                       seed=3)).counters
        assert base["dropped"] == both["dropped"]

    def test_install_link_chaos_wraps_both_directions(self):
        net = Network()
        a = net.add_switch("a", num_ports=2)
        b = net.add_switch("b", num_ports=2)
        link = net.link(a, 2, b, 2)
        injector = install_link_chaos(link, LinkFaultProfile(drop=1.0,
                                                             seed=1))
        a.receive(ethernet(1, 2), in_port=1)
        b.receive(ethernet(2, 1), in_port=1)
        net.run()
        # Default pipeline floods the inter-switch port in both directions;
        # the injector saw and dropped traffic from each side.
        assert injector.counters["offered"] >= 2
        assert injector.counters["dropped"] == injector.counters["offered"]


def _arrivals(n=40, gap=0.01):
    return [
        PacketArrival(switch_id="s", time=(i + 1) * gap,
                      packet=tcp_packet(1, 2, "10.0.0.1", "10.0.0.2",
                                        1000 + i, 80),
                      in_port=1)
        for i in range(n)
    ]


class TestFaultyEventChannel:
    def test_null_profile_is_identity(self):
        events = _arrivals()
        out = FaultyEventChannel(LinkFaultProfile()).transform(events)
        assert out == events

    def test_deterministic(self):
        profile = LinkFaultProfile(drop=0.1, duplicate=0.1, reorder=0.3,
                                   reorder_window=0.05, jitter=0.01,
                                   corrupt=0.1, seed=7)
        events = _arrivals()
        a = FaultyEventChannel(profile, name="t").transform(events)
        b = FaultyEventChannel(profile, name="t").transform(events)
        assert a == b

    def test_times_monotonic_after_transform(self):
        profile = LinkFaultProfile(reorder=0.5, reorder_window=0.2,
                                   jitter=0.05, seed=11)
        out = FaultyEventChannel(profile).transform(_arrivals())
        times = [e.time for e in out]
        assert times == sorted(times)

    def test_duplicate_trails_by_gap(self):
        out = FaultyEventChannel(
            LinkFaultProfile(duplicate=1.0, seed=1)).transform(_arrivals(3))
        assert len(out) == 6
        assert out[1].time == pytest.approx(out[0].time + DUPLICATE_GAP)
        assert out[1].packet.uid == out[0].packet.uid

    def test_corrupt_keeps_uid(self):
        events = _arrivals(5)
        out = FaultyEventChannel(
            LinkFaultProfile(corrupt=1.0, seed=1)).transform(events)
        assert [e.packet.uid for e in out] == [e.packet.uid for e in events]
        assert all(len(e.packet.headers) == 1 for e in out)


class TestSchedulerTruncation:
    def test_exact_capacity_drain_is_clean(self):
        sched = EventScheduler()
        for i in range(5):
            sched.call_at(float(i), lambda: None)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert sched.run(max_events=5) == 5
        assert sched.truncations == 0

    def test_truncation_raises_and_counts(self):
        sched = EventScheduler()

        def reschedule():
            sched.call_after(0.001, reschedule)

        sched.call_at(0.0, reschedule)
        with pytest.warns(RuntimeWarning, match="truncated"):
            with pytest.raises(SchedulerTruncationError) as exc:
                sched.run(max_events=10)
        assert exc.value.fired == 10
        assert exc.value.pending == 1
        assert sched.truncations == 1
