"""StatsPoller under both clocks: virtual-replay parity and wall-clock
firing with a fake monotonic source.

The wall-clock mode (``clock=`` + ``poll()``) is what ``repro serve``
drives; the virtual mode (``advance_to``/``attach``) is what replay
drives.  The parity tests pin that adding the wall-clock path changed
nothing about virtual rows, and the jitter tests pin the lateness
accounting against a controllable fake time source.
"""

import pytest

from repro.telemetry import MetricsRegistry, StatsPoller


class FakeMonotonic:
    """A manually-advanced stand-in for time.monotonic."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, delta):
        self.now += delta


def gauge_registry():
    registry = MetricsRegistry()
    return registry, registry.gauge("depth")


class TestVirtualClockParity:
    def test_virtual_rows_carry_no_jitter_field(self):
        registry, g = gauge_registry()
        poller = StatsPoller(registry, interval=1.0)
        g.set(3)
        poller.advance_to(2.5)
        assert [set(row) for row in poller.samples] \
            == [{"time", "values"}] * 2

    def test_wallclock_rows_match_virtual_rows_modulo_jitter(self):
        registry, g = gauge_registry()
        virtual = StatsPoller(registry, interval=0.5)
        fake = FakeMonotonic()
        wall = StatsPoller(registry, interval=0.5, clock=fake)
        g.set(7)
        virtual.advance_to(2.0)
        fake.advance(2.0)
        wall.poll()
        stripped = [{k: v for k, v in row.items() if k != "jitter"}
                    for row in wall.samples]
        assert stripped == virtual.samples

    def test_poll_without_clock_is_an_error(self):
        registry, _ = gauge_registry()
        poller = StatsPoller(registry, interval=1.0)
        with pytest.raises(ValueError):
            poller.poll()
        with pytest.raises(ValueError):
            poller.seconds_until_due()


class TestWallClockMode:
    def test_on_schedule_polling_bounds_jitter_below_interval(self):
        registry, g = gauge_registry()
        fake = FakeMonotonic()
        poller = StatsPoller(registry, interval=1.0, clock=fake)
        g.set(1)
        # Poll once per interval, each poll 0.25s past the deadline.
        fake.advance(1.25)
        for _ in range(5):
            assert poller.poll() == 1
            fake.advance(1.0)
        assert [row["time"] for row in poller.samples[:3]] \
            == [1.0, 2.0, 3.0]
        for row in poller.samples:
            assert 0.0 <= row["jitter"] < poller.interval
            assert row["jitter"] == 0.25

    def test_stalled_loop_catches_up_one_row_per_missed_tick(self):
        registry, g = gauge_registry()
        fake = FakeMonotonic()
        poller = StatsPoller(registry, interval=1.0, clock=fake)
        g.set(4)
        fake.advance(3.7)  # three ticks overdue
        assert poller.poll() == 3
        times = [row["time"] for row in poller.samples]
        jitters = [row["jitter"] for row in poller.samples]
        assert times == [1.0, 2.0, 3.0]  # deadlines, not poll times
        assert jitters == pytest.approx([2.7, 1.7, 0.7])  # lateness/tick

    def test_early_poll_fires_nothing(self):
        registry, _ = gauge_registry()
        fake = FakeMonotonic()
        poller = StatsPoller(registry, interval=1.0, clock=fake)
        fake.advance(0.9)
        assert poller.poll() == 0
        assert poller.samples == []

    def test_seconds_until_due_is_a_sleep_hint(self):
        registry, _ = gauge_registry()
        fake = FakeMonotonic()
        poller = StatsPoller(registry, interval=2.0, clock=fake)
        assert poller.seconds_until_due() == 2.0
        fake.advance(0.5)
        assert poller.seconds_until_due() == 1.5
        fake.advance(5.0)  # overdue: clamp at zero, never negative
        assert poller.seconds_until_due() == 0.0

    def test_sources_refresh_before_each_wallclock_sample(self):
        registry, g = gauge_registry()
        fake = FakeMonotonic()
        calls = []
        poller = StatsPoller(
            registry, interval=1.0, clock=fake,
            sources=[lambda: calls.append(len(calls)) or g.set(len(calls))])
        fake.advance(2.0)
        poller.poll()
        assert calls == [0, 1]
        assert [row["values"]["depth"] for row in poller.samples] == [1, 2]
