"""docs/CLI.md is locked to the real argparse surface.

Walks ``repro.cli.build_parser()``: every subcommand and every option
string must appear verbatim in docs/CLI.md, and every ``repro <word>``
heading in the doc must name a real subcommand — so the reference can
neither lag behind the CLI nor document things that do not exist.
"""

import argparse
import os
import re

import pytest

from repro.cli import build_parser

DOC = os.path.join(os.path.dirname(__file__), "..", "..", "docs", "CLI.md")


def doc_text():
    with open(DOC, encoding="utf-8") as fp:
        return fp.read()


def subcommand_parsers():
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    raise AssertionError("no subparsers on the repro parser")


class TestCliDocs:
    def test_every_subcommand_has_a_section(self):
        text = doc_text()
        for name in subcommand_parsers():
            assert f"## `repro {name}" in text, (
                f"subcommand {name!r} has no '## `repro {name} ...`' "
                f"section in docs/CLI.md")

    def test_every_flag_is_documented(self):
        text = doc_text()
        missing = []
        for name, sub in subcommand_parsers().items():
            for action in sub._actions:
                if isinstance(action, argparse._HelpAction):
                    continue
                for opt in action.option_strings:
                    if len(opt) > 2 and opt not in text:
                        missing.append(f"{name} {opt}")
        assert not missing, (
            "flags present in the CLI but absent from docs/CLI.md: "
            + ", ".join(missing))

    def test_every_positional_is_documented(self):
        text = doc_text()
        missing = []
        for name, sub in subcommand_parsers().items():
            for action in sub._actions:
                if action.option_strings:
                    continue
                token = action.metavar or action.dest
                if token.upper() not in text.upper():
                    missing.append(f"{name} {token}")
        assert not missing, missing

    def test_doc_names_no_phantom_subcommands(self):
        known = set(subcommand_parsers())
        for match in re.finditer(r"^## `repro (\w+)", doc_text(), re.M):
            assert match.group(1) in known, (
                f"docs/CLI.md documents 'repro {match.group(1)}', which "
                f"the parser does not define")

    def test_doc_names_no_phantom_flags(self):
        known = set()
        for sub in subcommand_parsers().values():
            for action in sub._actions:
                known.update(action.option_strings)
        for match in re.finditer(r"`(--[a-z][a-z-]*)", doc_text()):
            assert match.group(1) in known, (
                f"docs/CLI.md mentions {match.group(1)!r}, which no "
                f"subcommand defines")

    def test_chaos_profiles_listed_match_the_registry(self):
        from repro.netsim.chaos import PROFILES

        section = doc_text().split("## `repro chaos")[1]
        for profile in PROFILES:
            assert f"`{profile}`" in section, profile

    def test_parser_help_renders(self):
        # The doc is prose; the parser's own --help must still work.
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--help"])
        assert exc.value.code == 0
