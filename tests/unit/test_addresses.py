"""Unit tests: MAC and IPv4 address value types."""

import pytest

from repro.packet.addresses import AddressError, IPv4Address, MACAddress


class TestMACAddress:
    def test_from_string(self):
        mac = MACAddress("00:11:22:33:44:55")
        assert int(mac) == 0x001122334455

    def test_from_dash_string(self):
        assert MACAddress("00-11-22-33-44-55") == MACAddress("00:11:22:33:44:55")

    def test_from_int(self):
        assert str(MACAddress(1)) == "00:00:00:00:00:01"

    def test_from_bytes(self):
        assert MACAddress(b"\x00\x00\x00\x00\x00\x2a") == MACAddress(42)

    def test_from_mac(self):
        mac = MACAddress(7)
        assert MACAddress(mac) == mac

    def test_packed_roundtrip(self):
        mac = MACAddress("de:ad:be:ef:00:01")
        assert MACAddress(mac.packed()) == mac

    def test_str_roundtrip(self):
        mac = MACAddress("aa:bb:cc:dd:ee:ff")
        assert MACAddress(str(mac)) == mac

    @pytest.mark.parametrize("bad", ["", "00:11:22", "zz:11:22:33:44:55", "1.2.3.4"])
    def test_malformed_strings_rejected(self, bad):
        with pytest.raises(AddressError):
            MACAddress(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(AddressError):
            MACAddress(1 << 48)
        with pytest.raises(AddressError):
            MACAddress(-1)

    def test_wrong_byte_length_rejected(self):
        with pytest.raises(AddressError):
            MACAddress(b"\x00" * 5)

    def test_broadcast(self):
        assert MACAddress.BROADCAST.is_broadcast
        assert MACAddress.BROADCAST.is_multicast
        assert not MACAddress(1).is_broadcast

    def test_multicast_ig_bit(self):
        assert MACAddress("01:00:5e:00:00:01").is_multicast
        assert MACAddress("00:00:5e:00:00:01").is_unicast

    def test_ordering(self):
        assert MACAddress(1) < MACAddress(2)
        assert sorted([MACAddress(3), MACAddress(1)])[0] == MACAddress(1)

    def test_hashable(self):
        assert len({MACAddress(1), MACAddress(1), MACAddress(2)}) == 2

    def test_not_equal_to_other_types(self):
        assert MACAddress(1) != 1
        assert MACAddress(1) != IPv4Address(1)


class TestIPv4Address:
    def test_from_string(self):
        assert int(IPv4Address("10.0.0.1")) == 0x0A000001

    def test_from_int(self):
        assert str(IPv4Address(0x0A000001)) == "10.0.0.1"

    def test_from_bytes(self):
        assert IPv4Address(b"\x0a\x00\x00\x01") == IPv4Address("10.0.0.1")

    def test_packed_roundtrip(self):
        ip = IPv4Address("192.168.1.200")
        assert IPv4Address(ip.packed()) == ip

    @pytest.mark.parametrize("bad", ["", "10.0.0", "10.0.0.256", "a.b.c.d", "1.2.3.4.5"])
    def test_malformed_strings_rejected(self, bad):
        with pytest.raises(AddressError):
            IPv4Address(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)

    def test_broadcast(self):
        assert IPv4Address.BROADCAST.is_broadcast
        assert IPv4Address("255.255.255.255").is_broadcast

    def test_multicast(self):
        assert IPv4Address("224.0.0.1").is_multicast
        assert IPv4Address("239.255.255.255").is_multicast
        assert not IPv4Address("240.0.0.1").is_multicast
        assert not IPv4Address("10.0.0.1").is_multicast

    @pytest.mark.parametrize(
        "addr,private",
        [
            ("10.0.0.1", True),
            ("172.16.0.1", True),
            ("172.31.255.255", True),
            ("172.32.0.1", False),
            ("192.168.0.1", True),
            ("192.169.0.1", False),
            ("8.8.8.8", False),
        ],
    )
    def test_private_ranges(self, addr, private):
        assert IPv4Address(addr).is_private is private

    def test_in_subnet(self):
        ip = IPv4Address("10.1.2.3")
        assert ip.in_subnet(IPv4Address("10.1.2.0"), 24)
        assert ip.in_subnet(IPv4Address("10.0.0.0"), 8)
        assert not ip.in_subnet(IPv4Address("10.1.3.0"), 24)
        assert ip.in_subnet(IPv4Address("0.0.0.0"), 0)

    def test_in_subnet_bad_prefix(self):
        with pytest.raises(AddressError):
            IPv4Address("10.0.0.1").in_subnet(IPv4Address("10.0.0.0"), 33)

    def test_ordering_and_hash(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")
        assert len({IPv4Address("1.1.1.1"), IPv4Address("1.1.1.1")}) == 1

    def test_mac_and_ip_hash_distinctly(self):
        # Same underlying integer must not collide semantically.
        assert MACAddress(5) != IPv4Address(5)
        assert len({MACAddress(5), IPv4Address(5)}) == 2
