"""Unit tests: the monitor engine's semantic features (F1-F10).

Each test class exercises one of the paper's Sec. 2 features against
hand-built event streams, independent of any switch or app.
"""

import pytest

from repro.core import (
    Absent,
    Bind,
    Const,
    EventKind,
    EventPattern,
    FieldEq,
    FieldNe,
    MismatchAny,
    Monitor,
    Observe,
    Predicate,
    PropertySpec,
    ProvenanceLevel,
    SpecError,
    Var,
)
from repro.packet import ethernet, tcp_packet
from repro.switch.events import (
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
)
from repro.switch.switch import ProcessingMode


def arr(packet, t, port=1):
    return PacketArrival(switch_id="s", time=t, packet=packet, in_port=port)


def egr(packet, t, out_port=2, action=EgressAction.UNICAST, in_port=1):
    return PacketEgress(switch_id="s", time=t, packet=packet,
                        out_port=out_port, in_port=in_port, action=action)


def drp(packet, t, port=2, reason="x"):
    return PacketDrop(switch_id="s", time=t, packet=packet, in_port=port,
                      reason=reason)


def two_stage(name="p", within=None, unless=(), stage1_guards=None):
    """frame from S, then frame to S (optionally timed / cancellable)."""
    guards = stage1_guards or (FieldEq("eth.dst", Var("S")),)
    return PropertySpec(
        name=name,
        description="test property",
        stages=(
            Observe("seen", EventPattern(kind=EventKind.ARRIVAL,
                                         binds=(Bind("S", "eth.src"),))),
            Observe("answered",
                    EventPattern(kind=EventKind.ARRIVAL, guards=guards),
                    within=within, unless=unless),
        ),
        key_vars=("S",),
    )


def fresh(prop):
    monitor = Monitor()
    monitor.add_property(prop)
    return monitor


class TestSpecValidation:
    def test_empty_stages_rejected(self):
        with pytest.raises(SpecError):
            PropertySpec(name="x", description="", stages=())

    def test_first_stage_cannot_be_absent(self):
        with pytest.raises(SpecError):
            PropertySpec(
                name="x", description="",
                stages=(Absent("a", EventPattern(kind=EventKind.ARRIVAL),
                               within=1.0),),
            )

    def test_stage0_timeout_rejected(self):
        with pytest.raises(SpecError):
            PropertySpec(
                name="x", description="",
                stages=(Observe("a", EventPattern(kind=EventKind.ARRIVAL),
                                within=1.0),),
            )

    def test_unbound_var_rejected(self):
        with pytest.raises(SpecError):
            PropertySpec(
                name="x", description="",
                stages=(
                    Observe("a", EventPattern(kind=EventKind.ARRIVAL)),
                    Observe("b", EventPattern(
                        kind=EventKind.ARRIVAL,
                        guards=(FieldEq("eth.src", Var("nope")),))),
                ),
            )

    def test_same_packet_unknown_stage_rejected(self):
        with pytest.raises(SpecError):
            PropertySpec(
                name="x", description="",
                stages=(
                    Observe("a", EventPattern(kind=EventKind.ARRIVAL)),
                    Observe("b", EventPattern(kind=EventKind.EGRESS,
                                              same_packet_as="ghost")),
                ),
            )

    def test_key_vars_must_be_bound_at_stage0(self):
        with pytest.raises(SpecError):
            PropertySpec(
                name="x", description="",
                stages=(
                    Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                              binds=(Bind("S", "eth.src"),))),
                    Observe("b", EventPattern(kind=EventKind.ARRIVAL)),
                ),
                key_vars=("T",),
            )

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(SpecError):
            PropertySpec(
                name="x", description="",
                stages=(
                    Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                              binds=(Bind("S", "eth.src"),))),
                    Observe("a", EventPattern(kind=EventKind.ARRIVAL)),
                ),
            )

    def test_default_key_vars_from_stage0(self):
        prop = two_stage()
        assert prop.key_vars == ("S",)

    def test_absent_needs_positive_within(self):
        with pytest.raises(SpecError):
            Absent("a", EventPattern(kind=EventKind.ARRIVAL), within=0.0)

    def test_absent_refresh_policy_validated(self):
        with pytest.raises(SpecError):
            Absent("a", EventPattern(kind=EventKind.ARRIVAL), within=1.0,
                   refresh="sometimes")


class TestHistoryAndAdvancement:
    def test_basic_two_stage_violation(self):
        m = fresh(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 1.0))
        assert len(m.violations) == 1
        v = m.violations[0]
        assert v.property_name == "p"
        assert v.time == 1.0
        assert str(v.bindings["S"]) == "00:00:00:00:00:01"

    def test_no_violation_without_stage0(self):
        m = fresh(two_stage())
        m.observe(arr(ethernet(7, 1), 1.0))
        assert m.violations == []

    def test_creating_event_does_not_advance_its_own_instance(self):
        # eth.src == eth.dst == 1: the frame matches stage 1's guard too,
        # but must not complete the instance it just created.
        m = fresh(two_stage())
        m.observe(arr(ethernet(1, 1), 0.0))
        assert m.violations == []
        m.observe(arr(ethernet(9, 1), 1.0))
        assert len(m.violations) == 1

    def test_one_violation_per_key(self):
        m = fresh(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(2, 9), 0.1))
        m.observe(arr(ethernet(7, 1), 1.0))
        m.observe(arr(ethernet(7, 2), 1.1))
        assert len(m.violations) == 2
        # instances: S=1, S=2, plus one for S=7 (the trigger frames also
        # match stage 0; the second merely refreshes it)
        assert m.stats.instances_created == 3

    def test_instance_removed_after_violation(self):
        m = fresh(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 1.0))
        m.observe(arr(ethernet(8, 1), 2.0))  # no live instance for S=1
        assert len(m.violations) == 1

    def test_duplicate_key_refreshes_not_duplicates(self):
        m = fresh(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(1, 8), 0.5))
        assert m.stats.instances_created == 1
        assert m.stats.refreshes == 1

    def test_multiple_properties_independent(self):
        m = Monitor()
        m.add_property(two_stage("p1"))
        m.add_property(two_stage("p2"))
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 1.0))
        assert sorted(v.property_name for v in m.violations) == ["p1", "p2"]

    def test_duplicate_property_name_rejected(self):
        m = Monitor()
        m.add_property(two_stage("p"))
        with pytest.raises(ValueError):
            m.add_property(two_stage("p"))


class TestTimeouts:
    def test_violation_inside_window(self):
        m = fresh(two_stage(within=10.0))
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 9.9))
        assert len(m.violations) == 1

    def test_no_violation_after_expiry(self):
        m = fresh(two_stage(within=10.0))
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 10.1))
        assert m.violations == []
        assert m.stats.instances_expired == 1

    def test_expiry_exactly_at_deadline(self):
        # Timers fire before same-time events: a frame at exactly t+T is late.
        m = fresh(two_stage(within=10.0))
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 10.0))
        assert m.violations == []

    def test_refresh_resets_window(self):
        m = fresh(two_stage(within=10.0))
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(1, 9).refreshed(), 8.0))
        m.observe(arr(ethernet(7, 1), 15.0))  # inside 8+10
        assert len(m.violations) == 1

    def test_separate_timers_per_key(self):
        m = fresh(two_stage(within=10.0))
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(2, 9), 5.0))
        m.observe(arr(ethernet(7, 1), 12.0))  # S=1 expired
        m.observe(arr(ethernet(7, 2), 12.0))  # S=2 still live
        assert len(m.violations) == 1
        assert str(m.violations[0].bindings["S"]) == "00:00:00:00:00:02"


class TestObligation:
    def _close_pattern(self):
        return EventPattern(
            kind=EventKind.ARRIVAL,
            guards=(FieldEq("eth.src", Var("S")),
                    FieldEq("eth.type", Const(0x9999))),
        )

    def test_unless_cancels(self):
        m = fresh(two_stage(unless=(self._close_pattern(),)))
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(1, 9, ethertype=0x9999), 1.0))  # cancel
        m.observe(arr(ethernet(7, 1), 2.0))
        assert m.violations == []
        assert m.stats.instances_cancelled == 1

    def test_unless_only_cancels_matching_instance(self):
        m = fresh(two_stage(unless=(self._close_pattern(),)))
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(2, 9), 0.1))
        m.observe(arr(ethernet(1, 9, ethertype=0x9999), 1.0))  # cancels S=1
        m.observe(arr(ethernet(7, 1), 2.0))
        m.observe(arr(ethernet(7, 2), 2.1))
        assert len(m.violations) == 1
        assert str(m.violations[0].bindings["S"]) == "00:00:00:00:00:02"

    def test_cancelling_event_cannot_also_advance(self):
        # An event matching both the unless pattern and the stage guard
        # must cancel, not violate.
        unless = (EventPattern(kind=EventKind.ARRIVAL,
                               guards=(FieldEq("eth.dst", Var("S")),)),)
        m = fresh(two_stage(unless=unless))
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 1.0))
        assert m.violations == []
        assert m.stats.instances_cancelled == 1


class TestPacketIdentity:
    def _prop(self):
        return PropertySpec(
            name="ident", description="",
            stages=(
                Observe("in", EventPattern(kind=EventKind.ARRIVAL,
                                           binds=(Bind("S", "eth.src"),))),
                Observe("out", EventPattern(kind=EventKind.EGRESS,
                                            same_packet_as="in")),
            ),
            key_vars=("S",),
        )

    def test_same_packet_matches(self):
        m = fresh(self._prop())
        p = ethernet(1, 2)
        m.observe(arr(p, 0.0))
        m.observe(egr(p, 0.001))
        assert len(m.violations) == 1

    def test_rewritten_packet_keeps_identity(self):
        from repro.switch.rewrite import rewrite_field
        from repro.packet import MACAddress

        m = fresh(self._prop())
        p = ethernet(1, 2)
        m.observe(arr(p, 0.0))
        m.observe(egr(rewrite_field(p, "eth.dst", MACAddress(9)), 0.001))
        assert len(m.violations) == 1

    def test_different_packet_does_not_match(self):
        m = fresh(self._prop())
        m.observe(arr(ethernet(1, 2), 0.0))
        m.observe(egr(ethernet(1, 2), 0.001))  # fresh uid
        assert m.violations == []

    def test_flood_copy_shares_identity(self):
        m = fresh(self._prop())
        p = ethernet(1, 2)
        m.observe(arr(p, 0.0))
        m.observe(egr(p.duplicate(), 0.001, action=EgressAction.FLOOD))
        assert len(m.violations) == 1


class TestNegativeMatch:
    def test_field_ne(self):
        m = fresh(two_stage(stage1_guards=(
            FieldEq("eth.src", Var("S")),
            FieldNe("eth.dst", Const(ethernet(1, 9).eth.dst)),
        )))
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(1, 9).refreshed(), 0.5))  # dst == 9: no match
        assert m.violations == []
        m.observe(arr(ethernet(1, 7), 1.0))  # dst != 9: violation
        assert len(m.violations) == 1

    def test_mismatch_any_fires_if_any_pair_differs(self):
        prop = PropertySpec(
            name="mm", description="",
            stages=(
                Observe("a", EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("X", "eth.src"), Bind("Y", "eth.dst")))),
                Observe("b", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(MismatchAny((("eth.src", Var("X")),
                                         ("eth.dst", Var("Y")))),))),
            ),
            key_vars=("X", "Y"),
        )
        m = fresh(prop)
        m.observe(arr(ethernet(1, 2), 0.0))
        m.observe(arr(ethernet(1, 2).refreshed(), 0.5))  # both equal: no
        assert m.violations == []
        m.observe(arr(ethernet(1, 3), 1.0))  # dst differs
        assert len(m.violations) == 1

    def test_mismatch_any_needs_all_fields_present(self):
        prop = PropertySpec(
            name="mm2", description="",
            stages=(
                Observe("a", EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("X", "ipv4.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(MismatchAny((("ipv4.src", Var("X")),)),))),
            ),
            key_vars=("X",),
        )
        m = fresh(prop)
        m.observe(arr(tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 1, 2), 0.0))
        m.observe(arr(ethernet(3, 4), 0.5))  # no ipv4.src at all
        assert m.violations == []


class TestTimeoutActions:
    def _prop(self, refresh="never", T=5.0):
        return PropertySpec(
            name="neg", description="",
            stages=(
                Observe("request", EventPattern(
                    kind=EventKind.ARRIVAL, binds=(Bind("S", "eth.src"),))),
                Absent("no_reply", EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldEq("eth.dst", Var("S")),)),
                    within=T, refresh=refresh),
            ),
            key_vars=("S",),
        )

    def test_timer_fires_violation(self):
        m = fresh(self._prop())
        m.observe(arr(ethernet(1, 2), 0.0))
        m.advance_to(5.0)
        assert len(m.violations) == 1
        assert m.violations[0].time == 5.0
        assert m.violations[0].trigger is None  # no packet fired it
        assert m.stats.timer_advances == 1

    def test_reply_discharges(self):
        m = fresh(self._prop())
        m.observe(arr(ethernet(1, 2), 0.0))
        m.observe(egr(ethernet(9, 1), 3.0))
        m.advance_to(10.0)
        assert m.violations == []
        assert m.stats.instances_discharged == 1

    def test_request_storm_detected_with_never_refresh(self):
        # Re-requests every T-1 must NOT reset the clock (the paper's
        # Feature 7 subtlety).
        m = fresh(self._prop(refresh="never", T=5.0))
        for k in range(4):
            m.observe(arr(ethernet(1, 2).refreshed(), k * 4.0))
        m.advance_to(20.0)
        assert len(m.violations) >= 1
        assert m.violations[0].time == 5.0  # original deadline held

    def test_request_storm_missed_with_on_prior_refresh(self):
        # The unsound policy: each re-request resets the timer, so a storm
        # every T-1 seconds never trips the deadline while it lasts.
        m = fresh(self._prop(refresh="on_prior", T=5.0))
        for k in range(4):
            m.observe(arr(ethernet(1, 2).refreshed(), k * 4.0))
        m.advance_to(16.9)
        assert m.violations == []
        m.advance_to(17.1)  # last request at 12.0 + 5.0
        assert len(m.violations) == 1

    def test_live_scheduler_fires_timeout_actions(self):
        from repro.netsim.scheduler import EventScheduler

        sched = EventScheduler()
        m = Monitor(scheduler=sched)
        m.add_property(self._prop())
        m.observe(arr(ethernet(1, 2), 0.0))
        sched.run()
        assert len(m.violations) == 1


class TestMultipleMatch:
    def _prop(self):
        return PropertySpec(
            name="oob", description="",
            stages=(
                Observe("learn", EventPattern(
                    kind=EventKind.ARRIVAL, binds=(Bind("D", "eth.src"),))),
                Observe("down", EventPattern(kind=EventKind.OOB,
                                             oob_kind=OobKind.PORT_DOWN)),
                Observe("stale", EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldEq("eth.dst", Var("D")),))),
            ),
            key_vars=("D",),
        )

    def test_one_oob_event_advances_all_instances(self):
        m = fresh(self._prop())
        for i in range(1, 6):
            m.observe(arr(ethernet(i, 9), i * 0.1))
        m.observe(OutOfBandEvent(switch_id="s", time=1.0,
                                 oob_kind=OobKind.PORT_DOWN, port=2))
        for inst in m.store("oob").all():
            assert inst.stage == 2

    def test_violations_per_stale_destination(self):
        m = fresh(self._prop())
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(2, 9), 0.1))
        m.observe(OutOfBandEvent(switch_id="s", time=1.0,
                                 oob_kind=OobKind.PORT_DOWN, port=2))
        m.observe(egr(ethernet(9, 1), 2.0))
        m.observe(egr(ethernet(9, 2), 2.1))
        assert len(m.violations) == 2

    def test_oob_kind_filter(self):
        m = fresh(self._prop())
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(OutOfBandEvent(switch_id="s", time=1.0,
                                 oob_kind=OobKind.PORT_UP, port=2))
        assert next(iter(m.store("oob").all())).stage == 1  # unchanged


class TestProvenance:
    def test_full_records_events(self):
        m = Monitor(provenance=ProvenanceLevel.FULL)
        m.add_property(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 1.0))
        v = m.violations[0]
        assert len(v.history) == 2
        assert v.history[0].event is not None
        assert v.trigger is not None

    def test_limited_records_summaries(self):
        m = Monitor(provenance=ProvenanceLevel.LIMITED)
        m.add_property(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 1.0))
        v = m.violations[0]
        assert len(v.history) == 2
        assert v.history[0].event is None
        assert v.history[0].summary

    def test_none_records_nothing(self):
        m = Monitor(provenance=ProvenanceLevel.NONE)
        m.add_property(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 1.0))
        v = m.violations[0]
        assert v.history == ()
        assert v.trigger is None

    def test_bindings_always_available(self):
        # The paper's "limited provenance for free": match state rides along.
        m = Monitor(provenance=ProvenanceLevel.NONE)
        m.add_property(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 1.0))
        assert "S" in m.violations[0].bindings

    def test_internal_uid_vars_hidden(self):
        m = fresh(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 1.0))
        assert not any(k.startswith("__") for k in m.violations[0].bindings)

    def test_describe_renders(self):
        m = fresh(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 1.0))
        text = m.violations[0].describe()
        assert "VIOLATION p" in text


class TestSideEffectControl:
    def test_split_mode_defers_state(self):
        m = Monitor(mode=ProcessingMode.SPLIT, split_lag=0.01)
        m.add_property(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        # The response races the state update: at t=0.005 the instance
        # does not exist yet, so the violation is MISSED.
        m.observe(arr(ethernet(7, 1), 0.005))
        m.advance_to(1.0)
        assert m.violations == []

    def test_split_mode_catches_slow_responses(self):
        m = Monitor(mode=ProcessingMode.SPLIT, split_lag=0.01)
        m.add_property(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 0.5))  # update applied by now
        m.advance_to(1.0)
        assert len(m.violations) == 1

    def test_inline_mode_catches_fast_responses(self):
        m = Monitor(mode=ProcessingMode.INLINE)
        m.add_property(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        m.observe(arr(ethernet(7, 1), 0.000001))
        assert len(m.violations) == 1

    def test_meter_charged_per_op(self):
        from repro.switch.registers import StateCostMeter

        meter = StateCostMeter()
        m = Monitor(meter=meter, slow_path_updates=True)
        m.add_property(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        assert meter.slow_updates == 1

    def test_fast_path_meter(self):
        from repro.switch.registers import StateCostMeter

        meter = StateCostMeter()
        m = Monitor(meter=meter, slow_path_updates=False)
        m.add_property(two_stage())
        m.observe(arr(ethernet(1, 9), 0.0))
        assert meter.fast_updates == 1


class TestParseDepthLimit:
    def test_l7_invisible_to_l4_monitor(self):
        from repro.packet import dhcp_packet, DhcpMessageType

        prop = PropertySpec(
            name="l7", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("ip", "dhcp.yiaddr"),))),
                Observe("b", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("dhcp.yiaddr", Var("ip")),))),
            ),
            key_vars=("ip",),
        )
        deep = Monitor(max_layer=7)
        deep.add_property(prop)
        shallow = Monitor(max_layer=4)
        shallow.add_property(prop)
        events = [
            arr(dhcp_packet(5, DhcpMessageType.ACK, yiaddr="10.0.0.9"), 0.0),
            arr(dhcp_packet(6, DhcpMessageType.ACK, yiaddr="10.0.0.9"), 1.0),
        ]
        for e in events:
            deep.observe(e)
            shallow.observe(e)
        assert len(deep.violations) == 1
        assert shallow.violations == []  # fields never bound
