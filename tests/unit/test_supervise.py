"""Unit tests for the fabric supervisor: detection, recovery, quarantine.

The supervisor only ever talks to workers through the ``MpShard``
method surface, so these tests drive it with an in-memory fake — no
fork, no pipes — and a hand-cranked wall clock.  The checkpoint
round-trip tests use the real :class:`Monitor` export/restore path,
including timer re-arming, since crash-replay equivalence depends on
it being exact.
"""

import pickle
from types import SimpleNamespace

import pytest

from repro.core.monitor import Monitor, MonitorState
from repro.core.degradation import OverflowLedger
from repro.core.refs import Bind, EventKind, EventPattern, FieldEq, Var
from repro.core.spec import Absent, Observe, PropertySpec
from repro.fabric import Supervisor, SupervisorPolicy
from repro.fabric.mp import ShardDied
from repro.fabric.shard import ShardSnapshot
from repro.fabric.supervise import (
    KIND_GAP,
    KIND_LOST_OP,
    KIND_QUARANTINE,
    KIND_SHARD_LOST,
)
from repro.packet import tcp_packet
from repro.switch.events import PacketArrival


# -- fakes ------------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def sleep(self, delay):
        self.t += delay


class FakeWorker:
    """Duck-typed MpShard: scriptable deaths, full interaction log."""

    def __init__(self, idx, die_on=None):
        self.idx = idx
        self.pid = 1000 + idx
        self.alive = True
        self.received = []   # batches delivered via send_batch
        self.restored = None
        self._acks = []
        #: predicate(batch) -> bool; True kills this worker on delivery
        self.die_on = die_on

    def _check(self):
        if not self.alive:
            raise ShardDied(f"shard {self.idx}: worker dead")

    def is_alive(self):
        return self.alive

    def send_batch(self, events):
        self._check()
        if self.die_on is not None and self.die_on(events):
            self.alive = False
            raise ShardDied(f"shard {self.idx}: poisoned")
        self.received.append(list(events))

    def advance_to(self, when):
        self._check()

    def drain(self):
        self._check()

    def ping(self, seq):
        self._check()
        self._acks.append(seq)

    def recv_ack(self, timeout):
        self._check()
        return self._acks.pop(0) if self._acks else None

    def restore(self, state):
        self._check()
        self.restored = state

    def request_snapshot(self, checkpoint=False):
        self._check()
        self._want_state = checkpoint

    def recv_snapshot(self, timeout):
        self._check()
        return ShardSnapshot(
            shard=self.idx, now=0.0, live_instances=0, pending_ops=0,
            counters={}, peaks={},
            state=MonitorState(now=0.0, instances=(), lost_pending_ops=0)
            if self._want_state else None)

    def quit(self, timeout):
        self.alive = False
        return ShardSnapshot(shard=self.idx, now=0.0, live_instances=0,
                             pending_ops=0, counters={}, peaks={})

    def kill(self, sig=None):
        self.alive = False


def batch(*times):
    return [SimpleNamespace(time=t) for t in times]


def make_supervisor(policy=None, die_on=None, num_shards=1):
    """(supervisor, ledger, spawned-workers list, clock)."""
    clock = FakeClock()
    ledger = OverflowLedger()
    spawned = []

    def spawn(idx):
        worker = FakeWorker(idx, die_on=die_on)
        spawned.append(worker)
        return worker

    sup = Supervisor(spawn, num_shards, ledger, policy=policy,
                     clock=clock, sleep=clock.sleep)
    return sup, ledger, spawned, clock


# -- policy validation ------------------------------------------------------

class TestPolicyValidation:
    def test_defaults_valid(self):
        SupervisorPolicy()

    @pytest.mark.parametrize("field,value", [
        ("restart_budget", -1),
        ("checkpoint_interval", 0),
        ("journal_batches", 0),
        ("poison_threshold", 0),
        ("heartbeat_interval", -0.1),
        ("heartbeat_timeout", -1.0),
        ("backoff_base", -0.5),
        ("quiesce_timeout", -1.0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            SupervisorPolicy(**{field: value})


# -- journal ----------------------------------------------------------------

class TestJournal:
    def test_truncation_drops_oldest_and_ledgers_gap(self):
        policy = SupervisorPolicy(journal_batches=2, backoff_base=1.0,
                                  backoff_max=1.0, restart_budget=5)
        sup, ledger, spawned, clock = make_supervisor(policy)
        spawned[0].alive = False  # crash before any delivery
        batches = [batch(1.0, 2.0), batch(3.0), batch(4.0, 5.0, 6.0),
                   batch(7.0)]
        for b in batches:
            sup.send_batch(0, b)  # first send detects the death; rest queue
        st = sup.states[0]
        # bounded at 2 batches: the two oldest aged out (3 events)
        assert len(st.journal) == 2
        assert st.journal_events == 4
        assert st.journal_dropped == 3
        # clock still inside the backoff window: no restart yet
        assert sup.recovering() == [0]
        assert len(spawned) == 1
        # past the backoff the next send restarts; its own journal
        # append ages out one more batch (3 events) first
        clock.t = 10.0
        sup.send_batch(0, batch(8.0))
        assert len(spawned) == 2
        replacement = spawned[1]
        assert [
            [e.time for e in b] for b in replacement.received
        ] == [[7.0], [8.0]]
        # every aged-out event is an unrecoverable, ledgered gap
        assert ledger.summary()["by_kind"][KIND_GAP] == 6

    def test_only_fresh_drops_ledgered_per_restart(self):
        policy = SupervisorPolicy(journal_batches=1, backoff_base=0.0,
                                  backoff_max=0.0)
        sup, ledger, spawned, clock = make_supervisor(policy)
        spawned[0].alive = False
        sup.send_batch(0, batch(1.0))
        sup.send_batch(0, batch(2.0))   # restart #1 replays; b1 is a gap
        assert ledger.summary()["by_kind"][KIND_GAP] == 1
        spawned[-1].alive = False
        sup.send_batch(0, batch(3.0))   # journals b3, ages out b2
        sup.send_batch(0, batch(4.0))   # ages out b3, restart #2 replays b4
        # drops 2 and 3 are new ink; drop 1 is never re-ledgered
        assert ledger.summary()["by_kind"][KIND_GAP] == 3


# -- backoff and budget -----------------------------------------------------

class TestBackoffAndBudget:
    def test_backoff_doubles_while_recovery_keeps_failing(self):
        # a poison batch makes every replay die, so each restart attempt
        # is a consecutive failure: backoff doubles, then caps
        policy = SupervisorPolicy(backoff_base=0.1, backoff_max=0.3,
                                  restart_budget=10, poison_threshold=99)
        sup, ledger, spawned, clock = make_supervisor(
            policy, die_on=lambda events: True)
        sup.send_batch(0, batch(1.0))   # delivery kills worker #1
        delays = []
        for _ in range(4):
            delays.append(sup.states[0].next_restart_at - clock.t)
            clock.t = sup.states[0].next_restart_at
            sup.tick()                   # restart attempt; replay dies
        assert delays == [pytest.approx(0.1), pytest.approx(0.2),
                          pytest.approx(0.3), pytest.approx(0.3)]

    def test_successful_recovery_resets_backoff(self):
        policy = SupervisorPolicy(backoff_base=0.1, backoff_max=10.0,
                                  restart_budget=10)
        sup, ledger, spawned, clock = make_supervisor(policy)
        sup.states[0].worker.alive = False
        sup.heartbeat()
        clock.t = 100.0
        sup.tick()
        assert sup.states[0].consecutive_failures == 0
        sup.states[0].worker.alive = False
        sup.heartbeat()
        # back to the base backoff, not 2x
        assert sup.states[0].next_restart_at - clock.t \
            == pytest.approx(0.1)

    def test_budget_exhaustion_fails_shard_and_ledgers(self):
        policy = SupervisorPolicy(restart_budget=1, backoff_base=0.0,
                                  backoff_max=0.0)
        sup, ledger, spawned, clock = make_supervisor(policy)
        spawned[0].alive = False
        sup.send_batch(0, batch(1.0))       # death detected, journaled
        sup.send_batch(0, batch(2.0))       # restart #1 (budget now spent)
        spawned[-1].alive = False
        sup.send_batch(0, batch(3.0))       # death again
        sup.send_batch(0, batch(4.0))       # budget exhausted -> failed
        assert sup.failed() == [0]
        rows = sup.liveness()
        assert rows[0]["failed"] and "budget" in rows[0]["down_reason"]
        by_kind = ledger.summary()["by_kind"]
        assert by_kind[KIND_SHARD_LOST] >= 2  # journal + later sends
        before = by_kind[KIND_SHARD_LOST]
        sup.send_batch(0, batch(5.0, 6.0))  # every further event ledgered
        assert ledger.summary()["by_kind"][KIND_SHARD_LOST] == before + 2


# -- poison quarantine ------------------------------------------------------

class TestQuarantine:
    def test_replay_killer_batch_is_quarantined(self):
        policy = SupervisorPolicy(poison_threshold=2, backoff_base=0.0,
                                  backoff_max=0.0, restart_budget=10)
        poison = batch(666.0)

        def die_on(events):
            return bool(events) and events[0].time == 666.0

        sup, ledger, spawned, clock = make_supervisor(policy, die_on=die_on)
        sup.send_batch(0, batch(1.0))
        sup.send_batch(0, poison)          # kills worker #1 on delivery
        # journal holds both batches; replay hits the poison again
        sup.send_batch(0, batch(2.0))      # restart -> replay dies (kill 1)
        sup.send_batch(0, batch(3.0))      # restart -> replay dies (kill 2)
        assert sup.states[0].quarantined == 1
        assert len(sup.quarantine_log) == 1
        record = sup.quarantine_log[0]
        assert record.shard == 0 and record.events == 1
        assert record.kills == 2
        assert ledger.summary()["by_kind"][KIND_QUARANTINE] == 1
        # with the poison gone the next restart replays clean
        sup.send_batch(0, batch(4.0))
        assert sup.states[0].worker is not None
        replayed = [[e.time for e in b]
                    for b in spawned[-1].received]
        assert [666.0] not in replayed
        assert sup.liveness()[0]["quarantined_batches"] == 1


# -- duplicate suppression --------------------------------------------------

class TestDuplicateSuppression:
    def test_deliver_trims_rereported_violations(self):
        sup, ledger, spawned, clock = make_supervisor()
        merged = []
        sup._merge_cb = merged.append
        st = sup.states[0]
        st.discard_violations = 2
        snap = ShardSnapshot(shard=0, now=0.0, live_instances=0,
                             pending_ops=0, counters={}, peaks={},
                             violations=["v1", "v2", "v3"])
        sup._deliver(0, snap)
        assert merged[0].violations == ["v3"]
        assert st.discard_violations == 0
        assert st.merged_violations == 1
        # a second snapshot passes through untrimmed
        snap2 = ShardSnapshot(shard=0, now=0.0, live_instances=0,
                              pending_ops=0, counters={}, peaks={},
                              violations=["v4"])
        sup._deliver(0, snap2)
        assert merged[1].violations == ["v4"]


# -- heartbeat --------------------------------------------------------------

class TestHeartbeat:
    def test_missing_ack_is_a_death(self):
        sup, ledger, spawned, clock = make_supervisor(
            SupervisorPolicy(heartbeat_timeout=0.5))
        worker = sup.states[0].worker

        worker.ping = lambda seq: None  # swallow: ack queue stays empty
        sup.heartbeat()
        assert sup.recovering() == [0]
        assert "no heartbeat ack" in sup.states[0].down_reason

    def test_tick_rate_limits_heartbeats(self):
        sup, ledger, spawned, clock = make_supervisor(
            SupervisorPolicy(heartbeat_interval=1.0))
        worker = sup.states[0].worker
        pings = []
        worker.ping = lambda seq: (pings.append(seq),
                                   worker._acks.append(seq))
        clock.t = 0.5
        sup.tick()                       # inside the interval: no ping
        assert pings == []
        clock.t = 1.5
        sup.tick()
        assert len(pings) == 1

    def test_lost_pending_ops_ledgered_on_restore(self):
        policy = SupervisorPolicy(backoff_base=0.0, backoff_max=0.0)
        sup, ledger, spawned, clock = make_supervisor(policy)
        st = sup.states[0]
        st.checkpoint = MonitorState(now=0.0, instances=(),
                                     lost_pending_ops=3)
        st.worker.alive = False
        sup.heartbeat()
        sup.tick()                       # restart restores the checkpoint
        assert spawned[-1].restored is st.checkpoint
        assert ledger.summary()["by_kind"][KIND_LOST_OP] == 3
        # a second crash does not double-ledger the same checkpoint
        sup.states[0].worker.alive = False
        sup.heartbeat()
        sup.tick()
        assert ledger.summary()["by_kind"][KIND_LOST_OP] == 3


# -- checkpoint round-trip (real Monitor) -----------------------------------

def timed_prop(within=5.0):
    """No reply from S within the window -> timer-fired violation."""
    return PropertySpec(
        name="answered-in-time",
        description="a reply must arrive within the window",
        stages=(
            Observe("asked", EventPattern(
                kind=EventKind.ARRIVAL, binds=(Bind("S", "eth.src"),))),
            Absent("answered", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("eth.src", Var("S")),)),
                within=within),
        ),
        key_vars=("S",),
    )


def arrival(src_mac, t):
    return PacketArrival(
        switch_id="s", time=t,
        packet=tcp_packet(src_mac, "00:00:00:00:00:99",
                          "10.0.0.1", "198.51.100.9", 1111, 99),
        in_port=1)


class TestCheckpointRoundTrip:
    def _events(self):
        return [arrival("00:00:00:00:00:01", 1.0),
                arrival("00:00:00:00:00:02", 2.0)]

    def test_export_is_deterministic_and_picklable(self):
        events = self._events()  # shared: packet uids are process-global
        monitors = []
        for _ in range(2):
            m = Monitor()
            m.add_property(timed_prop())
            for ev in events:
                m.observe(ev)
            monitors.append(m)
        a, b = (m.export_state() for m in monitors)
        assert pickle.loads(pickle.dumps(a)) == a
        assert a == b

    def test_restore_rearms_timers_identically(self):
        baseline = Monitor()
        baseline.add_property(timed_prop(within=5.0))
        for ev in self._events():
            baseline.observe(ev)
        state = pickle.loads(pickle.dumps(baseline.export_state()))

        restored = Monitor()
        restored.add_property(timed_prop(within=5.0))
        restored.restore_state(state)
        assert restored.live_instances() == baseline.live_instances()

        # advance both past the deadlines: identical violations fire
        baseline.advance_to(20.0)
        restored.advance_to(20.0)
        assert len(restored.violations) == len(baseline.violations) == 2
        assert ([v.time for v in restored.violations]
                == [v.time for v in baseline.violations])

    def test_restore_does_not_recount_creations(self):
        source = Monitor()
        source.add_property(timed_prop())
        for ev in self._events():
            source.observe(ev)
        created = source.stats.instances_created
        restored = Monitor()
        restored.add_property(timed_prop())
        restored.restore_state(source.export_state())
        assert restored.stats.instances_created == 0
        assert restored.live_instances() == 2
        assert created == 2

    def test_restore_unknown_property_rejected(self):
        source = Monitor()
        source.add_property(timed_prop())
        source.observe(arrival("00:00:00:00:00:01", 1.0))
        state = source.export_state()
        empty = Monitor()
        with pytest.raises(ValueError):
            empty.restore_state(state)
