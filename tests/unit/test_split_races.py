"""Regression tests: the two split-mode races the engine tolerates.

Both races arise because split-mode ops are evaluated against *current*
state but applied a lag later (``monitor.py`` guards each with an early
return):

* **created twice before first applied** — two stage-0 matches for the
  same key inside one lag window both evaluate to creations; the second
  application must be a no-op, not a duplicate instance;
* **advanced after expiry** — an advance op can apply after the
  instance's deadline lazily expired it; the advance must not resurrect
  the instance or raise a violation.
"""

from repro.core import (
    Bind,
    Const,
    EventKind,
    EventPattern,
    FieldEq,
    Monitor,
    Observe,
    PropertySpec,
    Var,
)
from repro.packet import MACAddress, ethernet
from repro.switch.events import PacketArrival
from repro.switch.switch import ProcessingMode


def arr(packet, t, port=1):
    return PacketArrival(switch_id="s", time=t, packet=packet, in_port=port)


def two_stage(within=None):
    """frame from S to the server (100), then frame back to S.

    Stage 0 is guarded on the destination so the answering frame does
    not itself create a second instance.
    """
    return PropertySpec(
        name="p",
        description="race regression property",
        stages=(
            Observe("seen", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("eth.dst", Const(MACAddress(100))),),
                binds=(Bind("S", "eth.src"),))),
            Observe("answered",
                    EventPattern(kind=EventKind.ARRIVAL,
                                 guards=(FieldEq("eth.dst", Var("S")),)),
                    within=within),
        ),
        key_vars=("S",),
    )


class TestCreatedTwiceBeforeFirstApplied:
    def test_second_create_is_noop(self):
        monitor = Monitor(mode=ProcessingMode.SPLIT, split_lag=0.5)
        monitor.add_property(two_stage())
        # Both arrivals evaluate against an empty store: two create ops
        # for the same key land in the pending queue.
        monitor.observe(arr(ethernet(1, 100), 0.01))
        monitor.observe(arr(ethernet(1, 100), 0.02))
        assert monitor.pending_op_count() == 2
        monitor.advance_to(2.0)
        assert monitor.stats.instances_created == 1
        assert monitor.live_instances() == 1
        assert monitor.pending_op_count() == 0

    def test_duplicate_create_then_advance_single_violation(self):
        monitor = Monitor(mode=ProcessingMode.SPLIT, split_lag=0.5)
        monitor.add_property(two_stage())
        monitor.observe(arr(ethernet(1, 100), 0.01))
        monitor.observe(arr(ethernet(1, 100), 0.02))
        monitor.advance_to(2.0)
        # The (single) instance advances and completes exactly once.
        monitor.observe(arr(ethernet(2, 1), 3.0))
        monitor.advance_to(5.0)
        assert monitor.stats.violations == 1
        assert monitor.stats.instances_created == 1
        assert monitor.live_instances() == 0


class TestAdvancedAfterExpiry:
    def test_late_advance_does_not_resurrect(self):
        monitor = Monitor(mode=ProcessingMode.SPLIT, split_lag=0.05)
        monitor.add_property(two_stage(within=0.1))
        # Create applies at 0.05; its deadline is 0.0 + 0.1 = 0.1.
        monitor.observe(arr(ethernet(1, 100), 0.0))
        # The answering frame is seen (and matched) at 0.08 — before the
        # deadline — but its advance op only applies at 0.13, after the
        # lazy expiry has removed the instance.
        monitor.observe(arr(ethernet(2, 1), 0.08))
        monitor.advance_to(1.0)
        assert monitor.stats.instances_expired == 1
        assert monitor.stats.violations == 0
        assert monitor.live_instances() == 0
        assert monitor.pending_op_count() == 0
        # Accounting stays balanced: the expired instance is the only one.
        assert monitor.stats.instances_created == 1
