"""Unit tests for the compiled hot path (repro.core.compile) and the
monitor/store machinery built on it: guard closures, dispatch plans,
per-stage store buckets with O(1) back-pointer removal, observe_batch,
and the incrementally maintained live counter."""

import pytest

from repro.core import (
    Absent,
    Bind,
    Const,
    EventKind,
    EventPattern,
    FieldEq,
    FieldNe,
    MismatchAny,
    Monitor,
    Observe,
    Predicate,
    PropertySpec,
    Var,
    compile_pattern,
    dispatch_plan,
    dispatch_summary,
    make_store,
    scan_watchers,
    uid_var,
)
from repro.core.compile import event_class_label
from repro.core.instances import Instance
from repro.packet import ethernet
from repro.switch.events import (
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
    TimerFired,
)
from repro.switch.switch import ProcessingMode
from repro.telemetry import MetricsRegistry


def arrival(src, dst, t=1.0, port=1):
    return PacketArrival(switch_id="s", time=t, packet=ethernet(src, dst),
                         in_port=port)


def egress(src, dst, t=2.0, packet=None):
    return PacketEgress(switch_id="s", time=t,
                        packet=packet or ethernet(src, dst), out_port=2,
                        in_port=1, action=EgressAction.UNICAST)


# ---------------------------------------------------------------------------
# Guard closures: exact parity with the interpreted dataclasses
# ---------------------------------------------------------------------------
class TestCompiledGuards:
    def parity(self, pattern, fields, env):
        compiled = compile_pattern(pattern)
        expected = all(g.holds(fields, env) for g in pattern.guards)
        assert compiled.guards_match(fields, env) is expected
        return expected

    def test_fieldeq_const_folded(self):
        pattern = EventPattern(kind=EventKind.ARRIVAL,
                               guards=(FieldEq("x", Const(5)),))
        assert self.parity(pattern, {"x": 5}, {}) is True
        assert self.parity(pattern, {"x": 6}, {}) is False
        # absent field: FieldEq can never hold
        assert self.parity(pattern, {}, {}) is False

    def test_fieldeq_var(self):
        pattern = EventPattern(kind=EventKind.ARRIVAL,
                               guards=(FieldEq("x", Var("V")),))
        assert self.parity(pattern, {"x": 7}, {"V": 7}) is True
        assert self.parity(pattern, {"x": 7}, {"V": 8}) is False
        assert self.parity(pattern, {}, {"V": 7}) is False

    def test_fieldne_absent_field_holds(self):
        pattern = EventPattern(kind=EventKind.ARRIVAL,
                               guards=(FieldNe("x", Const(5)),))
        assert self.parity(pattern, {"x": 6}, {}) is True
        assert self.parity(pattern, {"x": 5}, {}) is False
        # an absent field cannot equal the forbidden value
        assert self.parity(pattern, {}, {}) is True

    def test_fieldne_var(self):
        pattern = EventPattern(kind=EventKind.ARRIVAL,
                               guards=(FieldNe("x", Var("V")),))
        assert self.parity(pattern, {"x": 1}, {"V": 2}) is True
        assert self.parity(pattern, {"x": 2}, {"V": 2}) is False
        assert self.parity(pattern, {}, {"V": 2}) is True

    def test_mismatch_any_requires_all_fields(self):
        guard = MismatchAny((("a", Var("A")), ("p", Const(80))))
        pattern = EventPattern(kind=EventKind.ARRIVAL, guards=(guard,))
        env = {"A": 1}
        assert self.parity(pattern, {"a": 1, "p": 80}, env) is False
        assert self.parity(pattern, {"a": 2, "p": 80}, env) is True
        assert self.parity(pattern, {"a": 1, "p": 81}, env) is True
        # a packet lacking a compared field witnesses no mismatch
        assert self.parity(pattern, {"a": 2}, env) is False

    def test_predicate_passthrough(self):
        pattern = EventPattern(
            kind=EventKind.ARRIVAL,
            guards=(Predicate(lambda f, e: f["x"] > e["V"], "x > V",
                              fields_used=("x",)),))
        assert self.parity(pattern, {"x": 9}, {"V": 3}) is True
        assert self.parity(pattern, {"x": 1}, {"V": 3}) is False

    def test_many_guards_compose(self):
        # arity 4 exercises the loop fallback past the unrolled cases
        pattern = EventPattern(
            kind=EventKind.ARRIVAL,
            guards=(FieldEq("a", Const(1)), FieldEq("b", Const(2)),
                    FieldNe("c", Const(3)), FieldEq("d", Var("D"))))
        fields = {"a": 1, "b": 2, "c": 0, "d": 4}
        assert self.parity(pattern, fields, {"D": 4}) is True
        assert self.parity(pattern, dict(fields, b=9), {"D": 4}) is False


class TestCompiledPattern:
    def test_matches_checks_event_class(self):
        compiled = compile_pattern(EventPattern(kind=EventKind.EGRESS))
        ev = egress(1, 2)
        assert compiled.matches(ev, {}, {}) is True
        assert compiled.matches(arrival(1, 2), {}, {}) is False

    def test_oob_kind_refinement(self):
        compiled = compile_pattern(EventPattern(
            kind=EventKind.OOB, oob_kind=OobKind.PORT_DOWN))
        assert compiled.guards_match(
            {"oob.kind": OobKind.PORT_DOWN}, {}) is True
        assert compiled.guards_match(
            {"oob.kind": OobKind.PORT_UP}, {}) is False

    def test_match_instance_inlines_same_packet(self):
        prop = PropertySpec(
            name="p", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(kind=EventKind.EGRESS,
                                          same_packet_as="a")),
            ),
            key_vars=("S",),
        )
        compiled = compile_pattern(prop.stages[1].pattern)
        inst = Instance(prop, ("k",), {"S": "k", uid_var("a"): 42}, 0.0)
        assert compiled.match_instance({"uid": 42}, inst) is True
        assert compiled.match_instance({"uid": 43}, inst) is False
        # no uid bound at the linked stage: identity cannot hold
        bare = Instance(prop, ("k2",), {"S": "k2"}, 0.0)
        assert compiled.match_instance({"uid": 42}, bare) is False

    def test_capture_and_bindable(self):
        compiled = compile_pattern(EventPattern(
            kind=EventKind.ARRIVAL,
            binds=(Bind("S", "eth.src"), Bind("P", "in_port"))))
        assert compiled.bindable({"eth.src": "m", "in_port": 3}) is True
        assert compiled.bindable({"eth.src": "m"}) is False
        assert compiled.capture({"eth.src": "m", "in_port": 3}) == {
            "S": "m", "P": 3}
        with pytest.raises(KeyError):
            compiled.capture({"eth.src": "m"})
        # the bind-free fast path
        empty = compile_pattern(EventPattern(kind=EventKind.ARRIVAL))
        assert empty.capture({}) == {}
        assert empty.bindable({}) is True


# ---------------------------------------------------------------------------
# Dispatch planning
# ---------------------------------------------------------------------------
def rich_prop():
    """Arrival-create, OOB unless, Absent egress discharge."""
    return PropertySpec(
        name="rich", description="",
        stages=(
            Observe("req", EventPattern(kind=EventKind.ARRIVAL,
                                        binds=(Bind("S", "eth.src"),))),
            Absent("reply", EventPattern(
                kind=EventKind.EGRESS,
                guards=(FieldEq("eth.dst", Var("S")),)),
                within=2.0,
                unless=(EventPattern(kind=EventKind.OOB,
                                     oob_kind=OobKind.PORT_DOWN),)),
        ),
        key_vars=("S",),
    )


class TestDispatchPlan:
    def test_roles_land_on_the_right_classes(self):
        plan = dispatch_plan(rich_prop())
        assert {(w.stage_idx, w.role) for w in plan[PacketArrival]} == {
            (0, "create")}
        assert {(w.stage_idx, w.role) for w in plan[PacketEgress]} == {
            (1, "discharge")}
        assert {(w.stage_idx, w.role) for w in plan[OutOfBandEvent]} == {
            (1, "unless")}
        assert PacketDrop not in plan
        assert TimerFired not in plan  # timers are not dispatchable events

    def test_any_packet_registers_three_classes(self):
        prop = PropertySpec(
            name="any", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ANY_PACKET,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.dst", Var("S")),))),
            ),
            key_vars=("S",),
        )
        plan = dispatch_plan(prop)
        for cls in (PacketArrival, PacketEgress, PacketDrop):
            assert any(w.role == "create" for w in plan[cls])

    def test_unless_watchers_are_never_indexed(self):
        plan = dispatch_plan(rich_prop())
        (unless,) = plan[OutOfBandEvent]
        assert unless.indexed is False

    def test_summary_and_labels(self):
        assert dispatch_summary(rich_prop()) == {
            "arrival": 1, "egress": 1, "oob": 1}
        assert event_class_label(PacketArrival) == "arrival"
        assert event_class_label(TimerFired) == "TimerFired"

    def test_scan_watchers_flags_unindexable_stages(self):
        hot = PropertySpec(
            name="hot", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(kind=EventKind.ARRIVAL,
                                          guards=(FieldEq("in_port",
                                                          Const(1)),))),
            ),
            key_vars=("S",),
        )
        assert scan_watchers(hot) == [("arrival", "b", "advance")]
        # an indexable stage produces no scans (the uid link indexes ident)
        assert scan_watchers(rich_prop()) == []


class TestMonitorDispatch:
    def test_dispatch_sizes(self):
        monitor = Monitor()
        monitor.add_property(rich_prop())
        assert monitor.dispatch_sizes() == {
            "PacketArrival": 1, "PacketEgress": 1, "OutOfBandEvent": 1}

    def test_unwatched_event_class_is_skipped(self):
        monitor = Monitor()
        monitor.add_property(rich_prop())
        drop = PacketDrop(switch_id="s", time=1.0, packet=ethernet(1, 2),
                          in_port=1)
        monitor.observe(drop)
        assert monitor.stats.events == 1
        assert monitor.stats.candidates_examined == 0

    def test_unknown_match_strategy_rejected(self):
        with pytest.raises(ValueError):
            Monitor(match_strategy="jit")


# ---------------------------------------------------------------------------
# Store buckets and back-pointers
# ---------------------------------------------------------------------------
class TestStoreBackpointers:
    def make(self, strategy):
        prop = PropertySpec(
            name="p", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.src", Var("S")),))),
                Observe("c", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.dst", Var("S")),))),
            ),
            key_vars=("S",),
        )
        store = make_store(prop, strategy)
        inst = Instance(prop, ("m",), {"S": "m"}, 0.0)
        return store, inst

    @pytest.mark.parametrize("strategy", ["indexed", "linear"])
    def test_add_remove_maintains_buckets(self, strategy):
        store, inst = self.make(strategy)
        store.add(inst)
        assert inst.stage_bucket is not None
        assert list(store.at_stage(1)) == [inst]
        store.remove(inst)
        assert inst.stage_bucket is None
        assert inst.index_bucket is None
        assert list(store.at_stage(1)) == []
        assert store.live_count == 0

    @pytest.mark.parametrize("strategy", ["indexed", "linear"])
    def test_reindex_moves_between_stage_buckets(self, strategy):
        store, inst = self.make(strategy)
        store.add(inst)
        inst.stage = 2
        store.reindex(inst, old_stage=1)
        assert list(store.at_stage(1)) == []
        assert list(store.at_stage(2)) == [inst]
        assert list(store.candidates(2, {"eth.dst": "m"})) == [inst]

    def test_indexed_candidates_probe_not_scan(self):
        store, inst = self.make("indexed")
        store.add(inst)
        assert inst.index_bucket is not None
        assert list(store.candidates(1, {"eth.src": "m"})) == [inst]
        assert list(store.candidates(1, {"eth.src": "other"})) == []
        # a field-less event can never satisfy the indexed equality
        assert list(store.candidates(1, {})) == []


# ---------------------------------------------------------------------------
# observe_batch, advance_to gauge hygiene, live-counter consistency
# ---------------------------------------------------------------------------
def echo_prop():
    return PropertySpec(
        name="echo", description="",
        stages=(
            Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                      binds=(Bind("S", "eth.src"),))),
            Observe("b", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("eth.dst", Var("S")),)), within=5.0),
        ),
        key_vars=("S",),
    )


def sample_events():
    return [arrival(1, 2, t=1.0), arrival(2, 1, t=1.5),
            egress(1, 2, t=2.0), arrival(3, 4, t=2.5),
            arrival(4, 3, t=9.0)]  # after echo(3)'s deadline


def verdicts(monitor):
    return ([(v.property_name, v.time, sorted(map(str, v.bindings.values())))
             for v in monitor.violations],
            monitor.stats.events, monitor.stats.instances_created,
            monitor.stats.instances_expired)


class TestObserveBatch:
    def run_batch(self, **kwargs):
        monitor = Monitor(**kwargs)
        monitor.add_property(echo_prop())
        monitor.observe_batch(sample_events())
        return monitor

    def test_batch_equals_loop(self):
        looped = Monitor()
        looped.add_property(echo_prop())
        for event in sample_events():
            looped.observe(event)
        assert verdicts(self.run_batch()) == verdicts(looped)

    def test_batch_with_registry_falls_back_identically(self):
        assert (verdicts(self.run_batch(registry=MetricsRegistry()))
                == verdicts(self.run_batch()))

    def test_batch_in_split_mode(self):
        monitor = self.run_batch(mode=ProcessingMode.SPLIT, split_lag=0.01)
        monitor.advance_to(100.0)
        assert monitor.stats.events == len(sample_events())
        assert monitor._pending == []


class TestAdvanceToGauge:
    def test_pending_gauge_drains_through_set(self):
        """advance_to must go through Gauge.set (not poke .value), so the
        watermark records the pre-drain depth and the live value hits 0."""
        registry = MetricsRegistry()
        monitor = Monitor(mode=ProcessingMode.SPLIT, split_lag=5.0,
                          registry=registry)
        monitor.add_property(echo_prop())
        monitor.observe(arrival(1, 2, t=1.0))
        monitor.observe(arrival(5, 6, t=1.1))
        assert len(monitor._pending) == 2
        monitor.advance_to(50.0)
        assert monitor._pending == []
        gauge = registry.gauge("repro_monitor_pending_ops")
        assert gauge.value == 0.0
        assert monitor.stats.peak_pending_ops >= 2


class TestLiveTotal:
    @pytest.mark.parametrize("match_strategy", ["compiled", "interpreted"])
    def test_live_total_tracks_stores(self, match_strategy):
        monitor = Monitor(match_strategy=match_strategy)
        monitor.add_property(echo_prop())
        monitor.add_property(rich_prop())
        for event in sample_events():
            monitor.observe(event)
            assert monitor._live_total == monitor.live_instances()
        monitor.advance_to(1000.0)
        assert monitor._live_total == monitor.live_instances()
