"""Unit tests: corners not covered elsewhere — event taxonomy, feature
rendering, pattern edge cases, stats bookkeeping, DSL annotations."""

import pytest

from repro.core import (
    Bind,
    Const,
    EventKind,
    EventPattern,
    FieldEq,
    MatchKind,
    Monitor,
    Observe,
    Predicate,
    PropertySpec,
    Var,
    event_fields,
    kind_matches,
)
from repro.core.features import FeatureRequirements
from repro.lang import compile_one, parse_one
from repro.packet import ethernet, tcp_packet
from repro.switch.events import (
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
    TimerFired,
)


class TestEventTaxonomy:
    def test_events_require_packets(self):
        with pytest.raises(ValueError):
            PacketArrival(switch_id="s", time=0.0, packet=None, in_port=1)
        with pytest.raises(ValueError):
            PacketEgress(switch_id="s", time=0.0, packet=None, out_port=1)
        with pytest.raises(ValueError):
            PacketDrop(switch_id="s", time=0.0, packet=None, in_port=1)

    def test_event_seq_monotone(self):
        a = PacketArrival(switch_id="s", time=0.0, packet=ethernet(1, 2),
                          in_port=1)
        b = PacketArrival(switch_id="s", time=0.0, packet=ethernet(1, 2),
                          in_port=1)
        assert b.seq > a.seq

    def test_kind_attribute(self):
        event = OutOfBandEvent(switch_id="s", time=0.0,
                               oob_kind=OobKind.LINK_DOWN)
        assert event.kind == "OutOfBandEvent"

    def test_event_fields_arrival(self):
        p = tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 7, 8)
        fields = event_fields(PacketArrival(switch_id="s1", time=3.0,
                                            packet=p, in_port=4))
        assert fields["in_port"] == 4
        assert fields["uid"] == p.uid
        assert fields["time"] == 3.0
        assert fields["switch"] == "s1"
        assert "out_port" not in fields

    def test_event_fields_egress(self):
        p = ethernet(1, 2)
        fields = event_fields(PacketEgress(
            switch_id="s", time=0.0, packet=p, out_port=9, in_port=1,
            action=EgressAction.FLOOD))
        assert fields["out_port"] == 9
        assert fields["egress.action"] is EgressAction.FLOOD

    def test_event_fields_drop(self):
        fields = event_fields(PacketDrop(
            switch_id="s", time=0.0, packet=ethernet(1, 2), in_port=1,
            reason="acl"))
        assert fields["drop.reason"] == "acl"

    def test_event_fields_oob_and_timer(self):
        fields = event_fields(OutOfBandEvent(
            switch_id="s", time=0.0, oob_kind=OobKind.PORT_DOWN, port=2))
        assert fields["oob.kind"] is OobKind.PORT_DOWN
        assert fields["oob.port"] == 2
        fields = event_fields(TimerFired(switch_id="s", time=0.0,
                                         timer_id="x"))
        assert fields["timer.id"] == "x"

    def test_event_fields_respects_parse_depth(self):
        from repro.packet import dhcp_packet, DhcpMessageType

        event = PacketArrival(
            switch_id="s", time=0.0,
            packet=dhcp_packet(5, DhcpMessageType.REQUEST), in_port=1)
        assert "dhcp.msg_type" in event_fields(event, max_layer=7)
        assert "dhcp.msg_type" not in event_fields(event, max_layer=4)

    def test_kind_matches(self):
        arrival = PacketArrival(switch_id="s", time=0.0,
                                packet=ethernet(1, 2), in_port=1)
        assert kind_matches(EventKind.ARRIVAL, arrival)
        assert kind_matches(EventKind.ANY_PACKET, arrival)
        assert not kind_matches(EventKind.EGRESS, arrival)
        assert not kind_matches(EventKind.OOB, arrival)


class TestPatternEdgeCases:
    def test_any_packet_kind_matches_all_packet_events(self):
        prop = PropertySpec(
            name="any", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.ANY_PACKET,
                    guards=(FieldEq("eth.dst", Var("S")),))),
            ),
            key_vars=("S",),
        )
        monitor = Monitor()
        monitor.add_property(prop)
        monitor.observe(PacketArrival(switch_id="s", time=0.0,
                                      packet=ethernet(1, 2), in_port=1))
        # A DROP event also satisfies ANY_PACKET.
        monitor.observe(PacketDrop(switch_id="s", time=1.0,
                                   packet=ethernet(9, 1), in_port=2))
        assert len(monitor.violations) == 1

    def test_not_egress_action_filter(self):
        prop = PropertySpec(
            name="nf", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldEq("eth.dst", Var("S")),),
                    not_egress_action=EgressAction.FLOOD)),
            ),
            key_vars=("S",),
        )
        monitor = Monitor()
        monitor.add_property(prop)
        monitor.observe(PacketArrival(switch_id="s", time=0.0,
                                      packet=ethernet(1, 2), in_port=1))
        flood = PacketEgress(switch_id="s", time=1.0, packet=ethernet(9, 1),
                             out_port=2, in_port=3, action=EgressAction.FLOOD)
        monitor.observe(flood)
        assert monitor.violations == []  # flood excluded
        unicast = PacketEgress(switch_id="s", time=2.0, packet=ethernet(9, 1),
                               out_port=2, in_port=3,
                               action=EgressAction.UNICAST)
        monitor.observe(unicast)
        assert len(monitor.violations) == 1

    def test_capture_missing_field_raises(self):
        pattern = EventPattern(kind=EventKind.ARRIVAL,
                               binds=(Bind("x", "tcp.src"),))
        with pytest.raises(KeyError):
            pattern.capture({"eth.src": 1})

    def test_bindable_check(self):
        pattern = EventPattern(kind=EventKind.ARRIVAL,
                               binds=(Bind("x", "tcp.src"),))
        assert pattern.bindable({"tcp.src": 5})
        assert not pattern.bindable({"eth.src": 5})

    def test_unbindable_match_does_not_create_instance(self):
        # Stage 0 binds tcp.src; an L2 frame matches no guard but cannot
        # bind, so no instance appears.
        prop = PropertySpec(
            name="l4only", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("P", "tcp.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("tcp.dst", Var("P")),))),
            ),
            key_vars=("P",),
        )
        monitor = Monitor()
        monitor.add_property(prop)
        monitor.observe(PacketArrival(switch_id="s", time=0.0,
                                      packet=ethernet(1, 2), in_port=1))
        assert monitor.live_instances() == 0

    def test_resolve_unbound_var_raises(self):
        from repro.core.refs import resolve

        with pytest.raises(KeyError):
            resolve(Var("ghost"), {})
        assert resolve(Const(5), {}) == 5

    def test_predicate_guard_in_unless(self):
        flagged = Predicate(lambda f, e: f.get("eth.type") == 0x9999,
                            "magic frame", fields_used=("eth.type",))
        prop = PropertySpec(
            name="pu", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.dst", Var("S")),)),
                    unless=(EventPattern(kind=EventKind.ARRIVAL,
                                         guards=(flagged,)),)),
            ),
            key_vars=("S",),
        )
        monitor = Monitor()
        monitor.add_property(prop)
        monitor.observe(PacketArrival(switch_id="s", time=0.0,
                                      packet=ethernet(1, 2), in_port=1))
        monitor.observe(PacketArrival(
            switch_id="s", time=1.0,
            packet=ethernet(5, 6, ethertype=0x9999), in_port=1))
        monitor.observe(PacketArrival(switch_id="s", time=2.0,
                                      packet=ethernet(9, 1), in_port=1))
        assert monitor.violations == []


class TestFeatureRendering:
    def test_table1_row_rendering(self):
        req = FeatureRequirements(
            max_layer=4, history=True, timeouts=False, obligation=True,
            identity=False, negative_match=True, timeout_actions=False,
            match_kind=MatchKind.SYMMETRIC, multiple_match=False,
            out_of_band=False, drop_visibility=False,
        )
        assert req.table1_row() == ("L4", "•", "", "•", "", "•", "",
                                    "symmetric")
        assert req.fields_label() == "L4"


class TestMonitorBookkeeping:
    def test_peak_live_instances_tracked(self):
        prop = PropertySpec(
            name="p", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.dst", Var("S")),))),
            ),
            key_vars=("S",),
        )
        monitor = Monitor()
        monitor.add_property(prop)
        for i in range(5):
            monitor.observe(PacketArrival(switch_id="s", time=i * 0.1,
                                          packet=ethernet(i + 1, 99),
                                          in_port=1))
        assert monitor.stats.peak_live_instances == 5

    def test_violation_sink_called(self):
        prop = PropertySpec(
            name="p", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("S", "eth.src"),))),
                Observe("b", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.dst", Var("S")),))),
            ),
            key_vars=("S",),
        )
        monitor = Monitor()
        monitor.add_property(prop)
        seen = []
        monitor.on_violation(seen.append)
        monitor.observe(PacketArrival(switch_id="s", time=0.0,
                                      packet=ethernet(1, 2), in_port=1))
        monitor.observe(PacketArrival(switch_id="s", time=1.0,
                                      packet=ethernet(9, 1), in_port=1))
        assert len(seen) == 1


class TestDslAnnotations:
    def test_obligation_annotation_parses_and_applies(self):
        prop = compile_one("""
property a
annotate obligation true
observe x : arrival bind S = eth.src
observe y : arrival where eth.dst == $S
""")
        assert prop.obligation_override is True
        from repro.core import analyze

        assert analyze(prop).obligation

    def test_instance_annotation(self):
        prop = compile_one("""
property a
annotate instance wandering
observe x : arrival bind S = eth.src
observe y : arrival where eth.dst == $S
""")
        from repro.core import classify_match_kind

        assert classify_match_kind(prop) is MatchKind.WANDERING

    def test_bad_annotation_rejected(self):
        from repro.lang import ParseError

        with pytest.raises(ParseError):
            parse_one("""
property a
annotate colour blue
observe x : arrival bind S = eth.src
""")

    def test_bad_obligation_value_rejected(self):
        from repro.lang import ParseError

        with pytest.raises(ParseError):
            parse_one("""
property a
annotate obligation maybe
observe x : arrival bind S = eth.src
""")


class TestRefreshPolicy:
    def _prop(self, refresh_on_repeat):
        return PropertySpec(
            name="rp", description="",
            stages=(
                Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                          binds=(Bind("S", "eth.src"),
                                                 Bind("D", "eth.dst"))),
                        refresh_on_repeat=refresh_on_repeat),
                Observe("b", EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.dst", Var("S")),)), within=5.0),
            ),
            key_vars=("S",),
        )

    def test_no_refresh_keeps_original_window(self):
        monitor = Monitor()
        monitor.add_property(self._prop(refresh_on_repeat=False))
        monitor.observe(PacketArrival(switch_id="s", time=0.0,
                                      packet=ethernet(1, 9), in_port=1))
        monitor.observe(PacketArrival(switch_id="s", time=4.0,
                                      packet=ethernet(1, 8), in_port=1))
        # Without refresh, the window still ends at t=5.
        monitor.observe(PacketArrival(switch_id="s", time=6.0,
                                      packet=ethernet(7, 1), in_port=1))
        assert monitor.violations == []
        assert monitor.stats.refreshes == 0

    def test_refresh_extends_window_and_rebinds(self):
        monitor = Monitor()
        monitor.add_property(self._prop(refresh_on_repeat=True))
        monitor.observe(PacketArrival(switch_id="s", time=0.0,
                                      packet=ethernet(1, 9), in_port=1))
        monitor.observe(PacketArrival(switch_id="s", time=4.0,
                                      packet=ethernet(1, 8), in_port=1))
        monitor.observe(PacketArrival(switch_id="s", time=6.0,
                                      packet=ethernet(7, 1), in_port=1))
        assert len(monitor.violations) == 1
        # The refresh re-bound D to the newest frame's destination.
        from repro.packet import MACAddress

        assert monitor.violations[0].bindings["D"] == MACAddress(8)

    def test_flush_is_advance_to(self):
        monitor = Monitor()
        monitor.add_property(self._prop(refresh_on_repeat=True))
        monitor.observe(PacketArrival(switch_id="s", time=0.0,
                                      packet=ethernet(1, 9), in_port=1))
        monitor.flush(until=100.0)
        assert monitor.stats.instances_expired == 1
