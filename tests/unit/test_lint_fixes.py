"""``repro lint --fix`` (repro.lint.fixes): mechanical autofixes.

The golden pair under ``tests/fixtures/lint/fix/`` pins the full rewrite
(input -> fixed); idempotence and clean re-lints are asserted over the
fixture corpus.
"""

import glob
import os
import shutil

import pytest

from repro.cli import main
from repro.lint import FIXABLE, fix_source, lint_source

FIXTURES = os.path.join(os.path.dirname(__file__), "..", "fixtures", "lint")
FIX_DIR = os.path.join(FIXTURES, "fix")


def read(path):
    with open(path, encoding="utf-8") as fp:
        return fp.read()


class TestGoldenRewrite:
    def test_fixture_rewrites_to_the_golden(self):
        result = fix_source(read(os.path.join(FIX_DIR, "fixable_input.prop")))
        assert result.source == read(
            os.path.join(FIX_DIR, "fixable_fixed.prop"))
        assert sorted({f.code for f in result.fixes}) == list(FIXABLE)
        assert not result.skipped

    def test_clean_property_is_untouched(self):
        fixed = read(os.path.join(FIX_DIR, "fixable_fixed.prop"))
        # The second property in the pair was clean from the start and
        # must survive the first property's rewrite byte-for-byte.
        assert 'property already_clean' in fixed
        result = fix_source(fixed)
        assert result.source == fixed
        assert not result.changed

    def test_fix_is_idempotent(self):
        once = fix_source(read(os.path.join(FIX_DIR, "fixable_input.prop")))
        twice = fix_source(once.source)
        assert twice.source == once.source
        assert not twice.fixes

    def test_fixed_output_relints_clean_for_mechanical_rules(self):
        result = fix_source(read(os.path.join(FIX_DIR, "fixable_input.prop")))
        report = lint_source(result.source)
        hits = [d for d in report.all_diagnostics() if d.code in FIXABLE]
        assert not hits, hits


class TestCommentPreservation:
    def test_commented_property_is_fixed_and_keeps_the_comment(self):
        source = (
            'property p "comments survive the rewrite"\n'
            "key D\n"
            "observe a : arrival\n"
            "    # this comment must survive\n"
            "    where in_port == 1 and in_port == 1\n"
            "    bind D = eth.src\n")
        result = fix_source(source)
        assert result.changed
        assert not result.skipped
        lines = result.source.splitlines()
        comment_at = lines.index("    # this comment must survive")
        # still anchored to the (now deduplicated) guard line below it
        assert "in_port == 1" in lines[comment_at + 1]
        assert result.source.count("in_port == 1") == 1
        # and the rewrite has reached its fixpoint
        again = fix_source(result.source)
        assert again.source == result.source and not again.fixes

    def test_suppressed_fix_is_not_applied(self):
        # A silenced diagnostic means the syntax is intentional: --fix
        # drops the (unsuppressed) L004 repeat but must keep the bind
        # whose L002 the author disabled — with its annotation intact.
        source = (
            'property p "suppressions keep working after --fix"\n'
            "key D\n"
            "observe a : arrival\n"
            "    where in_port == 1 and in_port == 1\n"
            "    bind D = eth.src, x = tcp.src  # lint: disable=L002\n")
        result = fix_source(source)
        assert {f.code for f in result.fixes} == {"L004"}
        (bind_line,) = [l for l in result.source.splitlines()
                        if "x = tcp.src" in l]
        assert bind_line.rstrip().endswith("# lint: disable=L002")
        report = lint_source(result.source)
        assert not [d for d in report.all_diagnostics() if d.code == "L002"]

    def test_comment_on_a_rewritten_line_is_not_dropped(self):
        source = (
            'property p "the anchor line itself gets rewritten"\n'
            "key D\n"
            "observe a : arrival\n"
            "    where in_port == 1\n"
            "    # explains the bind below\n"
            "    bind D = eth.src, x = tcp.src\n")
        result = fix_source(source)
        assert result.changed  # the unused bind x was dropped
        assert "x = tcp.src" not in result.source
        # the anchor line was rewritten under the comment; it re-anchors
        # to the surviving bind line instead of vanishing
        lines = result.source.splitlines()
        comment_at = lines.index("    # explains the bind below")
        assert lines[comment_at + 1].strip() == "bind D = eth.src"


class TestSkipConditions:

    def test_unparseable_source_is_left_alone(self):
        source = "property broken\nobserve s : zebra\n"
        result = fix_source(source)
        assert result.source == source
        assert not result.fixes and not result.skipped

    def test_predicate_property_keeps_its_binds(self):
        source = (
            'property p "a predicate may read any bound variable"\n'
            "key D\n"
            "observe a : arrival\n"
            "    where @internal\n"
            "    bind D = eth.src, maybe_used = tcp.src\n")
        result = fix_source(source)
        assert result.source == source

    def test_implicit_key_stage0_binds_survive(self):
        source = (
            'property p "stage-0 binds are the implicit key"\n'
            "observe a : arrival\n"
            "    bind d = eth.src, x = tcp.src\n"
            "observe b : egress\n"
            "    where eth.dst == $d\n")
        result = fix_source(source)
        assert result.source == source  # dropping x would change the key


class TestFixtureCorpus:
    """Applying --fix to every comment-free mechanical-rule fixture
    yields a re-lint clean of the rules it targets."""

    @pytest.mark.parametrize("code", ["L002", "L004"])
    def test_fixture_relints_clean_after_fix(self, code):
        (path,) = glob.glob(os.path.join(FIXTURES, code + "_*.prop"))
        before = lint_source(read(path))
        assert any(d.code == code for d in before.all_diagnostics())
        result = fix_source(read(path))
        assert result.changed
        after = lint_source(result.source)
        hits = [d for d in after.all_diagnostics() if d.code in FIXABLE]
        assert not hits, hits

    def test_live_key_rebind_is_not_auto_fixed(self):
        # The L003 fixture rebinds the key var D and reads it later, so
        # either value could be intended — deleting the rebind would
        # silently change semantics and --fix must refuse.
        (path,) = glob.glob(os.path.join(FIXTURES, "L003_*.prop"))
        result = fix_source(read(path))
        assert not result.changed
        assert result.source == read(path)

    def test_fix_never_breaks_a_parseable_fixture(self):
        for path in glob.glob(os.path.join(FIXTURES, "*.prop")):
            source = read(path)
            before = [d for d in lint_source(source, path=path)
                      .all_diagnostics() if d.code == "L000"]
            result = fix_source(source)
            after = [d for d in lint_source(result.source, path=path)
                     .all_diagnostics() if d.code == "L000"]
            # Fixing must not introduce parse errors anywhere.
            assert len(after) == len(before), path


class TestCli:
    def _copy(self, tmp_path):
        dst = str(tmp_path / "input.prop")
        shutil.copy(os.path.join(FIX_DIR, "fixable_input.prop"), dst)
        return dst

    def test_diff_mode_prints_but_does_not_write(self, tmp_path, capsys):
        path = self._copy(tmp_path)
        before = read(path)
        main(["lint", "--fix", "--diff", path])
        out = capsys.readouterr().out
        assert out.startswith("---")
        assert "+++ " in out and "(fixed)" in out
        assert read(path) == before

    def test_fix_mode_rewrites_in_place(self, tmp_path, capsys):
        path = self._copy(tmp_path)
        main(["lint", "--fix", path])
        err = capsys.readouterr().err
        assert "fixed L004" in err
        assert read(path) == read(
            os.path.join(FIX_DIR, "fixable_fixed.prop"))

    def test_diff_without_fix_is_a_usage_error(self, capsys):
        assert main(["lint", "--diff",
                     os.path.join(FIX_DIR, "fixable_input.prop")]) == 2
