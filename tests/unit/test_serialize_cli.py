"""Unit tests: trace serialization round-trips and the CLI commands."""

import io
import json

import pytest

from repro.cli import main
from repro.netsim.serialize import (
    TraceFormatError,
    dump_trace,
    event_from_dict,
    event_to_dict,
    load_trace,
    read_trace,
    save_trace,
)
from repro.packet import dhcp_packet, DhcpMessageType, ethernet, tcp_packet
from repro.switch.events import (
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
    TimerFired,
)


def sample_events():
    p = tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 1000, 80, payload=b"hi")
    d = dhcp_packet(5, DhcpMessageType.ACK, yiaddr="10.0.0.50")
    return [
        PacketArrival(switch_id="s1", time=0.0, packet=p, in_port=1),
        PacketEgress(switch_id="s1", time=0.001, packet=p, in_port=1,
                     out_port=2, action=EgressAction.UNICAST),
        PacketDrop(switch_id="s1", time=0.002, packet=d, in_port=2,
                   reason="acl"),
        OutOfBandEvent(switch_id="s1", time=0.003,
                       oob_kind=OobKind.PORT_DOWN, port=3),
        TimerFired(switch_id="s1", time=0.004, timer_id="t1",
                   instance_key=("a", 1)),
    ]


class TestTraceSerialization:
    def test_roundtrip_preserves_everything(self):
        events = sample_events()
        buf = io.StringIO()
        assert dump_trace(events, buf) == 5
        buf.seek(0)
        loaded = load_trace(buf)
        assert len(loaded) == 5
        for original, restored in zip(events, loaded):
            assert type(original) is type(restored)
            assert restored.time == original.time
            assert restored.switch_id == original.switch_id

    def test_packet_identity_survives(self):
        events = sample_events()
        buf = io.StringIO()
        dump_trace(events, buf)
        buf.seek(0)
        loaded = load_trace(buf)
        # Arrival and egress carried the same packet: identity preserved.
        assert loaded[0].packet.uid == loaded[1].packet.uid
        assert loaded[0].packet.uid == events[0].packet.uid

    def test_packet_contents_survive(self):
        events = sample_events()
        buf = io.StringIO()
        dump_trace(events, buf)
        buf.seek(0)
        loaded = load_trace(buf)
        assert loaded[0].packet.l4_sport == 1000
        assert loaded[0].packet.payload == b"hi"
        from repro.packet import Dhcp

        assert loaded[2].packet.get(Dhcp).yiaddr is not None

    def test_oob_and_timer_fields(self):
        buf = io.StringIO()
        dump_trace(sample_events(), buf)
        buf.seek(0)
        loaded = load_trace(buf)
        assert loaded[3].oob_kind is OobKind.PORT_DOWN
        assert loaded[3].port == 3
        assert loaded[4].timer_id == "t1"
        assert loaded[4].instance_key == ("a", 1)

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert save_trace(sample_events(), path) == 5
        assert len(read_trace(path)) == 5

    def test_parse_depth_limit_on_load(self):
        buf = io.StringIO()
        dump_trace(sample_events(), buf)
        buf.seek(0)
        loaded = load_trace(buf, max_layer=3)
        from repro.packet import TCP

        assert not loaded[0].packet.has(TCP)

    def test_blank_lines_skipped(self):
        buf = io.StringIO()
        dump_trace(sample_events()[:1], buf)
        buf.write("\n\n")
        buf.seek(0)
        assert len(load_trace(buf)) == 1

    def test_invalid_json_rejected(self):
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO("not json\n"))

    def test_missing_fields_rejected(self):
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO(json.dumps({"kind": "PacketArrival"}) + "\n"))

    def test_unknown_kind_rejected(self):
        line = json.dumps({"kind": "Quantum", "switch": "s", "time": 0.0})
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO(line + "\n"))

    def test_dict_roundtrip_single(self):
        event = sample_events()[0]
        assert event_from_dict(event_to_dict(event)).packet.uid == event.packet.uid


DSL = """
property learned_unicast
key D
observe learn : arrival
    bind D = eth.src, p = in_port
observe bad_egress : egress
    where eth.dst == $D and out_port != $p
"""


class TestCli:
    def test_tables_exits_zero(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "13/13 rows match the paper" in out
        assert "all cells match the paper" in out

    def test_survey_lists_backends(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "Varanus" in out and "hosts" in out

    def test_check_analyzes_file(self, tmp_path, capsys):
        path = tmp_path / "p.prop"
        path.write_text(DSL)
        assert main(["check", str(path)]) == 0
        out = capsys.readouterr().out
        assert "learned_unicast" in out
        assert "negative-match" in out

    def test_check_reports_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.prop"
        path.write_text("property broken observe x : wormhole")
        assert main(["check", str(path)]) == 1
        assert "ERROR" in capsys.readouterr().err

    def test_record_then_replay(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        props = tmp_path / "p.prop"
        props.write_text(DSL)
        assert main(["record", str(trace), "--packets", "30",
                     "--fault-rate", "1.0"]) == 0
        assert main(["replay", str(trace), str(props)]) == 0
        out = capsys.readouterr().out
        assert "violations:" in out
        assert "VIOLATION learned_unicast" in out

    def test_replay_clean_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        props = tmp_path / "p.prop"
        props.write_text(DSL)
        assert main(["record", str(trace), "--packets", "30",
                     "--fault-rate", "0.0"]) == 0
        assert main(["replay", str(trace), str(props)]) == 0
        assert "violations: 0" in capsys.readouterr().out


class TestShippedPropertyFiles:
    """The .prop files under examples/properties/ must stay compilable."""

    def test_all_shipped_files_check(self, capsys):
        import glob
        import os

        files = sorted(glob.glob(
            os.path.join(os.path.dirname(__file__), "..", "..",
                         "examples", "properties", "*.prop")))
        assert len(files) == 20
        assert main(["check"] + files) == 0
        out = capsys.readouterr().out
        assert out.count("inst. id") == 20

    def test_files_match_dsl_sources(self):
        import glob
        import os

        from repro.props.dsl_sources import DSL_SOURCES

        files = glob.glob(
            os.path.join(os.path.dirname(__file__), "..", "..",
                         "examples", "properties", "*.prop"))
        names = {os.path.basename(f)[:-5].replace("_", "-") for f in files}
        assert names == set(DSL_SOURCES)
