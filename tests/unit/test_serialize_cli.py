"""Unit tests: trace serialization round-trips and the CLI commands."""

import io
import json

import pytest

from repro.cli import main
from repro.netsim.serialize import (
    TraceFormatError,
    dump_trace,
    event_from_dict,
    event_to_dict,
    load_trace,
    read_trace,
    save_trace,
)
from repro.packet import dhcp_packet, DhcpMessageType, ethernet, tcp_packet
from repro.switch.events import (
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
    TimerFired,
)


def sample_events():
    p = tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 1000, 80, payload=b"hi")
    d = dhcp_packet(5, DhcpMessageType.ACK, yiaddr="10.0.0.50")
    return [
        PacketArrival(switch_id="s1", time=0.0, packet=p, in_port=1),
        PacketEgress(switch_id="s1", time=0.001, packet=p, in_port=1,
                     out_port=2, action=EgressAction.UNICAST),
        PacketDrop(switch_id="s1", time=0.002, packet=d, in_port=2,
                   reason="acl"),
        OutOfBandEvent(switch_id="s1", time=0.003,
                       oob_kind=OobKind.PORT_DOWN, port=3),
        TimerFired(switch_id="s1", time=0.004, timer_id="t1",
                   instance_key=("a", 1)),
    ]


class TestTraceSerialization:
    def test_roundtrip_preserves_everything(self):
        events = sample_events()
        buf = io.StringIO()
        assert dump_trace(events, buf) == 5
        buf.seek(0)
        loaded = load_trace(buf)
        assert len(loaded) == 5
        for original, restored in zip(events, loaded):
            assert type(original) is type(restored)
            assert restored.time == original.time
            assert restored.switch_id == original.switch_id

    def test_packet_identity_survives(self):
        events = sample_events()
        buf = io.StringIO()
        dump_trace(events, buf)
        buf.seek(0)
        loaded = load_trace(buf)
        # Arrival and egress carried the same packet: identity preserved.
        assert loaded[0].packet.uid == loaded[1].packet.uid
        assert loaded[0].packet.uid == events[0].packet.uid

    def test_packet_contents_survive(self):
        events = sample_events()
        buf = io.StringIO()
        dump_trace(events, buf)
        buf.seek(0)
        loaded = load_trace(buf)
        assert loaded[0].packet.l4_sport == 1000
        assert loaded[0].packet.payload == b"hi"
        from repro.packet import Dhcp

        assert loaded[2].packet.get(Dhcp).yiaddr is not None

    def test_oob_and_timer_fields(self):
        buf = io.StringIO()
        dump_trace(sample_events(), buf)
        buf.seek(0)
        loaded = load_trace(buf)
        assert loaded[3].oob_kind is OobKind.PORT_DOWN
        assert loaded[3].port == 3
        assert loaded[4].timer_id == "t1"
        assert loaded[4].instance_key == ("a", 1)

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert save_trace(sample_events(), path) == 5
        assert len(read_trace(path)) == 5

    def test_parse_depth_limit_on_load(self):
        buf = io.StringIO()
        dump_trace(sample_events(), buf)
        buf.seek(0)
        loaded = load_trace(buf, max_layer=3)
        from repro.packet import TCP

        assert not loaded[0].packet.has(TCP)

    def test_blank_lines_skipped(self):
        buf = io.StringIO()
        dump_trace(sample_events()[:1], buf)
        buf.write("\n\n")
        buf.seek(0)
        assert len(load_trace(buf)) == 1

    def test_invalid_json_rejected(self):
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO("not json\n"))

    def test_missing_fields_rejected(self):
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO(json.dumps({"kind": "PacketArrival"}) + "\n"))

    def test_unknown_kind_rejected(self):
        line = json.dumps({"kind": "Quantum", "switch": "s", "time": 0.0})
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO(line + "\n"))

    def test_dict_roundtrip_single(self):
        event = sample_events()[0]
        assert event_from_dict(event_to_dict(event)).packet.uid == event.packet.uid


DSL = """
property learned_unicast
key D
observe learn : arrival
    bind D = eth.src, p = in_port
observe bad_egress : egress
    where eth.dst == $D and out_port != $p
"""


class TestCli:
    def test_tables_exits_zero(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "13/13 rows match the paper" in out
        assert "all cells match the paper" in out

    def test_survey_lists_backends(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "Varanus" in out and "hosts" in out

    def test_check_analyzes_file(self, tmp_path, capsys):
        path = tmp_path / "p.prop"
        path.write_text(DSL)
        assert main(["check", str(path)]) == 0
        out = capsys.readouterr().out
        assert "learned_unicast" in out
        assert "negative-match" in out

    def test_check_reports_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.prop"
        path.write_text("property broken observe x : wormhole")
        assert main(["check", str(path)]) == 1
        assert "ERROR" in capsys.readouterr().err

    def test_record_then_replay(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        props = tmp_path / "p.prop"
        props.write_text(DSL)
        assert main(["record", str(trace), "--packets", "30",
                     "--fault-rate", "1.0"]) == 0
        assert main(["replay", str(trace), str(props)]) == 0
        out = capsys.readouterr().out
        assert "violations:" in out
        assert "VIOLATION learned_unicast" in out

    def test_replay_clean_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        props = tmp_path / "p.prop"
        props.write_text(DSL)
        assert main(["record", str(trace), "--packets", "30",
                     "--fault-rate", "0.0"]) == 0
        assert main(["replay", str(trace), str(props)]) == 0
        assert "violations: 0" in capsys.readouterr().out


class TestTraceHeader:
    def test_header_roundtrip(self):
        from repro.netsim.serialize import trace_header

        buf = io.StringIO()
        header = trace_header(seed=7, hosts=4, packets=40)
        dump_trace(sample_events(), buf, header=header)
        buf.seek(0)
        first = json.loads(buf.readline())
        assert first["kind"] == "TraceHeader"
        assert first["schema"] == 1
        assert first["seed"] == 7
        buf.seek(0)
        # Plain loads skip the header transparently.
        assert len(load_trace(buf)) == 5

    def test_header_drops_none_fields(self):
        from repro.netsim.serialize import trace_header

        assert "seed" not in trace_header(seed=None, hosts=4)

    def test_read_trace_with_header(self, tmp_path):
        from repro.netsim.serialize import read_trace_with_header, trace_header

        path = str(tmp_path / "t.jsonl")
        save_trace(sample_events(), path, header=trace_header(seed=3))
        header, events = read_trace_with_header(path)
        assert header["seed"] == 3
        assert len(events) == 5

    def test_headerless_trace_reads_as_none(self, tmp_path):
        from repro.netsim.serialize import read_trace_with_header

        path = str(tmp_path / "t.jsonl")
        save_trace(sample_events(), path)
        header, events = read_trace_with_header(path)
        assert header is None
        assert len(events) == 5

    def test_header_past_line_one_rejected(self):
        buf = io.StringIO()
        dump_trace(sample_events()[:1], buf)
        buf.write(json.dumps({"kind": "TraceHeader", "schema": 1}) + "\n")
        buf.seek(0)
        with pytest.raises(TraceFormatError):
            load_trace(buf)


class TestStatsCli:
    @pytest.fixture
    def recorded(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        props = tmp_path / "p.prop"
        props.write_text(DSL)
        assert main(["record", str(trace), "--packets", "20", "--seed", "3",
                     "--fault-rate", "1.0"]) == 0
        return str(trace), str(props)

    def test_record_writes_provenance_header(self, recorded):
        trace, _ = recorded
        with open(trace, encoding="utf-8") as fp:
            first = json.loads(fp.readline())
        assert first["kind"] == "TraceHeader"
        assert first["schema"] == 1
        assert first["seed"] == 3
        assert first["packets"] == 20
        assert first["generator"] == "repro record"

    def test_stats_default_prometheus(self, recorded, capsys):
        trace, props = recorded
        assert main(["stats", trace, props]) == 0
        captured = capsys.readouterr()
        assert "# TYPE repro_monitor_events_total counter" in captured.out
        assert "repro_monitor_events_total" in captured.out
        # Provenance echo goes to stderr, not into the exposition text.
        assert "schema v1" in captured.err
        assert "seed=3" in captured.err

    def test_stats_json_snapshot(self, recorded, capsys):
        trace, props = recorded
        assert main(["stats", trace, props, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"]["header"]["seed"] == 3
        names = {m["name"] for m in payload["snapshot"]["metrics"]}
        assert "repro_monitor_events_total" in names
        assert "repro_monitor_live_instances" in names

    def test_stats_trace_out_spans_validate(self, recorded, tmp_path):
        from repro.telemetry import load_spans, validate_spans

        trace, props = recorded
        spans_path = str(tmp_path / "spans.jsonl")
        assert main(["stats", trace, props, "--trace-out", spans_path]) == 0
        with open(spans_path, encoding="utf-8") as fp:
            spans = load_spans(fp)
        assert spans
        assert validate_spans(spans) == []

    def test_stats_poll_interval_samples(self, recorded, capsys):
        trace, props = recorded
        # The 20-packet recording spans ~19ms of virtual time; a 5ms
        # interval yields a handful of samples across it.
        assert main(["stats", trace, props, "--json",
                     "--poll-interval", "0.005"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["samples"]
        times = [row["time"] for row in payload["samples"]]
        assert times == sorted(times)

    def test_replay_metrics_out(self, recorded, tmp_path, capsys):
        trace, props = recorded
        out = str(tmp_path / "metrics.json")
        assert main(["replay", trace, props, "--metrics", out]) == 0
        with open(out, encoding="utf-8") as fp:
            snapshot = json.load(fp)
        names = {m["name"] for m in snapshot["metrics"]}
        assert "repro_monitor_events_total" in names


class TestShippedPropertyFiles:
    """The .prop files under examples/properties/ must stay compilable."""

    def test_all_shipped_files_check(self, capsys):
        import glob
        import os

        files = sorted(glob.glob(
            os.path.join(os.path.dirname(__file__), "..", "..",
                         "examples", "properties", "*.prop")))
        assert len(files) == 20
        assert main(["check"] + files) == 0
        out = capsys.readouterr().out
        assert out.count("inst. id") == 20

    def test_files_match_dsl_sources(self):
        import glob
        import os

        from repro.props.dsl_sources import DSL_SOURCES

        files = glob.glob(
            os.path.join(os.path.dirname(__file__), "..", "..",
                         "examples", "properties", "*.prop"))
        names = {os.path.basename(f)[:-5].replace("_", "-") for f in files}
        assert names == set(DSL_SOURCES)
