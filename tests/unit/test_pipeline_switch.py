"""Unit tests: pipeline execution, rewrites, registers, and the switch."""

import pytest

from repro.netsim.scheduler import EventScheduler
from repro.netsim.trace import TraceRecorder
from repro.packet import (
    IPv4,
    IPv4Address,
    MACAddress,
    TCP,
    ethernet,
    tcp_packet,
)
from repro.switch.actions import (
    Drop,
    FieldRef,
    Flood,
    GotoTable,
    Learn,
    Notify,
    Output,
    RegisterWrite,
    SetField,
    ToController,
)
from repro.switch.events import (
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketDrop,
    PacketEgress,
    TimerFired,
)
from repro.switch.match import ANY, MatchSpec
from repro.switch.pipeline import MissPolicy, Pipeline, PipelineError
from repro.switch.registers import GlobalArrays, RegisterArray, StateCostMeter
from repro.switch.rewrite import RewriteError, rewritable_fields, rewrite_field
from repro.switch.switch import ProcessingMode, Switch


class TestRewrite:
    def test_rewrite_ip_src(self):
        p = tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 1, 2)
        q = rewrite_field(p, "ipv4.src", IPv4Address("9.9.9.9"))
        assert q.ip_src == IPv4Address("9.9.9.9")
        assert q.uid == p.uid

    def test_rewrite_l4_generic(self):
        p = tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 1, 2)
        q = rewrite_field(p, "l4.src", 999)
        assert q.get(TCP).src_port == 999

    def test_rewrite_l4_without_l4_header(self):
        with pytest.raises(RewriteError):
            rewrite_field(ethernet(1, 2), "l4.dst", 1)

    def test_unknown_field(self):
        with pytest.raises(RewriteError):
            rewrite_field(ethernet(1, 2), "bogus.field", 1)

    def test_missing_header(self):
        with pytest.raises(RewriteError):
            rewrite_field(ethernet(1, 2), "ipv4.src", IPv4Address("1.1.1.1"))

    def test_rewritable_fields_listed(self):
        names = rewritable_fields()
        assert "ipv4.src" in names and "eth.dst" in names


class TestRegisters:
    def test_read_write(self):
        arr = RegisterArray("r", 8)
        arr.write(3, 42)
        assert arr.read(3) == 42
        assert arr.read(4) == 0

    def test_modular_indexing(self):
        arr = RegisterArray("r", 8)
        arr.write(11, 7)
        assert arr.read(3) == 7

    def test_increment(self):
        arr = RegisterArray("r", 4)
        assert arr.increment(0) == 1
        assert arr.increment(0, 5) == 6

    def test_meter_charged(self):
        meter = StateCostMeter()
        arr = RegisterArray("r", 4, meter=meter)
        arr.write(0, 1)
        arr.increment(1)
        assert meter.fast_updates == 2
        assert meter.slow_updates == 0

    def test_size_validation(self):
        with pytest.raises(ValueError):
            RegisterArray("r", 0)

    def test_nonzero_iteration(self):
        arr = RegisterArray("r", 4)
        arr.write(2, 9)
        assert list(arr.nonzero()) == [(2, 9)]

    def test_global_arrays(self):
        meter = StateCostMeter()
        g = GlobalArrays(meter=meter)
        g.write("seen", ("a", "b"), True)
        assert g.read("seen", ("a", "b")) is True
        assert g.read("seen", ("x",), default=0) == 0
        assert g.delete("seen", ("a", "b")) is True
        assert g.delete("seen", ("a", "b")) is False
        assert meter.fast_updates == 2  # one write + one delete

    def test_cost_meter_totals(self):
        meter = StateCostMeter()
        meter.charge_lookup(3)
        meter.charge_fast_update()
        meter.charge_slow_update()
        assert meter.lookups == 3
        assert meter.total_ticks > 0
        meter.reset()
        assert meter.total_ticks == 0


class TestPipeline:
    def _pipe(self, **kw):
        kw.setdefault("num_tables", 2)
        return Pipeline(**kw)

    def test_output_action(self):
        pipe = self._pipe()
        pipe.table(0).install(ANY, [Output(3)])
        result = pipe.process(ethernet(1, 2), in_port=1, now=0.0)
        assert result.outputs[0][0] == 3
        assert not result.dropped

    def test_miss_policy_drop(self):
        pipe = self._pipe(miss_policy=MissPolicy.DROP)
        result = pipe.process(ethernet(1, 2), in_port=1, now=0.0)
        assert result.dropped
        assert result.drop_reason == "table-miss"

    def test_miss_policy_flood(self):
        pipe = self._pipe(miss_policy=MissPolicy.FLOOD)
        assert pipe.process(ethernet(1, 2), 1, 0.0).flooded

    def test_miss_policy_controller(self):
        pipe = self._pipe(miss_policy=MissPolicy.CONTROLLER)
        assert pipe.process(ethernet(1, 2), 1, 0.0).to_controller

    def test_set_field_rewrites_before_output(self):
        pipe = self._pipe()
        pipe.table(0).install(
            ANY, [SetField("eth.dst", MACAddress(9)), Output(2)]
        )
        result = pipe.process(ethernet(1, 2), 1, 0.0)
        assert result.outputs[0][1].eth.dst == MACAddress(9)

    def test_goto_table_chains(self):
        pipe = self._pipe()
        pipe.table(0).install(ANY, [GotoTable(1)])
        pipe.table(1).install(ANY, [Output(4)])
        result = pipe.process(ethernet(1, 2), 1, 0.0)
        assert result.outputs[0][0] == 4
        assert result.tables_traversed == 2

    def test_goto_backwards_rejected(self):
        pipe = self._pipe()
        pipe.table(1).install(ANY, [GotoTable(0)])
        pipe.table(0).install(ANY, [GotoTable(1)])
        with pytest.raises(PipelineError):
            pipe.process(ethernet(1, 2), 1, 0.0)

    def test_learn_collected_not_applied(self):
        pipe = self._pipe()
        learn = Learn(table_id=1, match=(("eth.dst", FieldRef("eth.src")),),
                      actions=(Output(2),))
        pipe.table(0).install(ANY, [learn, Flood()])
        result = pipe.process(ethernet(1, 2), 1, 0.0)
        assert len(result.updates) == 1
        assert result.updates[0].slow_path
        assert len(pipe.table(1)) == 0  # deferred to the switch

    def test_register_write_collected_fast_path(self):
        pipe = self._pipe()
        pipe.table(0).install(
            ANY, [RegisterWrite("seen", 1, 1), Output(2)]
        )
        result = pipe.process(ethernet(1, 2), 1, 0.0)
        assert len(result.updates) == 1
        assert not result.updates[0].slow_path

    def test_notify_emits_alert_with_carried_fields(self):
        pipe = self._pipe()
        pipe.table(0).install(
            ANY, [Notify("boom", carry=("eth.src",)), Drop()]
        )
        p = ethernet(7, 2)
        result = pipe.process(p, 1, 0.0)
        assert result.alerts[0].message == "boom"
        assert result.alerts[0].carried["eth.src"] == MACAddress(7)
        assert result.alerts[0].packet_uid == p.uid

    def test_unresolved_output_port_rejected(self):
        pipe = self._pipe()
        pipe.table(0).install(ANY, [Output(FieldRef("in_port"))])
        with pytest.raises(PipelineError):
            pipe.process(ethernet(1, 2), 1, 0.0)

    def test_parse_depth_limits_matching(self):
        from repro.packet import dhcp_packet, DhcpMessageType

        pipe = Pipeline(num_tables=1, max_parse_layer=4,
                        miss_policy=MissPolicy.DROP)
        pipe.table(0).install(
            MatchSpec().eq("dhcp.msg_type", DhcpMessageType.REQUEST), [Output(2)]
        )
        result = pipe.process(dhcp_packet(5, DhcpMessageType.REQUEST), 1, 0.0)
        assert result.dropped  # the L7 field is invisible at L4 parsing

    def test_egress_table_sees_out_port(self):
        pipe = Pipeline(num_tables=1, num_egress_tables=1,
                        miss_policy=MissPolicy.DROP)
        pipe.table(0).install(ANY, [Output(2)])
        pipe.egress_table(0).install(
            MatchSpec(out_port=2), [SetField("eth.dst", MACAddress(5))]
        )
        result = pipe.process(ethernet(1, 2), 1, 0.0)
        assert result.outputs[0][1].eth.dst == MACAddress(5)

    def test_egress_drop_removes_output(self):
        pipe = Pipeline(num_tables=1, num_egress_tables=1,
                        miss_policy=MissPolicy.DROP)
        pipe.table(0).install(ANY, [Output(2)])
        pipe.egress_table(0).install(MatchSpec(out_port=2), [Drop()])
        result = pipe.process(ethernet(1, 2), 1, 0.0)
        assert result.outputs == []

    def test_lookup_cost_charged(self):
        pipe = self._pipe()
        pipe.process(ethernet(1, 2), 1, 0.0)
        assert pipe.meter.lookups == 2  # both tables consulted

    def test_add_table_grows_depth(self):
        pipe = self._pipe()
        assert pipe.depth == 2
        pipe.add_table()
        assert pipe.depth == 3

    def test_needs_at_least_one_table(self):
        with pytest.raises(PipelineError):
            Pipeline(num_tables=0)


class TestSwitch:
    def _switch(self, **kw):
        sched = EventScheduler()
        kw.setdefault("num_ports", 3)
        return Switch("s1", sched, **kw), sched

    def test_flood_skips_ingress_port(self):
        sw, sched = self._switch()
        rec = TraceRecorder()
        sw.add_tap(rec)
        sw.receive(ethernet(1, 2), in_port=1)
        sched.run()
        out_ports = sorted(e.out_port for e in rec.egresses)
        assert out_ports == [2, 3]
        assert all(e.action is EgressAction.FLOOD for e in rec.egresses)

    def test_unicast_rule(self):
        sw, sched = self._switch()
        rec = TraceRecorder()
        sw.add_tap(rec)
        sw.install_rule(MatchSpec(eth__dst=MACAddress(2)), [Output(2)],
                        priority=200)
        sw.receive(ethernet(1, 2), in_port=1)
        sched.run()
        assert [e.out_port for e in rec.egresses] == [2]
        assert rec.egresses[0].action is EgressAction.UNICAST

    def test_drop_visibility_on(self):
        sw, sched = self._switch(miss_policy=MissPolicy.DROP)
        rec = TraceRecorder()
        sw.add_tap(rec)
        sw.receive(ethernet(1, 2), in_port=1)
        assert len(rec.drops) == 1
        assert rec.drops[0].reason == "table-miss"

    def test_drop_visibility_off(self):
        sw, sched = self._switch(miss_policy=MissPolicy.DROP,
                                 drop_visibility=False)
        rec = TraceRecorder()
        sw.add_tap(rec)
        sw.receive(ethernet(1, 2), in_port=1)
        assert rec.drops == []
        assert sw.stats.drops == 1  # it still happened

    def test_app_drop_api(self):
        sw, _ = self._switch()
        rec = TraceRecorder()
        sw.add_tap(rec)
        sw.drop(ethernet(1, 2), in_port=1, reason="policy")
        assert rec.drops[0].reason == "policy"

    def test_port_down_blocks_ingress(self):
        sw, _ = self._switch()
        sw.link_down(1)
        with pytest.raises(ValueError):
            sw.receive(ethernet(1, 2), in_port=1)

    def test_port_down_emits_oob(self):
        sw, _ = self._switch()
        rec = TraceRecorder()
        sw.add_tap(rec)
        sw.link_down(2)
        sw.link_up(2)
        kinds = [e.oob_kind for e in rec.oob]
        assert kinds == [OobKind.PORT_DOWN, OobKind.PORT_UP]
        assert rec.oob[0].port == 2

    def test_port_status_idempotent(self):
        sw, _ = self._switch()
        rec = TraceRecorder()
        sw.add_tap(rec)
        sw.link_up(2)  # already up: no event
        assert rec.oob == []

    def test_flood_skips_down_ports(self):
        sw, sched = self._switch()
        rec = TraceRecorder()
        sw.add_tap(rec)
        sw.link_down(3)
        rec.clear()
        sw.receive(ethernet(1, 2), in_port=1)
        sched.run()
        assert sorted(e.out_port for e in rec.egresses) == [2]

    def test_learn_applied_inline(self):
        sw, sched = self._switch(num_tables=2, mode=ProcessingMode.INLINE)
        learn = Learn(table_id=1, match=(("eth.dst", FieldRef("eth.src")),),
                      actions=(Output(FieldRef("in_port")),))
        sw.install_rule(ANY, [learn], table_id=0, priority=1)
        sw.receive(ethernet(1, 2), in_port=1)
        assert len(sw.pipeline.table(1)) == 1  # applied before return

    def test_learn_applied_split_after_lag(self):
        sw, sched = self._switch(num_tables=2, mode=ProcessingMode.SPLIT,
                                 split_lag=0.01)
        learn = Learn(table_id=1, match=(("eth.dst", FieldRef("eth.src")),),
                      actions=(Output(FieldRef("in_port")),))
        sw.install_rule(ANY, [learn], table_id=0, priority=1)
        sw.receive(ethernet(1, 2), in_port=1)
        assert len(sw.pipeline.table(1)) == 0  # not yet
        sched.run()
        assert len(sw.pipeline.table(1)) == 1

    def test_learn_to_fresh_table_grows_pipeline(self):
        sw, _ = self._switch(num_tables=1)
        learn = Learn(table_id=-1, match=(("eth.src", FieldRef("eth.src")),),
                      actions=(Notify("hit"),))
        sw.install_rule(ANY, [learn], table_id=0, priority=1)
        depth_before = sw.pipeline.depth
        sw.receive(ethernet(1, 2), in_port=1)
        sw.receive(ethernet(2, 1), in_port=2)
        assert sw.pipeline.depth == depth_before + 2  # one table per learn

    def test_rule_timeout_fires_on_timeout_actions(self):
        sw, sched = self._switch()
        alerts = []
        sw.add_alert_sink(alerts.append)
        rec = TraceRecorder()
        sw.add_tap(rec)
        sw.install_rule(
            MatchSpec(in_port=9), [Output(2)],
            hard_timeout=1.0, on_timeout=[Notify("expired!")], cookie="t",
        )
        sched.run()
        assert sched.clock.now() >= 1.0
        assert [a.message for a in alerts] == ["expired!"]
        timers = [e for e in rec.events if isinstance(e, TimerFired)]
        assert len(timers) == 1 and timers[0].timer_id == "t"

    def test_rule_timeout_without_actions_is_silent(self):
        sw, sched = self._switch()
        rec = TraceRecorder()
        sw.add_tap(rec)
        sw.install_rule(MatchSpec(in_port=9), [Output(2)], hard_timeout=1.0)
        sched.run()
        assert not [e for e in rec.events if isinstance(e, TimerFired)]

    def test_inline_latency_grows_with_updates(self):
        sw_plain, _ = self._switch(num_tables=2)
        sw_plain.install_rule(ANY, [Output(2)], table_id=0, priority=1)
        sw_plain.receive(ethernet(1, 2), in_port=1)

        sw_learn, _ = self._switch(num_tables=2)
        learn = Learn(table_id=1, match=(("eth.dst", FieldRef("eth.src")),),
                      actions=(Output(FieldRef("in_port")),))
        sw_learn.install_rule(ANY, [learn, Output(2)], table_id=0, priority=1)
        sw_learn.receive(ethernet(1, 2), in_port=1)
        assert (sw_learn.stats.mean_forward_latency
                > sw_plain.stats.mean_forward_latency)

    def test_inject_emits_unicast_egress(self):
        sw, _ = self._switch()
        rec = TraceRecorder()
        sw.add_tap(rec)
        sw.inject(ethernet(1, 2), out_port=2)
        assert rec.egresses[0].in_port == 0  # switch-originated marker

    def test_stats_counts(self):
        sw, sched = self._switch(miss_policy=MissPolicy.FLOOD)
        sw.receive(ethernet(1, 2), in_port=1)
        sched.run()
        assert sw.stats.arrivals == 1
        assert sw.stats.floods == 1

    def test_unknown_port_rejected(self):
        sw, _ = self._switch()
        with pytest.raises(ValueError):
            sw.receive(ethernet(1, 2), in_port=99)
        with pytest.raises(ValueError):
            sw.inject(ethernet(1, 2), out_port=99)
