"""Codegen backend unit tests.

The generated programs for two representative Table-1 properties are
pinned by golden files under ``tests/fixtures/codegen/`` (regenerate
with ``PYTHONPATH=src python -m tests.regen_codegen_goldens``); the rest
of this file covers the program's observable surface — emission stats,
rebuild-on-add invalidation, and the ``repro explain --codegen`` dump —
while the Hypothesis differential suite owns semantic equivalence.
"""

import io
import os
from contextlib import redirect_stdout

import pytest

from repro.cli import main as cli_main
from repro.core import Monitor
from repro.props.catalog import build_table1
from tests.regen_codegen_goldens import GOLDEN, PINNED, generated_source

CATALOG = {entry.prop.name: entry.prop for entry in build_table1()}


class TestGoldenSources:
    @pytest.mark.parametrize("prop_name", PINNED)
    def test_generated_source_matches_golden(self, prop_name):
        fixture = os.path.join(
            GOLDEN, prop_name.replace("-", "_") + ".py.txt")
        with open(fixture) as fp:
            want = fp.read()
        assert generated_source(prop_name) == want, (
            "generated matcher drifted from the golden; if deliberate, "
            "rerun PYTHONPATH=src python -m tests.regen_codegen_goldens")

    def test_source_header_names_all_properties(self):
        monitor = Monitor(match_strategy="codegen")
        for entry in build_table1():
            monitor.add_property(entry.prop)
        source = monitor.codegen_source()
        header = source.splitlines()[1]
        for entry in build_table1():
            assert entry.prop.name in header


class TestProgramSurface:
    def test_emission_stats_are_populated(self):
        monitor = Monitor(match_strategy="codegen")
        monitor.add_property(CATALOG["knocking-invalidated"])
        monitor.codegen_source()  # forces the lazy build
        program = monitor._codegen_program
        (emission,) = program.emissions.values()
        assert emission.name == "knocking-invalidated"
        assert emission.event_classes >= 1
        assert emission.inline_terms >= 1
        assert emission.matcher_lines >= emission.event_classes

    def test_add_property_invalidates_program(self):
        monitor = Monitor(match_strategy="codegen")
        monitor.add_property(CATALOG["knocking-invalidated"])
        first = monitor.codegen_source()
        monitor.add_property(CATALOG["dhcp-reply-within"])
        second = monitor.codegen_source()
        assert first != second
        assert "dhcp-reply-within" in second

    def test_generated_functions_compile_under_marker_filename(self):
        monitor = Monitor(match_strategy="codegen")
        monitor.add_property(CATALOG["dhcp-reply-within"])
        monitor.codegen_source()
        program = monitor._codegen_program
        for fn in program.eval_fns.values():
            assert fn.__code__.co_filename == "<repro-codegen>"


class TestExplainCommand:
    def test_explain_codegen_dumps_program(self):
        buf = io.StringIO()
        with redirect_stdout(buf):
            rc = cli_main(["explain", "knocking-invalidated", "--codegen"])
        assert rc in (0, None)
        out = buf.getvalue()
        assert out.startswith("# repro codegen program")
        assert "_eval__PacketArrival" in out

    def test_explain_unknown_property_fails(self, capsys):
        rc = cli_main(["explain", "no-such-property"])
        assert rc == 2
        assert "no-such-property" in capsys.readouterr().err
