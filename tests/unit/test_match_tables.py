"""Unit tests: match predicates and flow tables."""

import pytest

from repro.packet import IPv4Address, MACAddress, ethernet, tcp_packet
from repro.switch.actions import Drop, Output
from repro.switch.match import ANY, FieldPredicate, MatchSpec
from repro.switch.tables import FlowTable


class TestFieldPredicate:
    def test_exact(self):
        p = FieldPredicate("eth.src", MACAddress(1))
        assert p.matches(MACAddress(1))
        assert not p.matches(MACAddress(2))

    def test_negate(self):
        p = FieldPredicate("tcp.dst", 80, negate=True)
        assert p.matches(81)
        assert not p.matches(80)

    def test_masked(self):
        p = FieldPredicate("ipv4.src", int(IPv4Address("10.0.0.0")),
                           mask=0xFF000000)
        assert p.matches(IPv4Address("10.1.2.3"))
        assert not p.matches(IPv4Address("11.0.0.1"))

    def test_masked_non_numeric_fails_closed(self):
        p = FieldPredicate("eth.src", 5, mask=0xFF)
        assert not p.matches("not-a-number")

    def test_mask_and_negate_conflict(self):
        with pytest.raises(ValueError):
            FieldPredicate("x", 1, mask=0xFF, negate=True)


class TestMatchSpec:
    def test_any_matches_everything(self):
        assert ANY.matches_fields({})
        assert ANY.matches_fields({"eth.src": MACAddress(9)})

    def test_kwargs_use_double_underscore(self):
        spec = MatchSpec(eth__dst=MACAddress(2))
        assert spec.matches_fields({"eth.dst": MACAddress(2)})
        assert not spec.matches_fields({"eth.dst": MACAddress(3)})

    def test_in_port(self):
        spec = MatchSpec(in_port=3)
        assert spec.matches_fields({"in_port": 3})
        assert not spec.matches_fields({"in_port": 4})
        assert not spec.matches_fields({})

    def test_out_port(self):
        spec = MatchSpec(out_port=2)
        assert spec.matches_fields({"out_port": 2})
        assert not spec.matches_fields({"out_port": 1})

    def test_fluent_eq_neq(self):
        spec = MatchSpec().eq("tcp.dst", 80).neq("ipv4.src", IPv4Address("1.1.1.1"))
        assert spec.matches_fields({"tcp.dst": 80, "ipv4.src": IPv4Address("2.2.2.2")})
        assert not spec.matches_fields({"tcp.dst": 80, "ipv4.src": IPv4Address("1.1.1.1")})

    def test_absent_field_fails_positive(self):
        spec = MatchSpec().eq("tcp.dst", 80)
        assert not spec.matches_fields({"udp.dst": 80})

    def test_absent_field_passes_negative(self):
        spec = MatchSpec().neq("tcp.dst", 80)
        assert spec.matches_fields({})  # no tcp.dst => cannot equal 80

    def test_matches_packet_with_depth_limit(self):
        from repro.packet import dhcp_packet, DhcpMessageType

        p = dhcp_packet(5, DhcpMessageType.REQUEST)
        spec = MatchSpec().eq("dhcp.msg_type", DhcpMessageType.REQUEST)
        assert spec.matches_packet(p, max_layer=7)
        assert not spec.matches_packet(p, max_layer=4)

    def test_has_negation(self):
        assert MatchSpec().neq("a.b", 1).has_negation
        assert not MatchSpec().eq("a.b", 1).has_negation

    def test_equality_and_hash(self):
        a = MatchSpec(in_port=1).eq("tcp.dst", 80)
        b = MatchSpec(in_port=1).eq("tcp.dst", 80)
        assert a == b
        assert hash(a) == hash(b)
        assert a != MatchSpec(in_port=2).eq("tcp.dst", 80)

    def test_describe(self):
        text = MatchSpec(in_port=1).eq("tcp.dst", 80).describe()
        assert "in_port==1" in text and "tcp.dst==80" in text
        assert ANY.describe() == "ANY"


class TestFlowTable:
    def _fields(self, **kw):
        fields = {"in_port": 1}
        fields.update(kw)
        return fields

    def test_highest_priority_wins(self):
        table = FlowTable(0)
        low = table.install(ANY, [Drop()], priority=1)
        high = table.install(MatchSpec(in_port=1), [Output(2)], priority=100)
        assert table.lookup(self._fields(), now=0.0) is high

    def test_tie_break_earliest_installed(self):
        table = FlowTable(0)
        first = table.install(MatchSpec(in_port=1), [Output(2)], priority=10)
        second = table.install(MatchSpec(), [Output(3)], priority=10)
        assert table.lookup(self._fields(), now=0.0) is first

    def test_miss_returns_none(self):
        table = FlowTable(0)
        table.install(MatchSpec(in_port=9), [Output(2)])
        assert table.lookup(self._fields(), now=0.0) is None

    def test_install_replaces_identical_match(self):
        table = FlowTable(0)
        table.install(MatchSpec(in_port=1), [Output(2)], priority=10)
        table.install(MatchSpec(in_port=1), [Output(3)], priority=10)
        assert len(table) == 1
        rule = table.lookup(self._fields(), now=0.0)
        assert rule.actions == (Output(3),)

    def test_install_no_replace_keeps_both(self):
        table = FlowTable(0)
        table.install(MatchSpec(in_port=1), [Output(2)], replace=False)
        table.install(MatchSpec(in_port=1), [Output(3)], replace=False)
        assert len(table) == 2

    def test_hard_timeout_expires(self):
        table = FlowTable(0)
        rule = table.install(ANY, [Output(2)], hard_timeout=5.0, now=0.0)
        assert table.lookup(self._fields(), now=4.9) is rule
        assert table.lookup(self._fields(), now=5.0) is None

    def test_idle_timeout_refreshed_by_matches(self):
        table = FlowTable(0)
        table.install(ANY, [Output(2)], idle_timeout=2.0, now=0.0)
        assert table.lookup(self._fields(), now=1.5) is not None  # refreshes
        assert table.lookup(self._fields(), now=3.0) is not None  # 1.5+2 > 3
        assert table.lookup(self._fields(), now=5.1) is None

    def test_hard_timeout_ignores_matches(self):
        table = FlowTable(0)
        table.install(ANY, [Output(2)], hard_timeout=2.0, now=0.0)
        table.lookup(self._fields(), now=1.9)
        assert table.lookup(self._fields(), now=2.1) is None

    def test_expire_returns_timed_out_rules(self):
        table = FlowTable(0)
        table.install(ANY, [Output(2)], hard_timeout=1.0, now=0.0, cookie="a")
        table.install(MatchSpec(in_port=2), [Output(3)], cookie="b")
        expired = table.expire(now=2.0)
        assert [e.rule.cookie for e in expired] == ["a"]
        assert len(table) == 1

    def test_next_deadline(self):
        table = FlowTable(0)
        assert table.next_deadline() is None
        table.install(ANY, [Output(2)], hard_timeout=5.0, now=1.0)
        table.install(MatchSpec(in_port=2), [Output(3)], hard_timeout=2.0, now=1.0)
        assert table.next_deadline() == 3.0

    def test_remove_by_cookie(self):
        table = FlowTable(0)
        table.install(ANY, [Output(2)], cookie="x", replace=False)
        table.install(MatchSpec(in_port=2), [Output(2)], cookie="x", replace=False)
        table.install(MatchSpec(in_port=3), [Output(2)], cookie="y", replace=False)
        assert table.remove_by_cookie("x") == 2
        assert len(table) == 1

    def test_packet_counts(self):
        table = FlowTable(0)
        rule = table.install(ANY, [Output(2)])
        table.lookup(self._fields(), now=0.0)
        table.lookup(self._fields(), now=1.0)
        assert rule.packet_count == 2
