"""The taint / resource-bound pass (repro.lint.taint): rules L017-L019."""

from repro.core.degradation import (
    DEFAULT_INSTANCE_CAP,
    EVICT_LRU,
    EVICT_REJECT,
    suggested_policy,
)
from repro.core.features import ATTACKER_CONTROLLED, TRUSTED, field_provenance
from repro.lang.parser import parse_one
from repro.lint import lint_source
from repro.lint.taint import (
    CONSTANT,
    MAX_BOUND,
    analyze_taint,
    label_rank,
    taint_diagnostics,
)

import pytest


def analyze(source):
    ast = parse_one(source)
    report = analyze_taint(ast)
    return report, taint_diagnostics(ast, report)


def codes(diags):
    return sorted(d.code for d in diags)


FLOODABLE = """\
property flood "fully attacker-keyed"
key A, P
observe start : arrival
    bind A = ipv4.src, P = tcp.src
observe finish : arrival
    where ipv4.src == $A and tcp.src == $P
"""


class TestLabels:
    def test_header_bind_is_attacker_controlled(self):
        report, _ = analyze(FLOODABLE)
        assert report.labels["A"].label == ATTACKER_CONTROLLED
        assert report.labels["P"].label == ATTACKER_CONTROLLED
        assert report.key_label == ATTACKER_CONTROLLED

    def test_trusted_field_bind_is_trusted(self):
        report, _ = analyze("""\
property p "switch-supplied key"
key PORT
observe a : arrival
    bind PORT = in_port
observe b : arrival
    where tcp.src == 80
""")
        assert report.labels["PORT"].label == TRUSTED

    def test_guard_pinned_bind_is_constant(self):
        report, _ = analyze("""\
property p "pinned key"
key D
observe a : arrival
    where tcp.dst == 22
    bind D = tcp.dst
observe b : arrival
    where tcp.src == 22
""")
        assert report.labels["D"].label == CONSTANT
        assert report.labels["D"].cardinality() == 1

    def test_alias_inherits_the_source_label(self):
        report, _ = analyze("""\
property p "alias flows"
key D
observe a : arrival
    where tcp.dst == 22
    bind D = tcp.dst
observe b : arrival
    where tcp.src == $D
    bind E = tcp.src
observe c : arrival
    where tcp.dst == $E
""")
        assert report.labels["E"].label == CONSTANT

    def test_unknown_fields_default_to_attacker_controlled(self):
        # conservative: anything the provenance table does not know is
        # assumed to be sender-controlled
        assert field_provenance("made.up.field") == ATTACKER_CONTROLLED

    def test_label_order_is_total(self):
        assert (label_rank(CONSTANT) < label_rank(TRUSTED)
                < label_rank(ATTACKER_CONTROLLED))


class TestL017:
    def test_fires_when_every_key_var_is_attacker_controlled(self):
        _, diags = analyze(FLOODABLE)
        (l017,) = [d for d in diags if d.code == "L017"]
        assert "entirely attacker-controlled" in l017.message
        # the derivation chain names every key variable
        notes = " ".join(n.message for n in l017.related)
        assert "$A" in notes and "$P" in notes

    def test_silent_when_one_key_var_is_pinned(self):
        # the lb-catalog calibration: vip pinned to the service address
        # spares the property even though the client half is attacker-run
        _, diags = analyze("""\
property lb "half the key is pinned"
key CLIENT, VIP
observe req : arrival
    where ipv4.dst == 10.0.0.100
    bind CLIENT = ipv4.src, VIP = ipv4.dst
observe resp : arrival
    where ipv4.src == $VIP and ipv4.dst == $CLIENT
""")
        assert "L017" not in codes(diags)

    def test_silent_when_the_key_is_trusted(self):
        _, diags = analyze("""\
property p "switch-keyed"
key PORT
observe a : arrival
    bind PORT = in_port
observe b : arrival
    where tcp.src == 80
""")
        assert "L017" not in codes(diags)

    def test_silent_when_stage0_is_not_a_packet_event(self):
        _, diags = analyze("""\
property p "oob-opened"
key PORT
observe down : oob
    bind PORT = oob.port
observe later : arrival
    where tcp.src == 80
""")
        assert "L017" not in codes(diags)


class TestL018:
    SOURCE = """\
property paced "refreshable deadline"
key PORT
observe request : arrival
    where tcp.dst == 7001
    bind PORT = in_port
absent reply : arrival within 5 refresh on_prior
    where tcp.src == 7001
"""

    def test_fires_on_attacker_opened_deadline(self):
        _, diags = analyze(self.SOURCE)
        (l018,) = [d for d in diags if d.code == "L018"]
        assert "within 5" in l018.message
        assert "refresh on_prior" in l018.message
        assert any("attacker-matchable" in n.message for n in l018.related)

    def test_silent_when_the_opener_needs_a_predicate(self):
        _, diags = analyze("""\
property p "opaque opener"
key D
observe request : arrival
    where @internal
    bind D = ipv4.src
absent reply : arrival within 5
    where tcp.src == 7001
""")
        assert "L018" not in codes(diags)

    def test_silent_when_the_opener_matches_trusted_fields(self):
        _, diags = analyze("""\
property p "the network must cooperate"
key D
observe request : arrival
    where in_port == 3
    bind D = ipv4.src
absent reply : arrival within 5
    where tcp.src == 7001
""")
        assert "L018" not in codes(diags)


class TestL019:
    def test_fires_when_the_whole_path_is_forgeable(self):
        _, diags = analyze(FLOODABLE)
        (l019,) = [d for d in diags if d.code == "L019"]
        assert "spoofable" in l019.message
        assert len(l019.related) == 2  # one note per stage

    def test_silent_when_the_violation_is_an_absence(self):
        _, diags = analyze(TestL018.SOURCE)
        assert "L019" not in codes(diags)

    def test_silent_when_a_stage_needs_the_switch(self):
        _, diags = analyze("""\
property p "egress needs the pipeline"
key D
observe a : arrival
    bind D = ipv4.src
observe b : egress
    where ipv4.src == $D
""")
        assert "L019" not in codes(diags)


class TestResourceBounds:
    def test_bound_is_key_cardinality_product(self):
        report, _ = analyze("""\
property p "one 16-bit key var"
key P
observe a : arrival
    bind P = tcp.src
observe b : arrival
    where tcp.src == $P
""")
        assert report.instance_bound == 1 << 16
        assert not report.capped

    def test_wide_keys_cap_at_max_bound(self):
        report, _ = analyze(FLOODABLE)  # 32-bit ip x 16-bit port is fine
        assert report.instance_bound == (1 << 32) * (1 << 16)
        report, _ = analyze("""\
property p "two macs saturate"
key A, B
observe a : arrival
    bind A = eth.src, B = eth.dst
observe b : arrival
    where eth.src == $A and eth.dst == $B
""")
        assert report.capped
        assert report.instance_bound == MAX_BOUND

    def test_interval_facts_shrink_the_bound(self):
        report, _ = analyze("""\
property p "range-bounded key"
key P
observe knock : arrival
    where tcp.dst >= 7000 and tcp.dst < 7008
    bind P = tcp.dst
observe open : arrival
    where tcp.dst == $P
""")
        assert report.labels["P"].cardinality() == 8
        assert report.instance_bound == 8

    def test_suggested_cap_rides_the_json_report(self):
        report = lint_source(FLOODABLE)
        (prop,) = report.properties
        taint = prop.taint
        assert taint.suggested_max_instances == DEFAULT_INSTANCE_CAP

    def test_suggested_policy_shape(self):
        policy = suggested_policy(1 << 40, attacker_keyed=True)
        assert policy.max_instances == DEFAULT_INSTANCE_CAP
        assert policy.eviction == EVICT_LRU
        small = suggested_policy(100, attacker_keyed=False)
        assert small.max_instances == 100
        assert small.eviction == EVICT_REJECT
        with pytest.raises(ValueError):
            suggested_policy(0)


class TestEngineWiring:
    def test_taint_report_attached_to_property_report(self):
        report = lint_source(FLOODABLE)
        (prop,) = report.properties
        assert prop.taint is not None
        assert prop.taint.key_vars == ("A", "P")

    def test_taint_pass_can_be_disabled(self):
        from repro.lint import LintOptions

        report = lint_source(FLOODABLE, options=LintOptions(taint=False))
        assert not [d for d in report.all_diagnostics()
                    if d.code in ("L017", "L018", "L019")]

    def test_related_notes_are_position_sorted(self):
        _, diags = analyze(FLOODABLE)
        for diag in diags:
            positions = [(n.line, n.column) for n in diag.related]
            assert positions == sorted(positions)
