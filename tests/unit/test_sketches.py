"""Unit tests: count-min sketch and heavy-hitter detection."""

import random

import pytest

from repro.backends.sketches import CountMinSketch, HeavyHitterDetector
from repro.packet import tcp_packet
from repro.switch.events import PacketArrival, PacketEgress, EgressAction
from repro.switch.registers import StateCostMeter


def arr(packet, t=0.0):
    return PacketArrival(switch_id="s", time=t, packet=packet, in_port=1)


def flow_packet(i, count_port=80):
    return tcp_packet(1, 2, f"10.0.{i // 250}.{i % 250 + 1}",
                      "198.51.100.1", 1000 + i % 500, count_port)


class TestCountMinSketch:
    def test_estimate_counts(self):
        cms = CountMinSketch(width=256, depth=4)
        for _ in range(7):
            cms.update(("a",))
        cms.update(("b",))
        assert cms.estimate(("a",)) >= 7
        assert cms.estimate(("b",)) >= 1
        assert cms.estimate(("never",)) >= 0

    def test_never_undercounts(self):
        rng = random.Random(3)
        cms = CountMinSketch(width=64, depth=3)
        truth = {}
        for _ in range(2000):
            key = (rng.randint(1, 40),)
            truth[key] = truth.get(key, 0) + 1
            cms.update(key)
        for key, count in truth.items():
            assert cms.estimate(key) >= count

    def test_wider_sketch_overcounts_less(self):
        rng = random.Random(5)
        keys = [(i,) for i in range(200)]
        updates = [rng.choice(keys) for _ in range(5000)]
        truth = {}
        for key in updates:
            truth[key] = truth.get(key, 0) + 1

        def total_error(width):
            cms = CountMinSketch(width=width, depth=4)
            for key in updates:
                cms.update(key)
            return sum(cms.estimate(k) - c for k, c in truth.items())

        assert total_error(2048) <= total_error(64)

    def test_updates_are_fast_path(self):
        meter = StateCostMeter()
        cms = CountMinSketch(width=64, depth=4, meter=meter)
        cms.update(("x",))
        assert meter.fast_updates == 4  # one write per row
        assert meter.slow_updates == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch(depth=0)


class TestHeavyHitterDetector:
    def test_reports_flow_crossing_threshold(self):
        detector = HeavyHitterDetector(threshold=10, exact=True)
        reports = []
        p = flow_packet(1)
        for k in range(15):
            report = detector.observe(arr(p.refreshed(), t=k * 0.1))
            if report:
                reports.append(report)
        assert len(reports) == 1  # reported exactly once
        assert reports[0].estimated >= 10
        assert reports[0].first_reported_at == pytest.approx(0.9)

    def test_small_flows_not_reported(self):
        detector = HeavyHitterDetector(threshold=10, exact=True)
        for i in range(50):
            detector.observe(arr(flow_packet(i)))  # 1 packet per flow
        assert detector.reported == {}

    def test_non_ip_and_non_arrival_ignored(self):
        from repro.packet import ethernet

        detector = HeavyHitterDetector(threshold=1)
        assert detector.observe(arr(ethernet(1, 2))) is None
        egress = PacketEgress(switch_id="s", time=0.0, packet=flow_packet(1),
                              out_port=2, in_port=1,
                              action=EgressAction.UNICAST)
        assert detector.observe(egress) is None
        assert detector.packets_seen == 0

    def test_perfect_recall(self):
        rng = random.Random(11)
        detector = HeavyHitterDetector(threshold=20, width=512, depth=4,
                                       exact=True)
        packets = []
        for flow in range(5):  # 5 elephants
            packets += [flow_packet(flow) for _ in range(30)]
        for flow in range(5, 105):  # 100 mice
            packets += [flow_packet(flow) for _ in range(2)]
        rng.shuffle(packets)
        for k, p in enumerate(packets):
            detector.observe(arr(p.refreshed(), t=k * 1e-3))
        assert detector.recall() == 1.0
        assert len(detector.true_heavy_hitters()) == 5

    def test_false_positives_bounded_with_wide_sketch(self):
        detector = HeavyHitterDetector(threshold=20, width=4096, depth=4,
                                       exact=True)
        for flow in range(3):
            for k in range(25):
                detector.observe(arr(flow_packet(flow).refreshed()))
        for flow in range(3, 203):
            detector.observe(arr(flow_packet(flow)))
        assert detector.false_positives() == 0

    def test_exact_required_for_accuracy_queries(self):
        detector = HeavyHitterDetector(threshold=5)
        with pytest.raises(ValueError):
            detector.recall()

    def test_live_on_a_switch(self):
        from repro.netsim import single_switch_network

        net, switch, hosts = single_switch_network(2)
        detector = HeavyHitterDetector(threshold=5)
        detector.attach(switch)
        for k in range(8):
            hosts[0].send_at(k * 0.01, flow_packet(1).refreshed())
        net.run()
        assert len(detector.reported) == 1
