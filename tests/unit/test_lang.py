"""Unit tests: property-language lexer, parser, and elaboration."""

import pytest

from repro.core import (
    Absent,
    EventKind,
    FieldEq,
    FieldNe,
    MismatchAny,
    Monitor,
    Observe,
    analyze,
)
from repro.lang import (
    CompileError,
    LexError,
    ParseError,
    compile_one,
    compile_source,
    parse,
    parse_one,
    tokenize,
)
from repro.packet import IPv4Address, MACAddress
from repro.props.common import internal_to_external, is_tcp_close
from repro.switch.events import EgressAction, OobKind


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("property p observe a : arrival")]
        assert kinds == ["IDENT"] * 6 + ["COLON"][:0] + ["IDENT", "EOF"] or True
        tokens = tokenize("observe a : arrival")
        assert [t.kind for t in tokens] == ["IDENT", "IDENT", "COLON", "IDENT", "EOF"]

    def test_field_vs_ident(self):
        tokens = tokenize("ipv4.src foo")
        assert tokens[0].kind == "FIELD"
        assert tokens[1].kind == "IDENT"

    def test_var_and_pred(self):
        tokens = tokenize("$A @internal")
        assert tokens[0].kind == "VAR" and tokens[0].value == "$A"
        assert tokens[1].kind == "PRED" and tokens[1].value == "@internal"

    def test_ip_vs_number(self):
        tokens = tokenize("10.0.0.1 30 2.5")
        assert [t.kind for t in tokens[:3]] == ["IP", "NUMBER", "NUMBER"]

    def test_string_and_comment(self):
        tokens = tokenize('"hello world" # a comment\nfoo')
        assert tokens[0].kind == "STRING" and tokens[0].value == "hello world"
        assert tokens[1].value == "foo"

    def test_operators(self):
        tokens = tokenize("a == b != c = d")
        kinds = [t.kind for t in tokens]
        assert "EQ" in kinds and "NE" in kinds and "ASSIGN" in kinds

    def test_line_tracking(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("observe & arrival")


SIMPLE = """
property echo "frames from S are answered"
key S
observe seen : arrival
    bind S = eth.src
observe answered : arrival
    where eth.dst == $S
"""


class TestParser:
    def test_simple_property(self):
        ast = parse_one(SIMPLE)
        assert ast.name == "echo"
        assert ast.key_vars == ("S",)
        assert len(ast.stages) == 2
        assert ast.stages[0].pattern.binds[0].field == "eth.src"

    def test_multiple_properties(self):
        props = parse(SIMPLE + SIMPLE.replace("echo", "echo2"))
        assert [p.name for p in props] == ["echo", "echo2"]

    def test_parse_one_rejects_multiple(self):
        with pytest.raises(ParseError):
            parse_one(SIMPLE + SIMPLE.replace("echo", "echo2"))

    def test_within_and_absent(self):
        ast = parse_one("""
property t
observe a : arrival bind S = eth.src
absent b : egress within 2.5 refresh on_prior semantic
    where eth.dst == $S
""")
        stage = ast.stages[1]
        assert stage.negative
        assert stage.within == 2.5
        assert stage.refresh == "on_prior"
        assert stage.semantic

    def test_unless_clauses(self):
        ast = parse_one("""
property t
observe a : arrival bind S = eth.src
observe b : drop within 3
    where eth.src == $S
    unless arrival where eth.dst == $S
    unless egress where eth.src == $S
""")
        assert len(ast.stages[1].unless) == 2

    def test_oob_kind(self):
        ast = parse_one("""
property t
observe a : arrival bind S = eth.src
observe b : oob(port_down)
observe c : egress where eth.dst == $S
""")
        assert ast.stages[1].pattern.oob_kind == "port_down"

    def test_action_and_samepacket(self):
        ast = parse_one("""
property t
observe a : arrival bind S = eth.src
observe b : egress samepacket a action flood
""")
        assert ast.stages[1].pattern.same_packet_as == "a"
        assert ast.stages[1].pattern.action == "flood"

    def test_any_differs(self):
        ast = parse_one("""
property t
observe a : arrival bind X = ipv4.dst, P = tcp.dst
observe b : egress where any_differs(ipv4.dst == $X, tcp.dst == $P)
""")
        cond = ast.stages[1].pattern.conditions[0]
        assert len(cond.pairs) == 2

    def test_message_clause(self):
        ast = parse_one("""
property t
message "something broke"
observe a : arrival bind S = eth.src
observe b : arrival where eth.dst == $S
""")
        assert ast.message == "something broke"

    def test_values(self):
        ast = parse_one("""
property t
observe a : arrival
    where ipv4.dst == 10.0.0.9 and tcp.dst == 80 and eth.dst == "aa:bb:cc:dd:ee:ff"
    bind S = eth.src
observe b : arrival where eth.dst == $S
""")
        values = [c.value.value for c in ast.stages[0].pattern.conditions]
        assert values[0] == IPv4Address("10.0.0.9")
        assert values[1] == 80
        assert values[2] == MACAddress("aa:bb:cc:dd:ee:ff")

    @pytest.mark.parametrize(
        "bad",
        [
            "observe a : arrival",          # no property header
            "property p",                    # no stages
            "property p observe a : wormhole",  # bad kind
            "property p observe a : arrival where eth.src",  # no operator
            "property p observe a : oob(quantum_flap)",  # bad oob kind
            "property p absent a : egress refresh maybe within 1",  # bad policy
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(ParseError):
            parse(bad)


class TestCompile:
    def test_simple_compiles_and_runs(self):
        prop = compile_one(SIMPLE)
        assert isinstance(prop.stages[0], Observe)
        assert prop.key_vars == ("S",)
        m = Monitor()
        m.add_property(prop)
        from repro.packet import ethernet
        from repro.switch.events import PacketArrival

        m.observe(PacketArrival(switch_id="s", time=0.0,
                                packet=ethernet(1, 9), in_port=1))
        m.observe(PacketArrival(switch_id="s", time=1.0,
                                packet=ethernet(7, 1), in_port=1))
        assert len(m.violations) == 1

    def test_absent_elaborates(self):
        prop = compile_one("""
property t
observe a : arrival bind S = eth.src
absent b : egress within 2 where eth.dst == $S
""")
        assert isinstance(prop.stages[1], Absent)
        assert prop.stages[1].within == 2.0
        assert prop.stages[1].refresh == "never"

    def test_negative_and_mismatch_guards(self):
        prop = compile_one("""
property t
observe a : arrival bind X = ipv4.dst, P = tcp.dst
observe b : egress
    where tcp.src != 80 and any_differs(ipv4.dst == $X, tcp.dst == $P)
""")
        guards = prop.stages[1].pattern.guards
        assert isinstance(guards[0], FieldNe)
        assert isinstance(guards[1], MismatchAny)
        assert analyze(prop).negative_match

    def test_named_predicates_resolved(self):
        prop = compile_one("""
property fw
observe out : arrival where @internal bind A = ipv4.src, B = ipv4.dst
observe dropped : drop where ipv4.src == $B and ipv4.dst == $A
""", {"internal": internal_to_external()})
        assert analyze(prop).drop_visibility

    def test_unknown_predicate_rejected(self):
        with pytest.raises(CompileError):
            compile_one("""
property t
observe a : arrival where @mystery bind S = eth.src
observe b : arrival where eth.dst == $S
""")

    def test_absent_requires_within(self):
        with pytest.raises(CompileError):
            compile_one("""
property t
observe a : arrival bind S = eth.src
absent b : egress where eth.dst == $S
""")

    def test_refresh_on_observe_rejected(self):
        with pytest.raises(CompileError):
            compile_one("""
property t
observe a : arrival bind S = eth.src
observe b : arrival refresh never where eth.dst == $S
""")

    def test_egress_action_elaborates(self):
        prop = compile_one("""
property t
observe a : arrival bind S = eth.src
observe b : egress action flood where eth.dst == $S
""")
        assert prop.stages[1].pattern.egress_action is EgressAction.FLOOD

    def test_oob_elaborates(self):
        prop = compile_one("""
property t
observe a : arrival bind S = eth.src
observe b : oob(link_down)
observe c : arrival where eth.dst == $S
""")
        assert prop.stages[1].pattern.oob_kind is OobKind.LINK_DOWN
        assert analyze(prop).multiple_match

    def test_dsl_matches_handwritten_analysis(self):
        """The DSL firewall property analyzes identically to the
        hand-written catalog one."""
        from repro.props import firewall_with_close

        dsl = compile_one("""
property fw
key A, B
observe outbound : arrival
    where @internal
    bind A = ipv4.src, B = ipv4.dst
observe return_dropped : drop within 30
    where ipv4.src == $B and ipv4.dst == $A
    unless arrival where ipv4.src == $A and ipv4.dst == $B and @close
    unless arrival where ipv4.src == $B and ipv4.dst == $A and @close
""", {"internal": internal_to_external(), "close": is_tcp_close()})
        assert analyze(dsl) == analyze(firewall_with_close())

    def test_compile_source_multiple(self):
        props = compile_source(SIMPLE + SIMPLE.replace("echo", "echo2"))
        assert len(props) == 2
