"""Unit tests for ``repro send`` reconnect/retry behavior.

All network and clock effects are injected: a scripted dialer either
refuses or hands out fake sockets that die after a set number of writes,
and ``sleep`` just records what it was asked to wait.  That makes the
backoff schedule and the resend-the-torn-chunk guarantee exactly
checkable.
"""

import pytest

from repro.serve.send import stream_trace

HEADER = b'{"kind": "TraceHeader", "schema": 1}\n'
EVENTS = [
    b'{"kind": "PacketArrival", "time": %d.0}\n' % i for i in range(5)
]


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_bytes(HEADER + b"".join(EVENTS))
    return str(path)


class FakeSocket:
    """Accepts ``fail_after`` sendall calls, then raises on every write."""

    def __init__(self, fail_after=None):
        self.sent = []
        self.closed = False
        self.fail_after = fail_after

    def sendall(self, data):
        if self.fail_after is not None and len(self.sent) >= self.fail_after:
            raise OSError("connection reset by peer")
        self.sent.append(data)

    def close(self):
        self.closed = True


class ScriptedDialer:
    """Connect callable following a plan of "refuse" / FakeSocket entries."""

    def __init__(self, plan):
        self.plan = list(plan)
        self.sockets = []

    def __call__(self, host, port):
        if not self.plan:
            raise AssertionError("dialer called more times than planned")
        action = self.plan.pop(0)
        if action == "refuse":
            raise OSError("connection refused")
        self.sockets.append(action)
        return action


def fake_clock():
    state = {"t": 0.0}

    def monotonic():
        state["t"] += 1e-3
        return state["t"]

    return monotonic


def run(trace_path, dialer, sleeps=None, **kwargs):
    return stream_trace(
        trace_path, "127.0.0.1", 9999,
        monotonic=fake_clock(),
        sleep=(sleeps.append if sleeps is not None else lambda s: None),
        connect=dialer, **kwargs)


class TestDialRetry:
    def test_no_retry_propagates_refusal(self, trace_path):
        dialer = ScriptedDialer(["refuse"])
        with pytest.raises(OSError, match="refused"):
            run(trace_path, dialer)

    def test_refused_then_accepted(self, trace_path):
        dialer = ScriptedDialer(["refuse", "refuse", FakeSocket()])
        sleeps = []
        result = run(trace_path, dialer, sleeps=sleeps, retry=3)
        assert result.events == len(EVENTS)
        assert result.reconnects == 1  # one successful re-dial
        assert sleeps == [0.5, 1.0]  # backoff doubles per consecutive miss
        assert b"".join(dialer.sockets[0].sent) == HEADER + b"".join(EVENTS)

    def test_budget_exhaustion_raises(self, trace_path):
        dialer = ScriptedDialer(["refuse"] * 3)
        sleeps = []
        with pytest.raises(OSError, match="refused"):
            run(trace_path, dialer, sleeps=sleeps, retry=2)
        assert not dialer.plan  # initial attempt + 2 retries all consumed
        assert sleeps == [0.5, 1.0]

    def test_backoff_is_configurable(self, trace_path):
        dialer = ScriptedDialer(["refuse"] * 4)
        sleeps = []
        with pytest.raises(OSError):
            run(trace_path, dialer, sleeps=sleeps, retry=3, backoff=0.25)
        assert sleeps == [0.25, 0.5, 1.0]

    def test_zero_backoff_allowed(self, trace_path):
        dialer = ScriptedDialer(["refuse", FakeSocket()])
        sleeps = []
        result = run(trace_path, dialer, sleeps=sleeps, retry=1, backoff=0.0)
        assert sleeps == [0.0]
        assert result.events == len(EVENTS)


class TestMidSendReconnect:
    def test_torn_chunk_is_resent_whole(self, trace_path):
        first = FakeSocket(fail_after=1)
        second = FakeSocket()
        dialer = ScriptedDialer([first, second])
        result = run(trace_path, dialer, retry=1, chunk=2)
        # chunks: [header, e0] ok | [e1, e2] dies | resent on socket 2
        assert first.sent == [HEADER + EVENTS[0]]
        assert first.closed
        assert second.sent == [EVENTS[1] + EVENTS[2], EVENTS[3] + EVENTS[4]]
        assert result.events == len(EVENTS)  # nothing lost, nothing double
        assert result.reconnects == 1

    def test_backoff_resets_after_successful_connection(self, trace_path):
        # refuse, refuse, accept-then-die, refuse, accept: the post-success
        # refusal backs off from the base again, not from where it left off.
        first = FakeSocket(fail_after=1)
        dialer = ScriptedDialer(
            ["refuse", "refuse", first, "refuse", FakeSocket()])
        sleeps = []
        result = run(trace_path, dialer, sleeps=sleeps, retry=3, chunk=2)
        assert sleeps == [0.5, 1.0, 0.5]
        assert result.reconnects == 2
        assert result.events == len(EVENTS)

    def test_repeat_spans_reconnects(self, trace_path):
        first = FakeSocket(fail_after=1)
        second = FakeSocket()
        dialer = ScriptedDialer([first, second])
        result = run(trace_path, dialer, retry=1, chunk=6, repeat=2)
        # round 1 sent whole, round 2's single chunk dies and is resent
        assert result.events == 2 * len(EVENTS)
        assert result.reconnects == 1
        assert second.sent == [HEADER + b"".join(EVENTS)]


class TestValidation:
    def test_negative_retry_rejected(self, trace_path):
        with pytest.raises(ValueError, match="retry"):
            stream_trace(trace_path, "h", 1, retry=-1)

    def test_negative_backoff_rejected(self, trace_path):
        with pytest.raises(ValueError, match="backoff"):
            stream_trace(trace_path, "h", 1, backoff=-0.1)

    def test_result_reports_reconnects_in_dict(self, trace_path):
        dialer = ScriptedDialer(["refuse", FakeSocket()])
        result = run(trace_path, dialer, retry=1)
        assert result.to_dict()["reconnects"] == 1
