"""Unit tests: virtual clock and discrete-event scheduler."""

import pytest

from repro.netsim.clock import ClockError, VirtualClock
from repro.netsim.scheduler import EventScheduler


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock(-1.0)

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.advance(2.0)
        assert clock.now() == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock().advance(-0.1)

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_advance_to_same_time_is_noop(self):
        clock = VirtualClock(3.0)
        clock.advance_to(3.0)
        assert clock.now() == 3.0

    def test_advance_to_past_rejected(self):
        clock = VirtualClock(5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.0)


class TestEventScheduler:
    def test_runs_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.call_at(2.0, lambda: fired.append("b"))
        sched.call_at(1.0, lambda: fired.append("a"))
        sched.call_at(3.0, lambda: fired.append("c"))
        assert sched.run() == 3
        assert fired == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        sched = EventScheduler()
        fired = []
        for name in "abc":
            sched.call_at(1.0, lambda n=name: fired.append(n))
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_times(self):
        sched = EventScheduler()
        times = []
        sched.call_at(1.5, lambda: times.append(sched.clock.now()))
        sched.call_at(4.0, lambda: times.append(sched.clock.now()))
        sched.run()
        assert times == [1.5, 4.0]

    def test_call_after_is_relative(self):
        sched = EventScheduler()
        sched.clock.advance_to(10.0)
        fired = []
        sched.call_after(2.0, lambda: fired.append(sched.clock.now()))
        sched.run()
        assert fired == [12.0]

    def test_scheduling_in_past_rejected(self):
        sched = EventScheduler()
        sched.clock.advance_to(5.0)
        with pytest.raises(ValueError):
            sched.call_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().call_after(-1.0, lambda: None)

    def test_cancel(self):
        sched = EventScheduler()
        fired = []
        handle = sched.call_at(1.0, lambda: fired.append("x"))
        assert sched.cancel(handle) is True
        sched.run()
        assert fired == []

    def test_cancel_twice_returns_false(self):
        sched = EventScheduler()
        handle = sched.call_at(1.0, lambda: None)
        assert sched.cancel(handle) is True
        assert sched.cancel(handle) is False

    def test_cancel_after_fire_returns_false(self):
        sched = EventScheduler()
        handle = sched.call_at(1.0, lambda: None)
        sched.run()
        assert sched.cancel(handle) is False

    def test_pending_counts_live_events(self):
        sched = EventScheduler()
        h1 = sched.call_at(1.0, lambda: None)
        sched.call_at(2.0, lambda: None)
        assert sched.pending() == 2
        sched.cancel(h1)
        assert sched.pending() == 1

    def test_run_until_leaves_later_events(self):
        sched = EventScheduler()
        fired = []
        sched.call_at(1.0, lambda: fired.append("a"))
        sched.call_at(5.0, lambda: fired.append("b"))
        assert sched.run(until=2.0) == 1
        assert fired == ["a"]
        assert sched.clock.now() == 2.0
        assert sched.pending() == 1

    def test_run_until_advances_clock_when_idle(self):
        sched = EventScheduler()
        sched.run(until=7.0)
        assert sched.clock.now() == 7.0

    def test_events_may_schedule_events(self):
        sched = EventScheduler()
        fired = []

        def first():
            fired.append("first")
            sched.call_after(1.0, lambda: fired.append("second"))

        sched.call_at(1.0, first)
        sched.run()
        assert fired == ["first", "second"]
        assert sched.clock.now() == 2.0

    def test_max_events_guard(self):
        sched = EventScheduler()

        def reschedule():
            sched.call_after(0.001, reschedule)

        sched.call_at(0.0, reschedule)
        with pytest.raises(RuntimeError):
            sched.run(max_events=100)

    def test_next_event_time(self):
        sched = EventScheduler()
        assert sched.next_event_time() is None
        handle = sched.call_at(3.0, lambda: None)
        sched.call_at(5.0, lambda: None)
        assert sched.next_event_time() == 3.0
        sched.cancel(handle)
        assert sched.next_event_time() == 5.0

    def test_step_returns_false_when_idle(self):
        assert EventScheduler().step() is False
