"""Unit tests: L2-L4 header encode/decode and accessors."""

import pytest

from repro.packet.addresses import IPv4Address, MACAddress
from repro.packet.headers import (
    ICMP,
    TCP,
    UDP,
    Arp,
    ArpOp,
    Ethernet,
    EtherType,
    HeaderError,
    IPProto,
    IPv4,
    TCPFlags,
    Vlan,
)


class TestEthernet:
    def test_roundtrip(self):
        eth = Ethernet(src=MACAddress(1), dst=MACAddress(2), ethertype=EtherType.IPV4)
        decoded, rest = Ethernet.decode(eth.encode())
        assert decoded == eth
        assert rest == b""

    def test_decode_leaves_tail(self):
        eth = Ethernet(src=MACAddress(1), dst=MACAddress(2), ethertype=EtherType.ARP)
        _, rest = Ethernet.decode(eth.encode() + b"tail")
        assert rest == b"tail"

    def test_truncated_rejected(self):
        with pytest.raises(HeaderError):
            Ethernet.decode(b"\x00" * 13)

    def test_fields(self):
        eth = Ethernet(src=MACAddress(1), dst=MACAddress(2), ethertype=0x0800)
        fields = eth.fields()
        assert fields["eth.src"] == MACAddress(1)
        assert fields["eth.dst"] == MACAddress(2)
        assert fields["eth.type"] == 0x0800


class TestVlan:
    def test_roundtrip(self):
        vlan = Vlan(vid=100, pcp=3, ethertype=EtherType.IPV4)
        decoded, rest = Vlan.decode(vlan.encode())
        assert decoded == vlan

    def test_bad_vid(self):
        with pytest.raises(HeaderError):
            Vlan(vid=4096)

    def test_bad_pcp(self):
        with pytest.raises(HeaderError):
            Vlan(vid=1, pcp=8)


class TestArp:
    def _arp(self):
        return Arp(
            op=ArpOp.REQUEST,
            sender_mac=MACAddress(1),
            sender_ip=IPv4Address("10.0.0.1"),
            target_mac=MACAddress.ZERO,
            target_ip=IPv4Address("10.0.0.2"),
        )

    def test_roundtrip(self):
        arp = self._arp()
        decoded, _ = Arp.decode(arp.encode())
        assert decoded == arp

    def test_request_reply_predicates(self):
        assert self._arp().is_request
        reply = Arp(
            op=ArpOp.REPLY,
            sender_mac=MACAddress(2),
            sender_ip=IPv4Address("10.0.0.2"),
            target_mac=MACAddress(1),
            target_ip=IPv4Address("10.0.0.1"),
        )
        assert reply.is_reply and not reply.is_request

    def test_truncated_rejected(self):
        with pytest.raises(HeaderError):
            Arp.decode(b"\x00" * 27)

    def test_wrong_hw_type_rejected(self):
        data = bytearray(self._arp().encode())
        data[1] = 99  # corrupt htype
        with pytest.raises(HeaderError):
            Arp.decode(bytes(data))


class TestIPv4:
    def _ip(self, **kw):
        defaults = dict(
            src=IPv4Address("10.0.0.1"), dst=IPv4Address("10.0.0.2"),
            proto=IPProto.TCP,
        )
        defaults.update(kw)
        return IPv4(**defaults)

    def test_roundtrip(self):
        ip = self._ip(ttl=17, dscp=10, ident=99, payload_len=40)
        decoded, _ = IPv4.decode(ip.encode())
        assert decoded.src == ip.src
        assert decoded.dst == ip.dst
        assert decoded.ttl == 17
        assert decoded.dscp == 10
        assert decoded.payload_len == 40

    def test_bad_ttl(self):
        with pytest.raises(HeaderError):
            self._ip(ttl=256)

    def test_decremented(self):
        assert self._ip(ttl=5).decremented().ttl == 4

    def test_decrement_zero_rejected(self):
        with pytest.raises(HeaderError):
            self._ip(ttl=0).decremented()

    def test_non_v4_rejected(self):
        data = bytearray(self._ip().encode())
        data[0] = (6 << 4) | 5
        with pytest.raises(HeaderError):
            IPv4.decode(bytes(data))

    def test_options_unsupported(self):
        data = bytearray(self._ip().encode())
        data[0] = (4 << 4) | 6  # ihl = 24 bytes
        with pytest.raises(HeaderError):
            IPv4.decode(bytes(data))


class TestTCP:
    def test_roundtrip(self):
        tcp = TCP(src_port=1234, dst_port=80, seq=7, ack=9,
                  flags=TCPFlags.SYN | TCPFlags.ACK, window=1000)
        decoded, rest = TCP.decode(tcp.encode())
        assert decoded == tcp
        assert rest == b""

    def test_port_range(self):
        with pytest.raises(HeaderError):
            TCP(src_port=65536, dst_port=80)

    def test_flag_predicates(self):
        assert TCP(src_port=1, dst_port=2, flags=TCPFlags.SYN).is_syn
        assert not TCP(src_port=1, dst_port=2,
                       flags=TCPFlags.SYN | TCPFlags.ACK).is_syn
        assert TCP(src_port=1, dst_port=2, flags=TCPFlags.FIN | TCPFlags.ACK).is_fin
        assert TCP(src_port=1, dst_port=2, flags=TCPFlags.RST).is_rst

    def test_data_offset_skips_options(self):
        tcp = TCP(src_port=1, dst_port=2)
        raw = bytearray(tcp.encode() + b"\x01\x01\x01\x01payload")
        raw[12] = 6 << 4  # 24-byte header: 4 bytes of options
        decoded, rest = TCP.decode(bytes(raw))
        assert decoded.src_port == 1
        assert rest == b"payload"

    def test_bad_offset_rejected(self):
        raw = bytearray(TCP(src_port=1, dst_port=2).encode())
        raw[12] = 4 << 4  # < 20 bytes
        with pytest.raises(HeaderError):
            TCP.decode(bytes(raw))


class TestUDP:
    def test_roundtrip(self):
        udp = UDP(src_port=53, dst_port=5353, payload_len=11)
        decoded, _ = UDP.decode(udp.encode())
        assert decoded == udp

    def test_truncated(self):
        with pytest.raises(HeaderError):
            UDP.decode(b"\x00" * 7)


class TestICMP:
    def test_roundtrip(self):
        icmp = ICMP(icmp_type=ICMP.TYPE_ECHO_REQUEST, ident=3, seq=4)
        decoded, _ = ICMP.decode(icmp.encode())
        assert decoded == icmp

    def test_fields(self):
        fields = ICMP(icmp_type=8, code=0).fields()
        assert fields["icmp.type"] == 8
