"""Unit tests: topology wiring, trace recording/replay, workloads."""

import pytest

from repro.netsim import (
    EventScheduler,
    Network,
    TraceRecorder,
    TraceReplayer,
    arp_request_storm,
    l2_pairs,
    poisson_arrivals,
    send_all,
    single_switch_network,
    tcp_conversations,
    udp_flows,
)
from repro.packet import IPv4Address, MACAddress, ethernet
from repro.switch.events import PacketArrival
from repro.switch.match import MatchSpec
from repro.switch.actions import Output


class TestTopology:
    def test_single_switch_network_shape(self):
        net, sw, hosts = single_switch_network(4)
        assert len(hosts) == 4
        assert hosts[0].mac == MACAddress(1)
        assert hosts[2].ip == IPv4Address("10.0.0.3")
        assert hosts[3].port == 4

    def test_host_send_delivers_through_switch(self):
        net, sw, hosts = single_switch_network(2)
        sw.install_rule(MatchSpec(eth__dst=MACAddress(2)), [Output(2)],
                        priority=200)
        hosts[0].send(ethernet(1, 2))
        net.run()
        assert len(hosts[1].received) == 1

    def test_send_at_schedules_future(self):
        net, sw, hosts = single_switch_network(2)
        hosts[0].send_at(5.0, ethernet(1, 2))
        net.run()
        assert net.now >= 5.0
        assert hosts[1].received[0].time >= 5.0

    def test_unattached_host_send_fails(self):
        from repro.netsim.topology import Host

        host = Host("h", MACAddress(1), IPv4Address("10.0.0.1"),
                    EventScheduler())
        with pytest.raises(RuntimeError):
            host.send(ethernet(1, 2))

    def test_on_receive_callback(self):
        net, sw, hosts = single_switch_network(2)
        got = []
        hosts[1].on_receive = lambda host, pkt: got.append(pkt)
        hosts[0].send(ethernet(1, 2))
        net.run()
        assert len(got) == 1

    def test_switch_link_carries_both_ways(self):
        net = Network()
        a = net.add_switch("a", num_ports=2)
        b = net.add_switch("b", num_ports=2)
        net.link(a, 2, b, 2)
        rec_a, rec_b = TraceRecorder(), TraceRecorder()
        a.add_tap(rec_a)
        b.add_tap(rec_b)
        a.receive(ethernet(1, 2), in_port=1)  # floods out port 2 -> link -> b
        net.run()
        assert len(rec_b.arrivals) == 1

    def test_link_failure_stops_traffic_and_emits_oob(self):
        net = Network()
        a = net.add_switch("a", num_ports=2)
        b = net.add_switch("b", num_ports=2)
        link = net.link(a, 2, b, 2)
        rec_b = TraceRecorder()
        b.add_tap(rec_b)
        link.fail()
        assert not a.ports[2] and not b.ports[2]
        link.restore()
        assert a.ports[2] and b.ports[2]

    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_switch("a")
        with pytest.raises(ValueError):
            net.add_switch("a")


class TestTraces:
    def test_recorder_filters_by_kind(self):
        net, sw, hosts = single_switch_network(2)
        rec = TraceRecorder()
        sw.add_tap(rec)
        hosts[0].send(ethernet(1, 2))
        net.run()
        assert len(rec.arrivals) == 1
        assert len(rec.egresses) == 1
        assert len(rec) == 2
        rec.clear()
        assert len(rec) == 0

    def test_replayer_validates_order(self):
        p = ethernet(1, 2)
        good = [
            PacketArrival(switch_id="s", time=0.0, packet=p, in_port=1),
            PacketArrival(switch_id="s", time=1.0, packet=p, in_port=1),
        ]
        TraceReplayer(good)
        with pytest.raises(ValueError):
            TraceReplayer(list(reversed(good)))

    def test_replayer_delivers_to_all_sinks(self):
        p = ethernet(1, 2)
        events = [PacketArrival(switch_id="s", time=0.0, packet=p, in_port=1)]
        a, b = [], []
        assert TraceReplayer(events).replay(a.append, b.append) == 1
        assert len(a) == 1 and len(b) == 1


class TestWorkloads:
    def test_l2_pairs_deterministic(self):
        w1 = l2_pairs(4, 20, seed=3)
        w2 = l2_pairs(4, 20, seed=3)
        assert [t.src_host for t in w1] == [t.src_host for t in w2]
        assert len(w1) == 20

    def test_l2_pairs_no_self_traffic(self):
        for item in l2_pairs(3, 50, seed=1):
            assert item.packet.eth.src != item.packet.eth.dst

    def test_tcp_conversations_structure(self):
        convs = tcp_conversations(3, packets_per_flow=2)
        # 1 SYN + 2 data packets per flow
        assert len(convs) == 9
        syns = [c for c in convs if c.packet.headers[2].is_syn]
        assert len(syns) == 3

    def test_tcp_conversations_close_fraction(self):
        convs = tcp_conversations(10, packets_per_flow=0, close_fraction=1.0)
        fins = [c for c in convs if c.packet.headers[2].is_fin]
        assert len(fins) == 10

    def test_udp_flows_distinct_ports(self):
        flows = udp_flows(10)
        ports = {f.packet.l4_sport for f in flows}
        assert len(ports) == 10

    def test_arp_storm_period(self):
        storm = arp_request_storm(1, IPv4Address("10.0.0.9"), count=5,
                                  period=4.0)
        times = [t.time for t in storm]
        assert times == [0.0, 4.0, 8.0, 12.0, 16.0]

    def test_poisson_deterministic_and_bounded(self):
        a = list(poisson_arrivals(100.0, 1.0, seed=5))
        b = list(poisson_arrivals(100.0, 1.0, seed=5))
        assert a == b
        assert all(0.0 <= t < 1.0 for t in a)
        assert 50 < len(a) < 200  # ~100 expected

    def test_poisson_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            list(poisson_arrivals(0.0, 1.0))

    def test_send_all_schedules(self):
        net, sw, hosts = single_switch_network(3)
        count = send_all(hosts, l2_pairs(3, 10, seed=2))
        assert count == 10
        net.run()
        assert sw.stats.arrivals == 10
