"""Unit tests for the property linter (repro.lint).

Every rule code in the registry has a minimal fixture under
``tests/fixtures/lint/`` that demonstrably triggers it; the renderers are
pinned by golden files under ``tests/fixtures/lint/golden/``.
"""

import glob
import json
import os

import pytest

from repro.cli import main
from repro.lint import (
    RULES,
    Diagnostic,
    LintOptions,
    Severity,
    lint_file,
    lint_source,
    render_json,
    render_text,
    resolve_backend_name,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "..", "fixtures", "lint")


def fixture_path(name):
    return os.path.join(FIXTURES, name)


def fixture_for(code):
    matches = glob.glob(fixture_path(code + "_*.prop"))
    assert len(matches) == 1, f"expected exactly one fixture for {code}"
    return matches[0]


def lint_fixture(code):
    options = None
    if code == "L102":
        options = LintOptions(focus_backend="OpenFlow 1.3")
    return lint_file(fixture_for(code), options=options)


class TestEveryRuleHasATriggeringFixture:
    """The acceptance bar: each registered rule fires on its fixture."""

    @pytest.mark.parametrize("code", sorted(RULES))
    def test_rule_triggers_on_its_fixture(self, code):
        report = lint_fixture(code)
        codes = {d.code for d in report.all_diagnostics()}
        assert code in codes, (
            f"{os.path.basename(fixture_for(code))} did not trigger {code}; "
            f"got {sorted(codes)}"
        )

    @pytest.mark.parametrize("code", sorted(RULES))
    def test_rule_fires_at_its_registered_severity(self, code):
        report = lint_fixture(code)
        hits = [d for d in report.all_diagnostics() if d.code == code]
        assert hits and all(
            d.severity is RULES[code].severity for d in hits)

    def test_fixture_directory_has_no_strays(self):
        names = {os.path.basename(p).split("_")[0]
                 for p in glob.glob(fixture_path("*.prop"))}
        assert names == set(RULES)


class TestDiagnosticAnchoring:
    def test_positions_point_at_the_offending_token(self):
        report = lint_file(fixture_for("L001"))
        (diag,) = [d for d in report.all_diagnostics() if d.code == "L001"]
        with open(fixture_for("L001")) as fp:
            lines = fp.read().splitlines()
        assert diag.line >= 1
        assert "$X" in lines[diag.line - 1]

    def test_parse_error_carries_the_token_position(self):
        report = lint_source("property broken\nobserve s : zebra\n")
        (diag,) = report.all_diagnostics()
        assert diag.code == "L000"
        assert diag.line == 2

    def test_unregistered_code_is_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="L999", severity=Severity.ERROR, message="nope")


class TestSuppressions:
    SOURCE = """\
property suppressed "the unused bind is intentional"
key D
observe first : arrival
    # lint: disable=L002
    bind D = eth.src, extra = in_port
observe second : egress
    where eth.dst == $D
"""

    def test_line_annotation_silences_next_line(self):
        report = lint_source(self.SOURCE)
        assert not [d for d in report.all_diagnostics() if d.code == "L002"]
        assert report.suppressed == 1

    def test_file_annotation_silences_everywhere(self):
        source = self.SOURCE.replace(
            "# lint: disable=L002", "# just a comment")
        source = "# lint: disable-file=L002\n" + source
        report = lint_source(source)
        assert not [d for d in report.all_diagnostics() if d.code == "L002"]

    def test_without_annotation_the_warning_fires(self):
        source = self.SOURCE.replace("    # lint: disable=L002\n", "")
        report = lint_source(source)
        assert [d for d in report.all_diagnostics() if d.code == "L002"]
        assert report.suppressed == 0


class TestBackendResolution:
    def test_exact_case_insensitive(self):
        assert resolve_backend_name("varanus") == "Varanus"

    def test_unique_prefix(self):
        assert resolve_backend_name("OpenS") == "OpenState"

    def test_ambiguous_prefix_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend_name("Open")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend_name("nonesuch")


class TestRenderGolden:
    """The renderers are pinned: regenerate the goldens deliberately with
    ``python -m tests.regen_lint_goldens`` if the format changes."""

    GOLDEN_SOURCE_FILE = "golden_input.prop"

    def _report(self):
        with open(fixture_path(os.path.join("golden", self.GOLDEN_SOURCE_FILE))) as fp:
            return lint_source(fp.read(), path="golden_input.prop")

    def test_text_rendering_matches_golden(self):
        with open(fixture_path(os.path.join("golden", "report.txt"))) as fp:
            expected = fp.read()
        assert render_text([self._report()]) + "\n" == expected

    def test_json_rendering_matches_golden(self):
        with open(fixture_path(os.path.join("golden", "report.json"))) as fp:
            expected = fp.read()
        assert render_json([self._report()]) + "\n" == expected

    def test_json_is_valid_and_summarised(self):
        payload = json.loads(render_json([self._report()]))
        assert payload["summary"]["files"] == 1
        assert payload["files"][0]["path"] == "golden_input.prop"
        for entry in payload["files"][0]["properties"]:
            assert {"name", "elaborated", "diagnostics"} <= set(entry)


class TestCliLint:
    def test_error_fixture_exits_nonzero(self, capsys):
        assert main(["lint", fixture_for("L005")]) == 1
        out = capsys.readouterr().out
        assert "L005" in out and "error" in out

    def test_warning_only_fixture_exits_zero(self, capsys):
        assert main(["lint", fixture_for("L200")]) == 0
        out = capsys.readouterr().out
        assert "L200" in out

    def test_json_flag_emits_json(self, capsys):
        assert main(["lint", "--json", fixture_for("L200")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0

    def test_backend_focus_turns_info_into_error(self, capsys):
        path = fixture_for("L102")
        assert main(["lint", path]) == 0
        capsys.readouterr()
        assert main(["lint", "--backend", "OpenFlow 1.3", path]) == 1
        assert "L102" in capsys.readouterr().out

    def test_unknown_backend_is_a_usage_error(self, capsys):
        assert main(["lint", "--backend", "nonesuch",
                     fixture_for("L200")]) == 2

    def test_missing_file_is_an_error(self, capsys):
        assert main(["lint", "no/such/file.prop"]) == 1
        assert "L000" in capsys.readouterr().out

    def test_check_prints_lint_warnings_with_positions(self, capsys):
        assert main(["check", fixture_for("L002")]) == 0
        err = capsys.readouterr().err
        assert "L002" in err
        # position prefix path:line:col
        assert ":4:" in err or ":5:" in err

    def test_check_fails_on_lint_errors(self, capsys):
        assert main(["check", fixture_for("L005")]) == 1


class TestRuleRegistry:
    def test_codes_are_partitioned_by_family(self):
        for code in RULES:
            number = int(code[1:])
            if number == 0:
                continue
            assert 1 <= number <= 299

    def test_slugs_are_unique(self):
        slugs = [rule.slug for rule in RULES.values()]
        assert len(slugs) == len(set(slugs))

    def test_schema_knows_every_rewritable_field(self):
        from repro.lint.schema import FIELD_SCHEMA
        from repro.switch.rewrite import rewritable_fields

        missing = [f for f in rewritable_fields() if f not in FIELD_SCHEMA]
        assert not missing
