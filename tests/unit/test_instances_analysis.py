"""Unit tests: instance stores (Feature 8 machinery) and static analysis."""

import pytest

from repro.core import (
    Bind,
    EventKind,
    EventPattern,
    FieldEq,
    MatchKind,
    Observe,
    PropertySpec,
    Var,
    analyze,
    classify_match_kind,
    field_family,
    field_layer,
    stage_index_plan,
    uid_var,
)
from repro.core.instances import (
    IndexedInstanceStore,
    Instance,
    LinearInstanceStore,
    make_store,
)
from repro.props import (
    build_table1,
    firewall_basic,
    firewall_timed,
    firewall_with_close,
    learned_unicast_port,
    link_down_clears_learning,
    nat_reverse_translation,
)


def simple_prop():
    return PropertySpec(
        name="sp", description="",
        stages=(
            Observe("a", EventPattern(kind=EventKind.ARRIVAL,
                                      binds=(Bind("S", "eth.src"),))),
            Observe("b", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("eth.dst", Var("S")),))),
        ),
        key_vars=("S",),
    )


class TestInstanceStores:
    def _instance(self, prop, key=("k",), env=None):
        return Instance(prop, key, dict(env or {"S": "k"}), created_at=0.0)

    def test_add_and_by_key(self):
        prop = simple_prop()
        store = make_store(prop)
        inst = self._instance(prop)
        store.add(inst)
        assert store.by_key(("k",)) is inst

    def test_duplicate_live_key_rejected(self):
        prop = simple_prop()
        store = make_store(prop)
        store.add(self._instance(prop))
        with pytest.raises(ValueError):
            store.add(self._instance(prop))

    def test_dead_key_can_be_replaced(self):
        prop = simple_prop()
        store = make_store(prop)
        first = self._instance(prop)
        store.add(first)
        store.remove(first)
        second = self._instance(prop)
        store.add(second)
        assert store.by_key(("k",)) is second

    def test_indexed_candidates_hit(self):
        prop = simple_prop()
        store = IndexedInstanceStore(prop)
        inst = self._instance(prop, env={"S": "mac1"})
        store.add(inst)
        hits = list(store.candidates(1, {"eth.dst": "mac1"}))
        assert hits == [inst]

    def test_indexed_candidates_miss(self):
        prop = simple_prop()
        store = IndexedInstanceStore(prop)
        store.add(self._instance(prop, env={"S": "mac1"}))
        assert list(store.candidates(1, {"eth.dst": "other"})) == []

    def test_indexed_candidates_event_missing_field(self):
        prop = simple_prop()
        store = IndexedInstanceStore(prop)
        store.add(self._instance(prop, env={"S": "mac1"}))
        assert list(store.candidates(1, {})) == []

    def test_linear_candidates_scan_everything(self):
        prop = simple_prop()
        store = LinearInstanceStore(prop)
        store.add(self._instance(prop, key=("a",), env={"S": "a"}))
        store.add(self._instance(prop, key=("b",), env={"S": "b"}))
        assert len(list(store.candidates(1, {"eth.dst": "a"}))) == 2

    def test_make_store_strategies(self):
        prop = simple_prop()
        assert isinstance(make_store(prop, "indexed"), IndexedInstanceStore)
        assert isinstance(make_store(prop, "linear"), LinearInstanceStore)
        with pytest.raises(ValueError):
            make_store(prop, "quantum")

    def test_stage_index_plan_from_env_guards(self):
        prop = simple_prop()
        assert stage_index_plan(prop.stages[1]) == (("eth.dst", "S"),)

    def test_stage_index_plan_includes_uid(self):
        prop = nat_reverse_translation()
        plan = stage_index_plan(prop.stages[1])
        assert ("uid", uid_var("outbound_arrival")) in plan

    def test_oob_stage_has_empty_plan(self):
        prop = link_down_clears_learning()
        assert stage_index_plan(prop.stages[1]) == ()

    def test_reindex_moves_instance(self):
        prop = simple_prop()
        store = IndexedInstanceStore(prop)
        inst = self._instance(prop, env={"S": "m"})
        store.add(inst)
        inst.stage = 2  # completes; no longer waits anywhere
        store.reindex(inst, old_stage=1)
        assert list(store.candidates(1, {"eth.dst": "m"})) == []


class TestFieldClassification:
    @pytest.mark.parametrize(
        "field,layer",
        [
            ("eth.src", 2), ("vlan.vid", 2), ("arp.op", 3), ("ipv4.dst", 3),
            ("tcp.src", 4), ("udp.dst", 4), ("icmp.type", 4),
            ("dhcp.yiaddr", 7), ("ftp.data_port", 7), ("in_port", 2),
        ],
    )
    def test_field_layer(self, field, layer):
        assert field_layer(field) == layer

    @pytest.mark.parametrize(
        "field,family",
        [
            ("eth.src", "l2"), ("arp.target_ip", "arp"), ("ipv4.src", "inet"),
            ("tcp.dst", "inet"), ("ftp.data_port", "inet"),
            ("dhcp.yiaddr", "dhcp"), ("out_port", "meta"), ("uid", "meta"),
        ],
    )
    def test_field_family(self, field, family):
        assert field_family(field) == family


class TestAnalysis:
    def test_firewall_basic(self):
        req = analyze(firewall_basic())
        assert req.history and not req.timeouts and not req.obligation
        assert req.match_kind is MatchKind.SYMMETRIC
        assert req.drop_visibility
        assert req.max_layer == 3

    def test_firewall_timed_adds_timeouts(self):
        assert analyze(firewall_timed()).timeouts

    def test_firewall_with_close_adds_obligation(self):
        req = analyze(firewall_with_close())
        assert req.obligation and req.timeouts

    def test_nat_property(self):
        req = analyze(nat_reverse_translation())
        assert req.identity
        assert req.negative_match
        assert req.match_kind is MatchKind.SYMMETRIC
        assert req.max_layer == 4

    def test_learning_switch_negmatch_on_metadata(self):
        req = analyze(learned_unicast_port())
        assert req.negative_match
        assert req.max_layer == 2

    def test_link_down_property_is_multiple_match(self):
        req = analyze(link_down_clears_learning())
        assert req.multiple_match
        assert req.out_of_band

    def test_non_oob_props_not_multiple(self):
        assert not analyze(firewall_basic()).multiple_match

    def test_table1_rows_all_match_paper(self):
        entries = build_table1()
        assert len(entries) == 13
        for entry in entries:
            assert entry.matches_paper(), (
                f"{entry.description}: computed {entry.computed_row()}, "
                f"paper says {entry.expected_row}"
            )

    def test_table1_groups(self):
        groups = [e.group for e in build_table1()]
        assert groups.count("ARP Cache Proxy") == 2
        assert groups.count("Port Knocking") == 2
        assert groups.count("Load Balancing") == 3
        assert groups.count("FTP") == 1
        assert groups.count("DHCP") == 3
        assert groups.count("DHCP + ARP Proxy") == 2

    def test_match_kind_override_respected(self):
        from repro.props import dhcp_no_overlap

        assert classify_match_kind(dhcp_no_overlap()) is MatchKind.SYMMETRIC

    def test_table1_render(self):
        from repro.props import render_table1

        text = render_table1()
        assert "wandering" in text and "[OK ]" in text and "DIFF" not in text
