"""Unit tests for the fabric's key-partitioned routing layer."""

import zlib

import pytest

from repro.core.refs import Bind, Const, EventKind, EventPattern, FieldEq, Var
from repro.core.spec import Observe, PropertySpec
from repro.fabric import (
    Router,
    build_route,
    build_routes,
    shard_key_filter,
    stable_hash,
)
from repro.packet import IPv4Address, tcp_packet
from repro.props import build_table1
from repro.switch.events import (
    EgressAction,
    OutOfBandEvent,
    OobKind,
    PacketArrival,
    PacketEgress,
    TimerFired,
)
from repro.telemetry import MetricsRegistry

#: catalog properties whose every watcher names the full key — anything
#: else (unless scans, partial-key stages, empty keys) must pin.
EXPECTED_KEYED = {
    "arp-known-not-forwarded",
    "dhcp-no-overlap",
    "dhcp-reply-within",
    "ftp-data-port-matches",
    "knocking-invalidated",
    "knocking-recognized",
}


def keyed_prop(name="flow", dst_port=99):
    """Two stages, both of which recover (src-ip, src-port) from the event."""
    return PropertySpec(
        name=name,
        description="keyed two-stage test property",
        stages=(
            Observe("seen", EventPattern(
                kind=EventKind.ARRIVAL,
                binds=(Bind("src", "ipv4.src"), Bind("sport", "tcp.src")))),
            Observe("gone", EventPattern(
                kind=EventKind.EGRESS,
                guards=(FieldEq("ipv4.src", Var("src")),
                        FieldEq("tcp.src", Var("sport")),
                        FieldEq("tcp.dst", Const(dst_port))))),
        ),
        key_vars=("src", "sport"),
    )


def partial_key_prop():
    """Stage 1 only constrains one of two key vars — unroutable."""
    return PropertySpec(
        name="partial",
        description="stage forgets a key var",
        stages=(
            Observe("seen", EventPattern(
                kind=EventKind.ARRIVAL,
                binds=(Bind("src", "ipv4.src"), Bind("sport", "tcp.src")))),
            Observe("gone", EventPattern(
                kind=EventKind.EGRESS,
                guards=(FieldEq("ipv4.src", Var("src")),))),
        ),
        key_vars=("src", "sport"),
    )


def unkeyed_prop():
    return PropertySpec(
        name="global",
        description="no key at all",
        stages=(
            Observe("up", EventPattern(kind=EventKind.OOB)),
            Observe("down", EventPattern(kind=EventKind.OOB)),
        ),
        key_vars=(),
    )


def flow_event(src, sport, egress=False, t=1.0):
    packet = tcp_packet(0, 1, src, "198.51.100.9", sport, 99)
    if egress:
        return PacketEgress(switch_id="s", time=t, packet=packet,
                            in_port=1, out_port=2,
                            action=EgressAction.UNICAST)
    return PacketArrival(switch_id="s", time=t, packet=packet, in_port=1)


class TestStableHash:
    def test_is_crc32_of_repr(self):
        key = (IPv4Address("10.0.0.1"), 4242)
        assert stable_hash(key) == zlib.crc32(repr(key).encode("utf-8"))

    def test_deterministic_across_calls(self):
        key = ("a", 1, None)
        assert stable_hash(key) == stable_hash(key)

    def test_spreads_keys(self):
        shards = {stable_hash((i,)) % 4 for i in range(256)}
        assert shards == {0, 1, 2, 3}


class TestBuildRoute:
    def test_catalog_classification(self):
        routes = build_routes(
            [e.prop for e in build_table1()], num_shards=4)
        keyed = {name for name, r in routes.items() if r.keyed}
        assert keyed == EXPECTED_KEYED

    def test_keyed_prop_has_extractors(self):
        route = build_route(keyed_prop(), num_shards=4)
        assert route.keyed
        assert route.extractors[PacketArrival] == (("ipv4.src", "tcp.src"),)
        assert route.extractors[PacketEgress] == (("ipv4.src", "tcp.src"),)
        assert route.classes == frozenset({PacketArrival, PacketEgress})

    def test_partial_key_stage_pins(self):
        route = build_route(partial_key_prop(), num_shards=4)
        assert not route.keyed
        assert route.extractors == {}

    def test_empty_key_pins(self):
        route = build_route(unkeyed_prop(), num_shards=4)
        assert not route.keyed

    def test_pin_is_deterministic_and_in_range(self):
        for shards in (1, 2, 4, 7):
            route = build_route(unkeyed_prop(), shards)
            assert route.pin == stable_hash(("global",)) % shards


class TestShardKeyFilter:
    def test_exactly_one_shard_owns_each_key(self):
        num_shards = 4
        routes = build_routes([keyed_prop(), unkeyed_prop()], num_shards)
        filters = [shard_key_filter(routes, i, num_shards)
                   for i in range(num_shards)]
        for i in range(32):
            key = (IPv4Address(f"10.0.0.{i}"), 1000 + i)
            owners = [idx for idx, f in enumerate(filters)
                      if f("flow", key)]
            assert owners == [stable_hash(key) % num_shards]
        pin_owners = [idx for idx, f in enumerate(filters)
                      if f("global", ())]
        assert pin_owners == [routes["global"].pin]


class TestRouterSplit:
    def test_keyed_event_goes_to_its_key_shard(self):
        num_shards = 4
        routes = build_routes([keyed_prop()], num_shards)
        router = Router(routes, num_shards)
        event = flow_event("10.0.0.7", 5555)
        batches = router.split([event])
        expected = stable_hash((IPv4Address("10.0.0.7"), 5555)) % num_shards
        assert [len(b) for b in batches] == [
            1 if i == expected else 0 for i in range(num_shards)]

    def test_pinned_event_goes_to_pin(self):
        num_shards = 4
        routes = build_routes([unkeyed_prop()], num_shards)
        router = Router(routes, num_shards)
        event = OutOfBandEvent(switch_id="s", time=1.0,
                               oob_kind=OobKind.PORT_UP, port=3)
        batches = router.split([event])
        assert [len(b) for b in batches] == [
            1 if i == routes["global"].pin else 0 for i in range(num_shards)]

    def test_unwatched_event_dropped(self):
        routes = build_routes([keyed_prop()], 2)
        router = Router(routes, 2)
        timer = TimerFired(switch_id="s", time=1.0, timer_id="t",
                           instance_key=())
        assert router.split([timer]) == [[], []]
        assert router.events_total == 1
        assert router.shard_events == [0, 0]

    def test_event_can_fan_out_to_multiple_shards(self):
        # Two keyed properties with different keys pull one event two ways.
        other = PropertySpec(
            name="dst-flow",
            description="keys on the destination instead",
            stages=(
                Observe("seen", EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("dst", "ipv4.dst"),))),
                Observe("gone", EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldEq("ipv4.dst", Var("dst")),
                            FieldEq("tcp.dst", Const(7))))),
            ),
            key_vars=("dst",),
        )
        num_shards = 16  # wide enough that the two keys rarely collide
        routes = build_routes([keyed_prop(), other], num_shards)
        router = Router(routes, num_shards)
        event = flow_event("10.0.0.1", 1234)
        src_shard = stable_hash(
            (IPv4Address("10.0.0.1"), 1234)) % num_shards
        dst_shard = stable_hash(
            (IPv4Address("198.51.100.9"),)) % num_shards
        batches = router.split([event])
        targets = {i for i, b in enumerate(batches) if b}
        assert targets == {src_shard, dst_shard}

    def test_metrics_and_imbalance(self):
        registry = MetricsRegistry()
        routes = build_routes([unkeyed_prop()], 2)
        router = Router(routes, 2, registry=registry)
        events = [OutOfBandEvent(switch_id="s", time=float(i),
                                 oob_kind=OobKind.PORT_UP, port=1)
                  for i in range(6)]
        router.split(events)
        pin = routes["global"].pin
        assert router.events_total == 6
        assert router.shard_events[pin] == 6
        assert router.shard_events[1 - pin] == 0
        # all 6 events on one of two shards: max/mean = 6 / 3 = 2.0
        gauge = registry.gauge("repro_fabric_router_imbalance", help="")
        assert gauge.value == pytest.approx(2.0)

    def test_single_shard_takes_everything(self):
        routes = build_routes([keyed_prop(), unkeyed_prop()], 1)
        router = Router(routes, 1)
        events = [flow_event(f"10.0.0.{i}", 1000 + i) for i in range(8)]
        batches = router.split(events)
        assert len(batches) == 1
        assert len(batches[0]) == 8
