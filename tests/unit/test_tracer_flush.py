"""Tracer flush-on-close guarantees and the /trace ring buffer.

The daemon-facing half of the tracing contract: spans persist the
moment they close (``SpanWriter``), a tracer used as a context manager
cannot leak open spans, and a process killed mid-span leaves a valid
JSONL prefix — every line parses, no truncated records.  The kill test
runs a real subprocess and SIGKILLs it between spans-in-flight.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

from repro.telemetry import SpanWriter, Tracer, load_spans, validate_spans

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))


class TestTracerRing:
    def test_ring_keeps_only_recent_spans(self):
        tracer = Tracer(max_spans=3)
        for i in range(7):
            tracer.event(f"e{i}", float(i))
        assert [s.name for s in tracer.recent(10)] == ["e4", "e5", "e6"]

    def test_recent_respects_limit_and_uid(self):
        tracer = Tracer(max_spans=10)
        for i in range(6):
            tracer.event(f"e{i}", float(i), uid=i % 2)
        assert [s.name for s in tracer.recent(2)] == ["e4", "e5"]
        assert [s.name for s in tracer.recent(10, uid=1)] \
            == ["e1", "e3", "e5"]

    def test_ending_an_evicted_span_still_fires_on_close(self):
        closed = []
        tracer = Tracer(max_spans=1, on_close=closed.append)
        old = tracer.start("old", 0.0)
        tracer.event("new", 1.0)  # evicts "old" from the ring
        tracer.end(old, 2.0)
        assert [s.name for s in closed] == ["new", "old"]

    def test_unbounded_by_default(self):
        tracer = Tracer()
        for i in range(5):
            tracer.event(f"e{i}", float(i))
        assert len(tracer.spans) == 5


class TestTracerContextManager:
    def test_exit_closes_open_spans_at_latest_time(self):
        with Tracer() as tracer:
            tracer.start("a", 1.0)
            tracer.event("b", 7.5)
        assert all(s.end is not None for s in tracer.spans)
        assert tracer.spans[0].end == 7.5
        assert validate_spans(sorted(
            tracer.spans, key=lambda s: s.span_id)) == []

    def test_exit_closes_even_on_exception(self):
        tracer = Tracer()
        try:
            with tracer:
                tracer.start("a", 1.0)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.spans[0].end == 1.0


class TestSpanWriter:
    def test_writes_each_span_as_it_closes(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        writer = SpanWriter(path, tracer)
        root = tracer.start("root", 0.0, uid=1, root=True)
        tracer.event("child", 0.5, uid=1)
        # The child closed; it must already be durable on disk.
        with open(path, encoding="utf-8") as fp:
            assert len(fp.readlines()) == 1
        tracer.end(root, 1.0)
        writer.close()
        with open(path, encoding="utf-8") as fp:
            spans = sorted(load_spans(fp), key=lambda s: s.span_id)
        assert [s.name for s in spans] == ["root", "child"]
        assert validate_spans(spans) == []

    def test_close_flushes_open_spans_and_is_idempotent(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        with SpanWriter(path, tracer) as writer:
            tracer.start("dangling", 3.0)
        writer.close()  # second close: no-op
        with open(path, encoding="utf-8") as fp:
            spans = load_spans(fp)
        assert spans[0].name == "dangling"
        assert spans[0].end == 3.0
        assert writer.written == 1

    def test_kill_mid_span_leaves_no_truncated_record(self, tmp_path):
        """SIGKILL between writes: the file is a valid JSONL prefix."""
        path = str(tmp_path / "spans.jsonl")
        script = textwrap.dedent("""
            import os, sys
            from repro.telemetry import SpanWriter, Tracer

            tracer = Tracer()
            writer = SpanWriter(sys.argv[1], tracer)
            root = tracer.start("root", 0.0, uid=1, root=True)
            for i in range(50):
                tracer.event("tick", float(i), uid=1, payload="x" * 512)
            print("READY", flush=True)
            # Spin with the root span still open until the parent kills us.
            while True:
                tracer.event("spin", 99.0, uid=1, payload="y" * 512)
        """)
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.Popen(
            [sys.executable, "-c", script, path],
            stdout=subprocess.PIPE, env=env)
        try:
            assert proc.stdout.readline().strip() == b"READY"
            time.sleep(0.05)  # let the spin loop write mid-stream
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
        with open(path, encoding="utf-8") as fp:
            lines = fp.readlines()
        assert len(lines) >= 50
        for line in lines:  # every record is complete JSON on one line
            assert line.endswith("\n")
            record = json.loads(line)
            assert record["end"] is not None
        # The still-open root was never written — only closed spans are.
        assert all(json.loads(l)["name"] != "root" for l in lines)

    def test_atexit_flush_on_unclean_exit(self, tmp_path):
        """sys.exit without close(): atexit still closes the file."""
        path = str(tmp_path / "spans.jsonl")
        script = textwrap.dedent("""
            import sys
            from repro.telemetry import SpanWriter, Tracer

            tracer = Tracer()
            writer = SpanWriter(sys.argv[1], tracer)
            tracer.start("open-at-exit", 2.0)
            sys.exit(3)
        """)
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.run(
            [sys.executable, "-c", script, path], env=env)
        assert proc.returncode == 3
        with open(path, encoding="utf-8") as fp:
            spans = load_spans(fp)
        assert [s.name for s in spans] == ["open-at-exit"]
        assert spans[0].end == 2.0
