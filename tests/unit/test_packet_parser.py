"""Unit tests: Packet container, builders, wire parsing with depth limits."""

import pytest

from repro.packet import (
    DHCP_SERVER_PORT,
    TCP,
    UDP,
    Arp,
    Dhcp,
    DhcpMessageType,
    Ethernet,
    FtpControl,
    IPv4,
    IPv4Address,
    MACAddress,
    Packet,
    ParseError,
    TCPFlags,
    arp_reply,
    arp_request,
    dhcp_packet,
    encode,
    ethernet,
    ftp_control_packet,
    icmp_echo,
    parse,
    reparse,
    tcp_packet,
    tcp_syn,
    udp_packet,
)
from repro.packet.headers import ICMP


class TestPacketContainer:
    def test_uids_are_unique(self):
        assert ethernet(1, 2).uid != ethernet(1, 2).uid

    def test_duplicate_shares_uid(self):
        p = ethernet(1, 2)
        assert p.duplicate().uid == p.uid

    def test_refreshed_changes_uid(self):
        p = ethernet(1, 2)
        assert p.refreshed().uid != p.uid

    def test_find_get_has(self):
        p = tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 1, 2)
        assert p.has(TCP)
        assert p.find(UDP) is None
        assert p.get(IPv4).src == IPv4Address("10.0.0.1")
        with pytest.raises(KeyError):
            p.get(UDP)

    def test_with_header_preserves_uid(self):
        p = tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 1, 2)
        new_ip = IPv4(src=IPv4Address("9.9.9.9"), dst=p.ip_dst, proto=6)
        q = p.with_header(new_ip)
        assert q.uid == p.uid
        assert q.ip_src == IPv4Address("9.9.9.9")
        assert p.ip_src == IPv4Address("10.0.0.1")  # original untouched

    def test_with_header_missing_type(self):
        with pytest.raises(KeyError):
            ethernet(1, 2).with_header(UDP(src_port=1, dst_port=2))

    def test_fields_depth_limit(self):
        p = dhcp_packet(5, DhcpMessageType.REQUEST)
        assert "dhcp.msg_type" in p.fields(max_layer=7)
        assert "dhcp.msg_type" not in p.fields(max_layer=4)
        assert "udp.src" in p.fields(max_layer=4)
        assert "udp.src" not in p.fields(max_layer=3)

    def test_field_lookup(self):
        p = tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 7, 8)
        assert p.field("tcp.src") == 7
        with pytest.raises(KeyError):
            p.field("tcp.src", max_layer=3)

    def test_five_tuple(self):
        p = tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 7, 8)
        assert p.five_tuple() == (
            IPv4Address("10.0.0.1"), 7, IPv4Address("10.0.0.2"), 8, 6
        )
        assert ethernet(1, 2).five_tuple() is None

    def test_l4_ports_udp(self):
        p = udp_packet(1, 2, "10.0.0.1", "10.0.0.2", 100, 200)
        assert p.l4_sport == 100
        assert p.l4_dport == 200

    def test_max_layer(self):
        assert ethernet(1, 2).max_layer == 2
        assert arp_request(1, "10.0.0.1", "10.0.0.2").max_layer == 3
        assert tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 1, 2).max_layer == 4
        assert dhcp_packet(5, DhcpMessageType.REQUEST).max_layer == 7

    def test_describe_mentions_flow(self):
        text = tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 7, 8).describe()
        assert "10.0.0.1:7" in text


class TestBuilders:
    def test_arp_request_is_broadcast(self):
        p = arp_request(1, "10.0.0.1", "10.0.0.2")
        assert p.eth.dst.is_broadcast
        assert p.get(Arp).is_request

    def test_arp_reply_is_unicast(self):
        p = arp_reply(2, "10.0.0.2", 1, "10.0.0.1")
        assert p.eth.dst == MACAddress(1)
        assert p.get(Arp).is_reply
        assert p.get(Arp).sender_ip == IPv4Address("10.0.0.2")

    def test_tcp_syn_flags(self):
        assert tcp_syn(1, 2, "10.0.0.1", "10.0.0.2", 1, 2).get(TCP).is_syn

    def test_icmp_echo(self):
        req = icmp_echo(1, 2, "10.0.0.1", "10.0.0.2")
        rep = icmp_echo(2, 1, "10.0.0.2", "10.0.0.1", reply=True)
        assert req.get(ICMP).icmp_type == ICMP.TYPE_ECHO_REQUEST
        assert rep.get(ICMP).icmp_type == ICMP.TYPE_ECHO_REPLY

    def test_dhcp_request_ports(self):
        p = dhcp_packet(5, DhcpMessageType.REQUEST)
        assert p.get(UDP).dst_port == DHCP_SERVER_PORT

    def test_dhcp_reply_ports(self):
        p = dhcp_packet(5, DhcpMessageType.ACK, yiaddr="10.0.0.50")
        assert p.get(UDP).src_port == DHCP_SERVER_PORT
        assert p.get(Dhcp).yiaddr == IPv4Address("10.0.0.50")

    def test_ftp_control_to_server(self):
        p = ftp_control_packet(1, 2, "10.0.0.1", "10.0.0.2", 5000,
                               "PORT 10,0,0,1,4,1")
        assert p.get(TCP).dst_port == 21
        assert p.get(FtpControl).data_port == 1025


class TestWireParsing:
    def test_l2_roundtrip(self):
        p = ethernet(1, 2)
        assert parse(encode(p)).eth == p.eth

    def test_arp_roundtrip(self):
        p = arp_request(1, "10.0.0.1", "10.0.0.2")
        assert parse(encode(p)).get(Arp) == p.get(Arp)

    def test_tcp_roundtrip(self):
        p = tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 5, 6, payload=b"hi")
        q = parse(encode(p))
        assert q.get(TCP).src_port == 5
        assert q.payload == b"hi"

    def test_udp_roundtrip(self):
        p = udp_packet(1, 2, "10.0.0.1", "10.0.0.2", 5, 6, payload=b"xy")
        q = parse(encode(p))
        assert q.get(UDP).dst_port == 6
        assert q.payload == b"xy"

    def test_icmp_roundtrip(self):
        q = parse(encode(icmp_echo(1, 2, "10.0.0.1", "10.0.0.2", seq=3)))
        assert q.get(ICMP).seq == 3

    def test_dhcp_recognized_by_port(self):
        q = parse(encode(dhcp_packet(5, DhcpMessageType.DISCOVER, xid=9)))
        assert q.get(Dhcp).xid == 9

    def test_ftp_recognized_by_port(self):
        p = ftp_control_packet(1, 2, "10.0.0.1", "10.0.0.2", 5000,
                               "PORT 10,0,0,1,4,1")
        q = parse(encode(p))
        assert q.get(FtpControl).data_port == 1025

    def test_parse_depth_stops_at_l3(self):
        raw = encode(tcp_packet(1, 2, "10.0.0.1", "10.0.0.2", 1, 2))
        q = parse(raw, max_layer=3)
        assert q.has(IPv4)
        assert not q.has(TCP)
        assert len(q.payload) == 20  # the TCP header stays opaque

    def test_parse_depth_stops_at_l4(self):
        raw = encode(dhcp_packet(5, DhcpMessageType.REQUEST))
        q = parse(raw, max_layer=4)
        assert q.has(UDP)
        assert not q.has(Dhcp)

    def test_parse_depth_below_l2_rejected(self):
        with pytest.raises(ParseError):
            parse(b"\x00" * 20, max_layer=1)

    def test_truncated_frame_rejected(self):
        with pytest.raises(ParseError):
            parse(b"\x00" * 10)

    def test_unknown_ethertype_leaves_payload(self):
        from repro.packet.headers import Ethernet

        p = Packet.of(
            Ethernet(src=MACAddress(1), dst=MACAddress(2), ethertype=0x9999),
            payload=b"mystery",
        )
        q = parse(encode(p))
        assert q.payload == b"mystery"
        assert q.max_layer == 2

    def test_malformed_l7_stays_opaque(self):
        # Claim DHCP ports but carry garbage: the parser must not fail.
        p = udp_packet(1, 2, "10.0.0.1", "10.0.0.2", 68, 67, payload=b"xx")
        q = parse(encode(p))
        assert not q.has(Dhcp)
        assert q.payload == b"xx"

    def test_reparse_shallows_and_keeps_uid(self):
        p = dhcp_packet(5, DhcpMessageType.REQUEST)
        q = reparse(p, max_layer=4)
        assert q.uid == p.uid
        assert not q.has(Dhcp)
        # The DHCP message is re-serialized into the opaque payload.
        assert len(q.payload) > 0

    def test_reparse_noop_when_shallow(self):
        p = ethernet(1, 2)
        assert reparse(p, max_layer=4) is p
