"""IngestQueue backpressure, frame parsing, and the serve report.

The queue is the daemon's honesty mechanism: every shed must be
ledgered with both impact kinds, readiness must flap conservatively
(hysteresis), and dwell time must land in the latency histogram.  These
tests drive it with a fake clock — no sockets, no event loop.
"""

import json

import pytest

from repro.core.degradation import IMPACT_FALSE, IMPACT_MISSED, OverflowLedger
from repro.serve import FrameError, IngestQueue, parse_frame
from repro.serve.daemon import parse_ingest_spec
from repro.serve.report import ServeDegradationReport, render_serve_report
from repro.switch.events import OutOfBandEvent, OobKind
from repro.telemetry import MetricsRegistry


def oob(time=0.0):
    return OutOfBandEvent(switch_id="s1", time=time,
                          oob_kind=OobKind.PORT_UP, port=1)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestOfferAndShed:
    def test_accepts_until_full_then_sheds(self):
        q = IngestQueue(max_depth=3)
        assert [q.offer(oob()) for _ in range(5)] \
            == [True, True, True, False, False]
        assert q.accepted == 3
        assert q.shed == 2
        assert q.depth == 3

    def test_sheds_are_ledgered_with_both_impacts(self):
        ledger = OverflowLedger()
        clock = FakeClock()
        q = IngestQueue(max_depth=1, ledger=ledger, clock=clock)
        q.offer(oob(), source="tcp:1234")
        clock.now = 2.5
        q.offer(oob(), source="tcp:1234")
        assert len(ledger) == 1
        record = ledger.records[0]
        assert record.kind == "ingest-shed"
        assert record.prop == "(ingest)"
        assert record.detail == "source=tcp:1234"
        assert record.time == 2.5
        assert set(record.impacts) == {IMPACT_MISSED, IMPACT_FALSE}

    def test_shed_widens_uncertainty_interval_both_ways(self):
        ledger = OverflowLedger()
        q = IngestQueue(max_depth=1, ledger=ledger)
        q.offer(oob())
        q.offer(oob())
        assert ledger.interval(observed=3) == (2, 4)

    def test_take_batch_drains_oldest_first(self):
        q = IngestQueue(max_depth=10)
        events = [oob(time=float(i)) for i in range(5)]
        for e in events:
            q.offer(e)
        assert q.take_batch(3) == events[:3]
        assert q.take_batch(10) == events[3:]
        assert q.take_batch(10) == []

    def test_rejects_degenerate_configuration(self):
        with pytest.raises(ValueError):
            IngestQueue(max_depth=0)
        with pytest.raises(ValueError):
            IngestQueue(max_depth=10, low_mark=0.9, high_mark=0.5)


class TestReadiness:
    def test_ready_until_high_mark(self):
        q = IngestQueue(max_depth=10, high_mark=0.8, low_mark=0.3)
        for _ in range(7):
            q.offer(oob())
        assert q.ready()
        q.offer(oob())  # depth 8 >= 0.8 * 10
        assert not q.ready()
        assert q.unready_reasons()

    def test_hysteresis_requires_draining_to_low_mark(self):
        q = IngestQueue(max_depth=10, high_mark=0.8, low_mark=0.3)
        for _ in range(8):
            q.offer(oob())
        q.take_batch(4)  # depth 4, still above low mark of 3
        assert not q.ready()
        q.take_batch(2)  # depth 2
        assert q.ready()

    def test_shed_holds_unready_for_the_window(self):
        clock = FakeClock()
        q = IngestQueue(max_depth=1, clock=clock, shed_window=1.0)
        q.offer(oob())
        q.offer(oob())  # shed at t=0
        q.take_batch(5)
        clock.now = 0.5
        assert not q.ready()  # drained, but shed too recent
        assert any("shed" in r for r in q.unready_reasons())
        clock.now = 1.5
        assert q.ready()
        assert q.unready_reasons() == []

    def test_stats_digest_is_jsonable(self):
        q = IngestQueue(max_depth=2)
        q.offer(oob())
        digest = json.loads(json.dumps(q.stats()))
        assert digest["depth"] == 1
        assert digest["accepted"] == 1
        assert digest["shed"] == 0
        assert digest["ready"] is True


class TestInstrumentation:
    def test_latency_histogram_measures_dwell_time(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        q = IngestQueue(max_depth=10, clock=clock, registry=registry)
        q.offer(oob())
        clock.now = 0.002
        q.take_batch(1)
        hist = registry.histogram("repro_serve_ingest_latency_seconds")
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.002)

    def test_counters_and_depth_gauge_track_traffic(self):
        registry = MetricsRegistry()
        q = IngestQueue(max_depth=2, registry=registry)
        for _ in range(3):
            q.offer(oob())
        assert registry.counter("repro_serve_events_ingested_total").value == 2
        assert registry.counter("repro_serve_events_shed_total").value == 1
        gauge = registry.gauge("repro_serve_queue_depth")
        assert gauge.value == 2
        assert gauge.high_watermark == 2


class TestParseFrame:
    def test_round_trips_a_serialized_event(self):
        from repro.netsim.serialize import event_to_dict

        line = (json.dumps(event_to_dict(oob(time=1.5))) + "\n").encode()
        event = parse_frame(line)
        assert isinstance(event, OutOfBandEvent)
        assert event.time == 1.5
        assert event.oob_kind is OobKind.PORT_UP

    def test_blank_lines_and_headers_are_skipped(self):
        assert parse_frame(b"") is None
        assert parse_frame(b"   \n") is None
        header = json.dumps({"kind": "TraceHeader", "schema": 1}).encode()
        assert parse_frame(header) is None

    @pytest.mark.parametrize("junk", [
        b"not json\n",
        b"[1, 2, 3]\n",
        b'{"kind": "NoSuchEvent", "switch": "s1", "time": 0}\n',
        b'{"kind": "PacketArrival", "switch": "s1"}\n',  # missing fields
        b"\xff\xfe\n",
    ])
    def test_junk_raises_frame_error(self, junk):
        with pytest.raises(FrameError):
            parse_frame(junk)


class TestIngestSpec:
    def test_tcp_and_pipe_specs(self):
        assert parse_ingest_spec("tcp:9801") == ("tcp", 9801)
        assert parse_ingest_spec("pipe:/tmp/frames") == ("pipe", "/tmp/frames")

    @pytest.mark.parametrize("bad", [
        "tcp", "tcp:", "tcp:http", "udp:9801", "9801", "pipe:",
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_ingest_spec(bad)


class TestServeReport:
    def report(self, **overrides):
        fields = dict(
            profile="clean", uptime=1.25, events_ingested=100,
            events_shed=0, events_observed=100, violations=2,
            interval=(2, 2), live_instances=3, pending_ops=0)
        fields.update(overrides)
        return ServeDegradationReport(**fields)

    def test_exact_when_nothing_shed(self):
        assert self.report().exact is True
        assert self.report(interval=(1, 4)).exact is False

    def test_to_dict_round_trips_through_json(self):
        data = json.loads(json.dumps(self.report(
            events_shed=5, interval=(0, 7),
            ledger={"by_kind": {"ingest-shed": 5}}).to_dict()))
        assert data["events"]["shed"] == 5
        assert data["violations"]["interval"] == [0, 7]
        assert data["violations"]["exact"] is False

    def test_render_mentions_interval_and_sheds(self):
        text = render_serve_report(self.report(
            events_shed=5, interval=(0, 7),
            ledger={"by_kind": {"ingest-shed": 5}}))
        assert "interval=[0, 7]" in text
        assert "uncertain" in text
        assert "ingest-shed=5" in text

    def test_render_clean_run_says_exact(self):
        text = render_serve_report(self.report())
        assert "(exact)" in text
        assert "nothing shed" in text
