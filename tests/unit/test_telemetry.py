"""Unit tests: the telemetry subsystem (registry, exposition, tracing,
poller) and the stats views layered on top of it.

The renderers are pinned: regenerate the goldens deliberately with
``python -m tests.regen_telemetry_goldens``.
"""

import io
import os

import pytest

from repro.core import Bind, EventKind, EventPattern, FieldEq, Monitor, Observe, PropertySpec, Var
from repro.core.postcards import PostcardCollector, PostcardMonitor
from repro.packet import ethernet
from repro.switch.events import PacketArrival
from repro.switch.switch import ProcessingMode
from repro.telemetry import (
    NULL_HISTOGRAM,
    MetricsRegistry,
    NullRegistry,
    Span,
    StatsPoller,
    Tracer,
    dump_spans,
    load_spans,
    render_json,
    render_prometheus,
    snapshot_digest,
    validate_spans,
)
from tests.regen_telemetry_goldens import GOLDEN, build_scenario_registry


def golden(name):
    with open(os.path.join(GOLDEN, name), encoding="utf-8") as fp:
        return fp.read()


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        c = registry.counter("x_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_labeled_cells_are_distinct(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"k": "a"})
        b = registry.counter("x_total", labels={"k": "b"})
        assert a is not b
        assert registry.counter("x_total", labels={"k": "a"}) is a

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_gauge_watermark_survives_drops(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.set(7)
        g.set(2)
        g.inc(1)
        g.dec(3)
        assert g.value == 0
        assert g.high_watermark == 7

    def test_histogram_buckets_and_extremes(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            h.observe(value)
        assert h.count == 3
        assert h.sum == 55.5
        assert (h.min, h.max) == (0.5, 50.0)
        assert h.cumulative() == [(1.0, 1), (10.0, 2), (float("inf"), 3)]

    def test_snapshot_carries_virtual_time(self):
        registry = MetricsRegistry(time_fn=lambda: 42.0)
        registry.counter("x_total").inc()
        snap = registry.snapshot()
        assert snap["time"] == 42.0
        assert [m["name"] for m in snap["metrics"]] == ["x_total"]


class TestNullRegistry:
    def test_disabled_but_cells_still_count(self):
        registry = NullRegistry()
        assert registry.enabled is False
        c = registry.counter("x_total")
        c.inc(5)
        assert c.value == 5
        assert registry.counter("x_total") is c

    def test_histograms_are_shared_noop(self):
        registry = NullRegistry()
        h = registry.histogram("h")
        assert h is NULL_HISTOGRAM
        h.observe(1.0)
        assert h.count == 0

    def test_snapshot_is_empty(self):
        registry = NullRegistry()
        registry.counter("x_total").inc()
        assert registry.snapshot()["metrics"] == []


class TestExpositionGoldens:
    def test_prometheus_text_matches_golden(self):
        snapshot = build_scenario_registry().snapshot()
        assert render_prometheus(snapshot) == golden("snapshot.prom")

    def test_json_matches_golden(self):
        snapshot = build_scenario_registry().snapshot()
        assert render_json(snapshot) + "\n" == golden("snapshot.json")

    def test_json_is_deterministic(self):
        a = render_json(build_scenario_registry().snapshot())
        b = render_json(build_scenario_registry().snapshot())
        assert a == b

    def test_digest_names_top_counters(self):
        digest = snapshot_digest(build_scenario_registry())
        assert digest.startswith("telemetry: ")
        assert "monitor_events_total=86" in digest


class TestPrometheusEscaping:
    """Label values and help text follow the text-exposition spec."""

    def render(self, label_value, help_text="help"):
        registry = MetricsRegistry()
        registry.counter("x_total", help_text,
                         labels={"k": label_value}).inc(1)
        return render_prometheus(registry.snapshot())

    def test_double_quote_escaped(self):
        assert 'x_total{k="say \\"hi\\""} 1' in self.render('say "hi"')

    def test_newline_escaped(self):
        text = self.render("line1\nline2")
        assert 'x_total{k="line1\\nline2"} 1' in text
        # The sample must stay on one physical line.
        assert all(line.startswith(("#", "x_total"))
                   for line in text.strip().splitlines())

    def test_backslash_escaped(self):
        assert 'x_total{k="a\\\\b"} 1' in self.render("a\\b")

    def test_backslash_before_quote_does_not_unescape(self):
        # Adversarial: a literal backslash-then-quote must render as
        # escaped-backslash escaped-quote, not as an escaped quote alone.
        assert 'x_total{k="a\\\\\\"b"} 1' in self.render('a\\"b')

    def test_help_newline_and_backslash_escaped(self):
        text = self.render("v", help_text="first\nsecond \\ third")
        assert "# HELP x_total first\\nsecond \\\\ third" in text

    def test_gauge_peak_gets_its_own_type_line(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth", "queue depth")
        g.set(9)
        g.set(4)
        text = render_prometheus(registry.snapshot())
        lines = text.strip().splitlines()
        assert "# TYPE depth gauge" in lines
        assert "# TYPE depth_peak gauge" in lines
        # All depth_peak samples come after their TYPE header.
        assert lines.index("# TYPE depth_peak gauge") \
            < lines.index("depth_peak 9")

    def test_labeled_gauge_peaks_grouped_under_one_header(self):
        registry = MetricsRegistry()
        registry.gauge("depth", labels={"q": "a"}).set(1)
        registry.gauge("depth", labels={"q": "b"}).set(2)
        lines = render_prometheus(registry.snapshot()).strip().splitlines()
        assert lines.count("# TYPE depth_peak gauge") == 1
        header = lines.index("# TYPE depth_peak gauge")
        assert lines[header + 1] == 'depth_peak{q="a"} 1'
        assert lines[header + 2] == 'depth_peak{q="b"} 2'


class TestStatsPoller:
    def test_samples_on_interval(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        poller = StatsPoller(registry, interval=1.0)
        g.set(3)
        assert poller.advance_to(2.5) == 2
        g.set(8)
        poller.advance_to(3.0)
        times = [s["time"] for s in poller.samples]
        assert times == [1.0, 2.0, 3.0]
        assert poller.samples[0]["values"]["depth"] == 3
        assert poller.samples[-1]["values"]["depth"] == 8


ECHO = PropertySpec(
    name="echo", description="response to a request",
    stages=(
        Observe("request", EventPattern(
            kind=EventKind.ARRIVAL, binds=(Bind("S", "eth.src"),))),
        Observe("response", EventPattern(
            kind=EventKind.ARRIVAL,
            guards=(FieldEq("eth.dst", Var("S")),))),
    ),
    key_vars=("S",),
)


def drive_split(registry=None, pairs=5, lag=1.0):
    monitor = Monitor(mode=ProcessingMode.SPLIT, split_lag=lag,
                      registry=registry)
    monitor.add_property(ECHO)
    t = 0.0
    for i in range(pairs):
        monitor.observe(PacketArrival(
            switch_id="s", time=t, packet=ethernet(i + 1, 0xFFFF), in_port=1))
        t += 1e-4
    return monitor


class TestSplitModeStats:
    def test_peak_pending_ops_tracks_queue_depth(self):
        monitor = drive_split(pairs=5, lag=1.0)
        # All five create-ops are still queued: the watermark saw them all.
        assert monitor.stats.peak_pending_ops == 5
        monitor.advance_to(100.0)
        # Draining applies the ops but never lowers the recorded peak.
        assert monitor.stats.peak_pending_ops == 5
        assert monitor.stats.ops_applied == 5

    def test_candidates_examined_counts_scans(self):
        monitor = drive_split(pairs=3, lag=1e-9)
        monitor.advance_to(1.0)
        before = monitor.stats.candidates_examined
        # A response probes the waiting set: at least one candidate scanned.
        monitor.observe(PacketArrival(
            switch_id="s", time=2.0, packet=ethernet(0xEEEE, 1), in_port=2))
        monitor.advance_to(3.0)
        assert monitor.stats.candidates_examined > before

    def test_split_stats_agree_with_real_registry(self):
        default = drive_split(pairs=4, lag=1.0)
        instrumented = drive_split(registry=MetricsRegistry(), pairs=4,
                                   lag=1.0)
        assert (instrumented.stats.peak_pending_ops
                == default.stats.peak_pending_ops == 4)
        gauge = instrumented.registry.gauge("repro_monitor_pending_ops")
        assert gauge.high_watermark == 4


class TestPostcardMetrics:
    def test_collector_counters_flow_through_registry(self):
        registry = MetricsRegistry()
        collector = PostcardCollector(retention=1e9, registry=registry)
        pm = PostcardMonitor(collector, registry=registry)
        pm.add_property(ECHO)
        pm.observe(PacketArrival(
            switch_id="s", time=0.0, packet=ethernet(1, 0xFFFF), in_port=1))
        pm.observe(PacketArrival(
            switch_id="s", time=1.0, packet=ethernet(2, 1), in_port=2))
        # Three cards: the request's create, the response's advance to the
        # violation, and the response's own create (it binds S too).
        assert collector.postcards_received == 3
        received = registry.counter("repro_postcards_received_total")
        assert received.value == 3
        assert registry.counter("repro_postcards_bytes_total").value > 0


class TestTracer:
    def test_root_spans_adopt_same_uid_children(self):
        tracer = Tracer()
        root = tracer.start("switch.receive", 0.0, uid=7, root=True)
        child = tracer.start("monitor.observe", 0.1, uid=7)
        assert child.parent_id == root.span_id
        tracer.end(child, 0.2)
        tracer.end(root, 0.3)
        assert validate_spans(tracer.spans) == []

    def test_close_all_ends_open_spans(self):
        tracer = Tracer()
        tracer.start("a", 0.0)
        tracer.start("b", 1.0)
        assert tracer.close_all(5.0) == 2
        assert all(s.end == 5.0 for s in tracer.spans)
        assert validate_spans(tracer.spans) == []

    def test_validate_flags_unclosed_span(self):
        tracer = Tracer()
        tracer.start("a", 0.0)
        problems = validate_spans(tracer.spans)
        assert problems and "never closed" in problems[0]

    def test_validate_flags_missing_parent(self):
        span = Span(span_id=2, parent_id=99, name="orphan", start=0.0)
        span.end = 1.0
        assert any("parent" in p for p in validate_spans([span]))

    def test_spans_roundtrip_jsonl(self):
        tracer = Tracer()
        root = tracer.start("switch.receive", 0.0, uid=3, root=True,
                            switch="s1")
        tracer.event("monitor.advance", 0.1, uid=3, stage="learn")
        tracer.end(root, 0.2, forwarded=True)
        buf = io.StringIO()
        assert dump_spans(tracer.spans, buf) == 2
        buf.seek(0)
        loaded = load_spans(buf)
        assert [s.name for s in loaded] == ["switch.receive",
                                            "monitor.advance"]
        assert loaded[0].attrs["switch"] == "s1"
        assert loaded[0].attrs["forwarded"] is True
        assert loaded[1].parent_id == loaded[0].span_id
        assert validate_spans(loaded) == []
