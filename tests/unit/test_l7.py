"""Unit tests: DHCP and FTP (L7) message models."""

import pytest

from repro.packet.addresses import IPv4Address, MACAddress
from repro.packet.dhcp import Dhcp, DhcpMessageType, DhcpOp
from repro.packet.ftp import FtpControl, encode_port_command
from repro.packet.headers import HeaderError


class TestDhcp:
    def _msg(self, **kw):
        defaults = dict(
            op=DhcpOp.BOOTREQUEST,
            msg_type=DhcpMessageType.REQUEST,
            xid=42,
            client_mac=MACAddress(5),
        )
        defaults.update(kw)
        return Dhcp(**defaults)

    def test_minimal_roundtrip(self):
        msg = self._msg()
        decoded, rest = Dhcp.decode(msg.encode())
        assert decoded == msg
        assert rest == b""

    def test_full_roundtrip(self):
        msg = self._msg(
            op=DhcpOp.BOOTREPLY,
            msg_type=DhcpMessageType.ACK,
            yiaddr=IPv4Address("10.0.0.50"),
            requested_ip=IPv4Address("10.0.0.50"),
            lease_time=3600,
            server_id=IPv4Address("10.0.0.254"),
        )
        decoded, _ = Dhcp.decode(msg.encode())
        assert decoded == msg

    def test_classification(self):
        assert self._msg(msg_type=DhcpMessageType.DISCOVER).is_discover
        assert self._msg(msg_type=DhcpMessageType.REQUEST).is_request
        assert self._msg(op=DhcpOp.BOOTREPLY, msg_type=DhcpMessageType.OFFER).is_offer
        assert self._msg(op=DhcpOp.BOOTREPLY, msg_type=DhcpMessageType.ACK).is_ack
        assert self._msg(msg_type=DhcpMessageType.RELEASE).is_release

    def test_bad_op(self):
        with pytest.raises(HeaderError):
            self._msg(op=3)

    def test_xid_range(self):
        with pytest.raises(HeaderError):
            self._msg(xid=1 << 32)

    def test_truncated(self):
        with pytest.raises(HeaderError):
            Dhcp.decode(b"\x01" * 10)

    def test_missing_msg_type_option(self):
        msg = self._msg()
        raw = bytearray(msg.encode())
        raw[15] = 0xFE  # clobber the message-type option tag
        with pytest.raises(HeaderError):
            Dhcp.decode(bytes(raw))

    def test_fields_namespace(self):
        fields = self._msg(requested_ip=IPv4Address("10.0.0.9")).fields()
        assert fields["dhcp.msg_type"] == DhcpMessageType.REQUEST
        assert fields["dhcp.client_mac"] == MACAddress(5)
        assert fields["dhcp.requested_ip"] == IPv4Address("10.0.0.9")
        assert "dhcp.server_id" not in fields


class TestFtpControl:
    def test_port_command_parsed(self):
        line = FtpControl.from_line("PORT 10,0,0,1,4,1")
        assert line.advertises_endpoint
        assert line.data_ip == IPv4Address("10.0.0.1")
        assert line.data_port == (4 << 8) | 1
        assert line.is_port_command

    def test_pasv_reply_parsed(self):
        line = FtpControl.from_line(
            "227 Entering Passive Mode (192,168,1,2,19,137)"
        )
        assert line.advertises_endpoint
        assert line.data_ip == IPv4Address("192.168.1.2")
        assert line.data_port == (19 << 8) | 137
        assert line.is_pasv_reply

    def test_plain_line_opaque(self):
        line = FtpControl.from_line("USER anonymous")
        assert not line.advertises_endpoint
        assert line.data_port is None

    def test_out_of_range_octet_rejected(self):
        with pytest.raises(HeaderError):
            FtpControl.from_line("PORT 10,0,0,1,999,1")

    def test_wire_roundtrip(self):
        line = FtpControl.from_line("PORT 10,0,0,1,4,1")
        decoded, rest = FtpControl.decode(line.encode())
        assert decoded == line
        assert rest == b""

    def test_decode_requires_crlf(self):
        with pytest.raises(HeaderError):
            FtpControl.decode(b"PORT 10,0,0,1,4,1")

    def test_decode_non_ascii_rejected(self):
        with pytest.raises(HeaderError):
            FtpControl.decode("ütf\r\n".encode("utf-8"))

    def test_encode_port_command_roundtrip(self):
        text = encode_port_command(IPv4Address("10.0.0.1"), 1025)
        line = FtpControl.from_line(text)
        assert line.data_port == 1025
        assert line.data_ip == IPv4Address("10.0.0.1")

    def test_encode_port_command_range(self):
        with pytest.raises(HeaderError):
            encode_port_command(IPv4Address("10.0.0.1"), 70000)

    def test_fields_namespace(self):
        fields = FtpControl.from_line("PORT 10,0,0,1,4,1").fields()
        assert fields["ftp.data_port"] == 1025
        assert "ftp.line" in fields
