"""The cross-stage dataflow analysis behind L016 (repro.lint.dataflow)."""

import pytest

from repro.lang.parser import parse
from repro.lint import lint_source
from repro.lint.dataflow import (
    Alias,
    Pin,
    rule_cross_stage_contradiction,
    stage_environments,
)


def findings(source):
    prop = parse(source)[0]
    return list(rule_cross_stage_contradiction(prop))


PINNED_EQ_NE = """\
property p "pin exposed by eq/ne"
key K
observe knock : arrival
    where tcp.dst == 7001
    bind K = ipv4.src, P = tcp.dst
observe open : arrival
    where ipv4.src == $K and tcp.dst == $P and tcp.dst != 7001
"""


class TestPinnedContradictions:
    def test_eq_var_ne_lit(self):
        (diag,) = findings(PINNED_EQ_NE)
        assert diag.code == "L016"
        assert "pins $P to 7001" in diag.message

    def test_ne_var_eq_lit(self):
        (diag,) = findings("""\
property p "the mirrored direction"
key K
observe knock : arrival
    where tcp.dst == 7001
    bind K = ipv4.src, P = tcp.dst
observe open : arrival
    where ipv4.src == $K and tcp.dst == 7001 and tcp.dst != $P
""")
        assert diag.code == "L016"

    def test_l005_misses_what_l016_catches(self):
        """The acceptance bar: the pinned fixture is invisible to L005."""
        report = lint_source(PINNED_EQ_NE)
        codes = {d.code for d in report.all_diagnostics()}
        assert "L016" in codes
        assert "L005" not in codes

    def test_related_positions_point_at_both_sites(self):
        (diag,) = findings(PINNED_EQ_NE)
        assert len(diag.related) == 2
        # related notes render in source order: the earlier stage's bind
        # precedes the conflicting guard on the later stage
        pin_site, conflicting = diag.related
        assert "conflicts with the guard" in conflicting.message
        assert pin_site.line < diag.line  # the earlier stage's bind
        assert "pinned here" in pin_site.message


class TestAliases:
    def test_aliased_vars_contradict(self):
        (diag,) = findings("""\
property p "X and Y are the same value"
key X
observe first : arrival
    bind X = ipv4.src
observe second : arrival
    where ipv4.src == $X
    bind Y = ipv4.src
observe third : arrival
    where eth.src == $X and eth.src != $Y
""")
        assert diag.code == "L016"
        assert "binds $Y equal to $X" in diag.message

    def test_pin_flows_through_alias(self):
        (diag,) = findings("""\
property p "Y inherits X's pin"
key X
observe first : arrival
    where tcp.dst == 22
    bind X = tcp.dst
observe second : arrival
    where tcp.src == $X
    bind Y = tcp.src
observe third : arrival
    where tcp.dst == $Y and tcp.dst != 22
""")
        assert diag.code == "L016"


class TestInvalidation:
    def test_rebind_drops_the_pin(self):
        assert findings("""\
property p "P is rebound off an unguarded field"
key K
observe knock : arrival
    where tcp.dst == 7001
    bind K = ipv4.src, P = tcp.dst
observe refresh : arrival
    where ipv4.src == $K
    bind P = tcp.src
observe open : arrival
    where ipv4.src == $K and tcp.dst == $P and tcp.dst != 7001
""") == []

    def test_alias_to_rebound_var_is_materialised(self):
        """Y == old-X survives X's rebind as a pin."""
        (diag,) = findings("""\
property p "Y keeps the old pinned value"
key X
observe first : arrival
    where tcp.dst == 22
    bind X = tcp.dst
observe second : arrival
    where tcp.src == $X
    bind Y = tcp.src
observe third : arrival
    bind X = tcp.src
observe fourth : arrival
    where tcp.dst == $Y and tcp.dst != 22
""")
        assert diag.code == "L016"

    def test_alias_to_unpinned_rebound_var_is_severed(self):
        assert findings("""\
property p "no fact survives: old X was never pinned"
key X
observe first : arrival
    bind X = tcp.dst
observe second : arrival
    where tcp.src == $X
    bind Y = tcp.src
observe third : arrival
    bind X = tcp.src
observe fourth : arrival
    where tcp.dst == $X and tcp.dst != $Y
""") == []


class TestNoFalsePositives:
    def test_consistent_pin_is_silent(self):
        assert findings("""\
property p "the guards agree with the pin"
key K
observe knock : arrival
    where tcp.dst == 7001
    bind K = ipv4.src, P = tcp.dst
observe open : arrival
    where ipv4.src == $K and tcp.dst == $P and tcp.dst != 22
""") == []

    def test_unpinned_var_is_silent(self):
        assert findings("""\
property p "P could be anything"
key K
observe knock : arrival
    bind K = ipv4.src, P = tcp.dst
observe open : arrival
    where ipv4.src == $K and tcp.dst == $P and tcp.dst != 7001
""") == []

    def test_token_identical_pair_is_left_to_l005(self):
        report = lint_source("""\
property p "within-pattern contradiction"
key K
observe knock : arrival
    bind K = ipv4.src
observe open : arrival
    where ipv4.src == $K and tcp.dst == 22 and tcp.dst != 22
""")
        codes = [d.code for d in report.all_diagnostics()]
        assert "L005" in codes
        assert "L016" not in codes

    def test_catalog_is_clean(self):
        import glob
        import os

        pattern = os.path.join(
            os.path.dirname(__file__), "..", "..", "examples", "properties",
            "*.prop")
        paths = glob.glob(pattern)
        assert paths
        for path in paths:
            with open(path) as fp:
                report = lint_source(fp.read(), path=path)
            hits = [d for d in report.all_diagnostics() if d.code == "L016"]
            assert not hits, f"{path}: unexpected L016 {hits}"


class TestStageEnvironments:
    def test_snapshots_expose_pins_and_aliases(self):
        prop = parse("""\
property p "tooling view"
key X
observe first : arrival
    where tcp.dst == 22
    bind X = tcp.dst
observe second : arrival
    where tcp.src == $X
    bind Y = tcp.src
observe third : arrival
    where tcp.dst == 443
""")[0]
        envs = stage_environments(prop)
        assert len(envs) == 3
        assert envs[0] == {}
        assert isinstance(envs[1]["X"], Pin)
        assert envs[1]["X"].value == 22
        assert isinstance(envs[2]["Y"], Alias)
        assert envs[2]["Y"].other == "X"
