"""Regenerate the telemetry exposition golden fixtures.

Run from the repo root after a *deliberate* renderer change:

    PYTHONPATH=src python -m tests.regen_telemetry_goldens

The scenario below is pure construction — fixed counter values, fixed
histogram observations, a fixed virtual clock — so the rendered output is
byte-stable across runs and machines.  It registers one representative
metric per instrumented subsystem (monitor, switch, pipeline, instance
store, postcards) so the goldens pin the full family vocabulary, not just
the renderer mechanics.

``--check`` regenerates into a temp directory and diffs against the
checked-in fixtures instead of overwriting them (exit 1 on drift) — CI
runs this so the goldens cannot go stale silently.
"""

import argparse
import difflib
import os
import sys
import tempfile

from repro.telemetry import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    render_json,
    render_prometheus,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "fixtures", "telemetry",
                      "golden")

SNAPSHOT_TIME = 12.5


def build_scenario_registry():
    """A registry populated with fixed values from every metric family."""
    registry = MetricsRegistry(time_fn=lambda: SNAPSHOT_TIME)

    # Monitor family: plain counters, labeled counters, a watermark gauge.
    registry.counter("repro_monitor_events_total",
                     "Events observed by the monitor").inc(86)
    registry.counter("repro_monitor_violations_total",
                     "Violations raised").inc(12)
    advances = registry.counter(
        "repro_monitor_stage_advances_total",
        "Stage advances by property and stage",
        labels={"property": "learned_unicast", "stage": "learn"})
    advances.inc(40)
    registry.counter(
        "repro_monitor_stage_advances_total",
        "Stage advances by property and stage",
        labels={"property": "learned_unicast", "stage": "bad_egress"}).inc(12)
    live = registry.gauge("repro_monitor_live_instances",
                          "Live instances across all properties")
    live.set(9)
    live.set(4)  # the peak (9) must survive the drop

    # Instance-store family: a labeled gauge.
    registry.gauge("repro_instance_store_live_instances",
                   "Live instances per property",
                   labels={"property": "learned_unicast"}).set(4)

    # Switch family: a latency histogram with known observations.
    latency = registry.histogram("repro_switch_forward_latency_seconds",
                                 "Per-packet forwarding latency",
                                 buckets=LATENCY_BUCKETS)
    for value in (2e-6, 5e-6, 3e-4, 3e-4, 0.25):
        latency.observe(value)
    registry.counter("repro_switch_arrivals_total",
                     "Packets received").inc(40)

    # Pipeline family: per-table hit/miss counters.
    registry.counter("repro_pipeline_table_hits_total",
                     "Table lookup hits", labels={"table": "0"}).inc(35)
    registry.counter("repro_pipeline_table_misses_total",
                     "Table lookup misses", labels={"table": "0"}).inc(5)

    # Postcard family.
    registry.counter("repro_postcards_bytes_total",
                     "Postcard bytes shipped to the collector").inc(3520)

    # Fabric family: the router counter, per-shard labeled series, and
    # the imbalance gauge (86 events split 48/38 across two shards).
    registry.counter("repro_fabric_router_events_total",
                     "Events offered to the fabric router").inc(86)
    for shard, count in (("0", 48), ("1", 38)):
        registry.counter("repro_fabric_shard_events_total",
                         "Events forwarded to one shard",
                         labels={"shard": shard}).inc(count)
        registry.histogram("repro_fabric_shard_batch_events",
                           "Sub-batch sizes forwarded to one shard per split",
                           labels={"shard": shard},
                           buckets=COUNT_BUCKETS).observe(count)
        registry.gauge(
            "repro_fabric_shard_queue_depth",
            "Events forwarded to one shard and not yet confirmed "
            "by a snapshot sync (always 0 for in-process shards)",
            labels={"shard": shard}).set(0)
    registry.gauge(
        "repro_fabric_router_imbalance",
        "Max over mean of cumulative per-shard event counts "
        "(1.0 = perfectly balanced, 0 = no events yet)").set(48 / 43)

    # Supervision family: shard 0 crashed once and recovered (journal of
    # 17 events replayed in 80ms); shard 1 never went down.
    for shard, restarts, depth, up in (("0", 1, 17, 1), ("1", 0, 0, 1)):
        registry.counter(
            "repro_fabric_shard_restarts_total",
            "Worker restarts performed by the fabric supervisor",
            labels={"shard": shard}).inc(restarts)
        registry.gauge(
            "repro_fabric_journal_depth",
            "Events in one shard's recovery journal (replayable "
            "since the last checkpoint)",
            labels={"shard": shard}).set(depth)
        registry.gauge(
            "repro_fabric_shard_up",
            "1 when the shard worker is live, 0 while it is "
            "down/recovering or permanently failed",
            labels={"shard": shard}).set(up)
    registry.histogram(
        "repro_fabric_recovery_seconds",
        "Wall seconds from restart attempt to a rehydrated, "
        "replayed, and re-advanced replacement worker",
        unit="seconds", buckets=LATENCY_BUCKETS).observe(0.08)
    registry.counter(
        "repro_fabric_quarantined_batches_total",
        "Poison batches set aside (ledgered, never retried) "
        "after repeatedly killing a shard worker").inc(0)

    return registry


def generate(out_dir):
    """Write both renderings into ``out_dir``; return the file names."""
    registry = build_scenario_registry()
    snapshot = registry.snapshot()
    with open(os.path.join(out_dir, "snapshot.prom"), "w",
              encoding="utf-8") as fp:
        fp.write(render_prometheus(snapshot))
    with open(os.path.join(out_dir, "snapshot.json"), "w",
              encoding="utf-8") as fp:
        fp.write(render_json(snapshot))
        fp.write("\n")
    return ["snapshot.prom", "snapshot.json"]


def check():
    drifted = False
    with tempfile.TemporaryDirectory() as tmp:
        for name in generate(tmp):
            with open(os.path.join(GOLDEN, name), encoding="utf-8") as fp:
                want = fp.readlines()
            with open(os.path.join(tmp, name), encoding="utf-8") as fp:
                got = fp.readlines()
            if want != got:
                drifted = True
                sys.stdout.writelines(difflib.unified_diff(
                    want, got, fromfile=f"golden/{name}",
                    tofile=f"regenerated/{name}"))
    if drifted:
        print("telemetry goldens drifted: rerun "
              "PYTHONPATH=src python -m tests.regen_telemetry_goldens")
        return 1
    print("telemetry goldens up to date")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="diff regenerated goldens against fixtures instead of writing")
    args = parser.parse_args()
    if args.check:
        raise SystemExit(check())
    os.makedirs(GOLDEN, exist_ok=True)
    for name in generate(GOLDEN):
        print(f"wrote {os.path.join(GOLDEN, name)}")


if __name__ == "__main__":
    main()
