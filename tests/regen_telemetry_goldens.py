"""Regenerate the telemetry exposition golden fixtures.

Run from the repo root after a *deliberate* renderer change:

    PYTHONPATH=src python -m tests.regen_telemetry_goldens

The scenario below is pure construction — fixed counter values, fixed
histogram observations, a fixed virtual clock — so the rendered output is
byte-stable across runs and machines.  It registers one representative
metric per instrumented subsystem (monitor, switch, pipeline, instance
store, postcards) so the goldens pin the full family vocabulary, not just
the renderer mechanics.
"""

import os

from repro.telemetry import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    render_json,
    render_prometheus,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "fixtures", "telemetry",
                      "golden")

SNAPSHOT_TIME = 12.5


def build_scenario_registry():
    """A registry populated with fixed values from every metric family."""
    registry = MetricsRegistry(time_fn=lambda: SNAPSHOT_TIME)

    # Monitor family: plain counters, labeled counters, a watermark gauge.
    registry.counter("repro_monitor_events_total",
                     "Events observed by the monitor").inc(86)
    registry.counter("repro_monitor_violations_total",
                     "Violations raised").inc(12)
    advances = registry.counter(
        "repro_monitor_stage_advances_total",
        "Stage advances by property and stage",
        labels={"property": "learned_unicast", "stage": "learn"})
    advances.inc(40)
    registry.counter(
        "repro_monitor_stage_advances_total",
        "Stage advances by property and stage",
        labels={"property": "learned_unicast", "stage": "bad_egress"}).inc(12)
    live = registry.gauge("repro_monitor_live_instances",
                          "Live instances across all properties")
    live.set(9)
    live.set(4)  # the peak (9) must survive the drop

    # Instance-store family: a labeled gauge.
    registry.gauge("repro_instance_store_live_instances",
                   "Live instances per property",
                   labels={"property": "learned_unicast"}).set(4)

    # Switch family: a latency histogram with known observations.
    latency = registry.histogram("repro_switch_forward_latency_seconds",
                                 "Per-packet forwarding latency",
                                 buckets=LATENCY_BUCKETS)
    for value in (2e-6, 5e-6, 3e-4, 3e-4, 0.25):
        latency.observe(value)
    registry.counter("repro_switch_arrivals_total",
                     "Packets received").inc(40)

    # Pipeline family: per-table hit/miss counters.
    registry.counter("repro_pipeline_table_hits_total",
                     "Table lookup hits", labels={"table": "0"}).inc(35)
    registry.counter("repro_pipeline_table_misses_total",
                     "Table lookup misses", labels={"table": "0"}).inc(5)

    # Postcard family.
    registry.counter("repro_postcards_bytes_total",
                     "Postcard bytes shipped to the collector").inc(3520)

    return registry


def main():
    os.makedirs(GOLDEN, exist_ok=True)
    registry = build_scenario_registry()
    snapshot = registry.snapshot()
    prom_path = os.path.join(GOLDEN, "snapshot.prom")
    json_path = os.path.join(GOLDEN, "snapshot.json")
    with open(prom_path, "w", encoding="utf-8") as fp:
        fp.write(render_prometheus(snapshot))
    with open(json_path, "w", encoding="utf-8") as fp:
        fp.write(render_json(snapshot))
        fp.write("\n")
    print(f"wrote {prom_path}")
    print(f"wrote {json_path}")


if __name__ == "__main__":
    main()
