#!/usr/bin/env python3
"""Survey: which approaches can host which properties?

Regenerates the paper's Table 2 from the executable backend models, then
goes one step further than the paper: for every Table 1 property, ask each
backend to *compile* it and report the first missing feature — connecting
the two tables ("this property needs features only these approaches have").

Run:  python examples/backend_survey.py
"""

from repro.backends import UnsupportedFeature, all_backends, render_table2
from repro.props import build_table1


def main() -> None:
    print("=== Table 2: semantic features per approach "
          "(Y = supported, X = precluded, blank = target-dependent) ===\n")
    print(render_table2())

    print("\n\n=== Which backends can host each Table 1 property? ===\n")
    backends = all_backends()
    names = [b.caps.name for b in backends]
    width = max(len(n) for n in names) + 2

    for entry in build_table1():
        print(f"{entry.group}: {entry.description}")
        for backend in backends:
            try:
                backend.check(entry.prop)
                verdict = "ok"
            except UnsupportedFeature as exc:
                verdict = f"no — {exc.feature}"
            print(f"    {backend.caps.name:<{width}} {verdict}")
        print()

    # The headline the paper argues for: count per backend.
    print("=== Properties hostable per approach ===\n")
    for backend in backends:
        hosted = 0
        for entry in build_table1():
            try:
                backend.check(entry.prop)
                hosted += 1
            except UnsupportedFeature:
                pass
        print(f"  {backend.caps.name:<{width}} {hosted:2d} / 13")
    print("\nOnly Varanus — designed with monitoring as an explicit goal — "
          "covers the catalog; everything else hits a semantic gap.")


if __name__ == "__main__":
    main()
