#!/usr/bin/env python3
"""NAT reverse-translation monitoring — the Sec. 2.2 worked example.

Four observations, connected by packet identity (Feature 5), with the
final stage a disjunctive negative match (Feature 6):

  (1) A,P -> B,Q arrives from inside      (2) the same packet leaves as A',P'
  (3) B,Q -> A',P' arrives from outside   (4) the same packet leaves with
                                              destination != A,P  => violation

The script runs a correct NAT (clean) and a NAT with a corrupted reverse
mapping (caught), printing the violation with FULL provenance so the whole
four-event witness is visible.

Run:  python examples/nat_monitoring.py
"""

from repro.apps import NatApp, sometimes
from repro.core import Monitor, ProvenanceLevel
from repro.netsim import single_switch_network
from repro.packet import IPv4Address, tcp_packet
from repro.props import nat_reverse_translation
from repro.switch.pipeline import MissPolicy

PUBLIC_IP = IPv4Address("203.0.113.1")


def run(nat: NatApp):
    net, switch, hosts = single_switch_network(
        2, switch_kwargs={"miss_policy": MissPolicy.CONTROLLER}
    )
    switch.set_app(nat)
    monitor = Monitor(scheduler=net.scheduler,
                      provenance=ProvenanceLevel.FULL)
    monitor.add_property(nat_reverse_translation())
    monitor.attach(switch)

    # Outbound: 10.0.0.1:5555 -> 198.51.100.1:80 (gets translated).
    hosts[0].send(tcp_packet(1, 2, "10.0.0.1", "198.51.100.1", 5555, 80))
    net.run()
    # Return traffic to the translation's public endpoint.
    hosts[1].send(tcp_packet(2, 1, "198.51.100.1", str(PUBLIC_IP),
                             80, 40000))
    net.run()
    return monitor


def main() -> None:
    print("correct NAT:")
    clean = run(NatApp(public_ip=PUBLIC_IP))
    print(f"  violations: {len(clean.violations)} (expected 0)\n")
    assert not clean.violations

    print("NAT with corrupted reverse port mapping:")
    buggy = run(NatApp(public_ip=PUBLIC_IP,
                       faults=sometimes("corrupt_reverse", 1.0)))
    print(f"  violations: {len(buggy.violations)} (expected 1)\n")
    assert len(buggy.violations) == 1

    violation = buggy.violations[0]
    print(violation.describe())
    print()
    print("bindings carried with the alert (limited provenance for free):")
    for name in ("A", "P", "B", "Q", "A2", "P2"):
        print(f"  {name:>3} = {violation.bindings[name]}")
    print()
    print("note the four-stage history above: both 'same packet' links "
          "(arrival->egress) survived the header rewrites, because packet "
          "identity is tracked on-switch (Feature 5).")


if __name__ == "__main__":
    main()
