#!/usr/bin/env python3
"""Quickstart: catch a buggy learning switch in the act.

The paper's opening example (Sec. 1): "Once a destination D is learned,
packets to D are unicast on the appropriate port."  We build a one-switch
network, run a learning switch with an injected wrong-port bug, attach the
monitor, and watch the violation appear — with the bound values (which
destination, which port) carried along for free.

Run:  python examples/quickstart.py
"""

from repro.apps import LearningSwitchApp, sometimes
from repro.core import Monitor
from repro.netsim import single_switch_network
from repro.packet import ethernet
from repro.props import learned_unicast_port
from repro.switch.pipeline import MissPolicy


def main() -> None:
    # A switch with three hosts; table misses punt to the controller app.
    net, switch, hosts = single_switch_network(
        3, switch_kwargs={"miss_policy": MissPolicy.CONTROLLER}
    )

    # The system under test: MAC learning with a deterministic bug that
    # unicasts known destinations out the wrong port.
    switch.set_app(LearningSwitchApp(faults=sometimes("wrong_port", 1.0)))

    # The monitor: attach the Sec. 1 property as a dataplane tap.
    monitor = Monitor(scheduler=net.scheduler)
    monitor.add_property(learned_unicast_port())
    monitor.attach(switch)

    # Drive traffic: h1 talks (teaching the switch MAC 1 lives on port 1),
    # then h2 sends to MAC 1 — which the buggy switch misdelivers.
    hosts[0].send(ethernet(1, 2))
    net.run()
    hosts[1].send(ethernet(2, 1))
    net.run()

    print(f"events observed : {monitor.stats.events}")
    print(f"violations      : {len(monitor.violations)}\n")
    for violation in monitor.violations:
        print(violation.describe())
        print()

    assert monitor.violations, "expected the wrong-port bug to be caught"
    print("the monitor caught the learning switch misdelivering — "
          "cross-packet state (learned D -> port p) made that checkable")


if __name__ == "__main__":
    main()
