#!/usr/bin/env python3
"""A tour of the property language.

Properties can be written as text (the Varanus-flavoured surface syntax)
and compiled straight into the monitor.  This script writes the ARP-proxy
reply-within-T property — timeout action, negative observation, the works —
in the DSL, analyzes it statically, and runs it live against a proxy whose
replies have been sabotaged.

Run:  python examples/dsl_tour.py
"""

from repro.apps import ArpProxyApp, sometimes
from repro.core import Monitor, analyze
from repro.lang import compile_one
from repro.netsim import single_switch_network
from repro.packet import arp_reply, arp_request
from repro.props import ArpKnowledge
from repro.switch.pipeline import MissPolicy

SOURCE = """
property arp_reply_within "known-address requests are answered within T"
key D, asker
message "no reply sent for a known-address request in time"

observe known_request : arrival
    where @is_request and @known
    bind D = arp.target_ip, asker = arp.sender_mac

# A negative observation: T seconds elapsing WITHOUT this egress is the
# violation (Feature 7).  refresh never = a repeated request must NOT
# reset the clock, or a request storm every T-1 seconds hides forever.
absent no_reply : egress within 1.0 refresh never
    where @is_reply and arp.sender_ip == $D and arp.target_mac == $asker
"""


def main() -> None:
    # Named predicates referenced with @ in the source:
    knowledge = ArpKnowledge()
    from repro.props.arp import _is_arp_reply, _is_arp_request

    predicates = {
        "is_request": _is_arp_request(),
        "is_reply": _is_arp_reply(),
        "known": knowledge.known_predicate(),
    }
    prop = compile_one(SOURCE, predicates)

    print("compiled property:", prop.name)
    print("static analysis  :", analyze(prop))
    print()

    # Wire it up against a proxy that silently swallows replies.
    net, switch, hosts = single_switch_network(
        3, switch_kwargs={"miss_policy": MissPolicy.CONTROLLER}
    )
    switch.set_app(ArpProxyApp(faults=sometimes("suppress_reply", 1.0)))
    switch.add_tap(knowledge.observe)  # knowledge updates before the monitor
    monitor = Monitor(scheduler=net.scheduler)
    monitor.add_property(prop)
    monitor.attach(switch)

    # Teach the proxy 10.0.0.3's MAC, then ask for it.
    hosts[2].send(arp_reply(3, "10.0.0.3", 1, "10.0.0.1"))
    net.run()
    hosts[0].send(arp_request(1, "10.0.0.1", "10.0.0.3"))
    net.run(until=5.0)  # let the 1-second timer fire

    print(f"violations: {len(monitor.violations)} (expected 1)")
    for violation in monitor.violations:
        print(violation.describe())
    assert monitor.violations
    assert monitor.violations[0].trigger is None  # a timer fired it
    print("\nthe violation was raised by the TIMER, not a packet — the "
          "timeout action the paper says no mainstream switch supports.")


if __name__ == "__main__":
    main()
