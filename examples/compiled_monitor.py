#!/usr/bin/env python3
"""Compiling a property to pure switch rules — Varanus's mechanism, live.

The other examples monitor through the engine (an idealized on-switch
monitor).  This one uses the Varanus *compiler*: the property becomes
actual flow rules — a static entry rule whose recursive learn unrolls one
fresh table per instance, watcher rules that advance by deleting and
re-learning themselves, and (for the negative observation) a timer rule
whose expiry raises the violation.  No engine runs; the alerts come out of
the dataplane.

It then shows the price the paper pays for this design: pipeline depth
after the traffic equals the number of instances unrolled.

Run:  python examples/compiled_monitor.py
"""

from repro.backends import compile_property
from repro.core import (
    Absent,
    Bind,
    Const,
    EventKind,
    EventPattern,
    FieldEq,
    Observe,
    PropertySpec,
    Var,
)
from repro.netsim import EventScheduler
from repro.packet import tcp_syn
from repro.switch.pipeline import MissPolicy
from repro.switch.switch import Switch


def knock_must_be_answered(T: float = 2.0) -> PropertySpec:
    """A 7001 knock must be followed by a 7002 knock within T seconds."""
    return PropertySpec(
        name="knock-answered",
        description=f"a 7001 knock is followed by 7002 within {T}s",
        stages=(
            Observe("knock", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("tcp.dst", Const(7001)),),
                binds=(Bind("knocker", "ipv4.src"),))),
            Absent("no_followup", EventPattern(
                kind=EventKind.ARRIVAL,
                guards=(FieldEq("ipv4.src", Var("knocker")),
                        FieldEq("tcp.dst", Const(7002)))),
                within=T),
        ),
        key_vars=("knocker",),
    )


def main() -> None:
    scheduler = EventScheduler()
    switch = Switch("mon", scheduler, num_ports=2, num_tables=1,
                    miss_policy=MissPolicy.FLOOD)
    compile_property(switch, knock_must_be_answered())

    alerts = []
    switch.add_alert_sink(alerts.append)

    def knock(when, src, dport):
        scheduler.call_at(
            when,
            lambda: switch.receive(
                tcp_syn(1, 2, src, "10.0.0.99", 30000, dport), 1))

    print(f"pipeline depth before traffic: {switch.pipeline.depth}")

    # Three knockers; only one follows up in time.
    knock(0.0, "10.0.0.1", 7001)
    knock(0.5, "10.0.0.2", 7001)
    knock(0.8, "10.0.0.3", 7001)
    knock(1.0, "10.0.0.1", 7002)  # answered: instance discharged
    scheduler.run()

    print(f"pipeline depth after traffic : {switch.pipeline.depth} "
          "(one unrolled table per instance)")
    print(f"slow-path rule updates       : {switch.meter.slow_updates}")
    print(f"\ndataplane alerts: {len(alerts)} (expected 2 — hosts .2 and .3 "
          "never followed up)")
    for alert in alerts:
        print(f"  [{alert.message}] carried: "
              f"{ {k: str(v) for k, v in alert.carried.items()} }")
    assert len(alerts) == 2
    assert str(alerts[0].carried["ipv4.src"]) != str(alerts[1].carried["ipv4.src"])
    print("\nno monitor engine was involved: the violations were raised by "
          "rule timers the compiler installed (Feature 7, on real rules).")


if __name__ == "__main__":
    main()
