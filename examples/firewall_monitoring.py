#!/usr/bin/env python3
"""The stateful-firewall walk-through of Sec. 2.1.

The paper refines one property three times, each refinement fixing a
soundness hole the previous version had against real firewalls:

1. basic     — "after A->B, packets B->A are not dropped"
               (false-alarms when the firewall correctly expires state);
2. + timeout — "...for T seconds after A->B" (Feature 3);
3. + close   — "...or until the connection is closed" (Feature 4).

This script runs all three against a *correct* firewall on three scenarios
and prints which property versions false-alarm where, then confirms that
the fully-refined property still catches a genuinely buggy firewall.

Run:  python examples/firewall_monitoring.py
"""

from repro.apps import StatefulFirewallApp, sometimes
from repro.core import Monitor
from repro.netsim import single_switch_network
from repro.packet import tcp_fin, tcp_packet
from repro.props import firewall_basic, firewall_timed, firewall_with_close
from repro.switch.pipeline import MissPolicy

T = 5.0  # the firewall's advertised state timeout


def run_scenario(app, scenario) -> dict:
    """Run one traffic scenario; returns violations per property version."""
    net, switch, hosts = single_switch_network(
        2, switch_kwargs={"miss_policy": MissPolicy.CONTROLLER}
    )
    switch.set_app(app)
    monitor = Monitor(scheduler=net.scheduler)
    props = {
        "basic": firewall_basic(),
        "timed": firewall_timed(T=T, name="fw-timed"),
        "with-close": firewall_with_close(T=T, name="fw-close"),
    }
    for prop in props.values():
        monitor.add_property(prop)
    monitor.attach(switch)

    scenario(hosts)
    net.run()
    counts = {label: 0 for label in props}
    for violation in monitor.violations:
        for label, prop in props.items():
            if violation.property_name == prop.name:
                counts[label] += 1
    return counts


def outbound(hosts, t=0.0, sport=10000):
    hosts[0].send_at(t, tcp_packet(1, 2, "10.0.0.1", "198.51.100.1",
                                   sport, 80))


def inbound(hosts, t, sport=10000):
    hosts[1].send_at(t, tcp_packet(2, 1, "198.51.100.1", "10.0.0.1",
                                   80, sport))


def close_from_inside(hosts, t, sport=10000):
    hosts[0].send_at(t, tcp_fin(1, 2, "10.0.0.1", "198.51.100.1", sport, 80))


def scenario_normal(hosts):
    """Happy path: outbound opens the pinhole, return traffic flows."""
    outbound(hosts)
    inbound(hosts, t=1.0)


def scenario_stale(hosts):
    """Return traffic arrives AFTER the firewall's state expired — the
    firewall correctly drops it."""
    outbound(hosts)
    inbound(hosts, t=T + 5.0)


def scenario_closed(hosts):
    """The connection closes, then late return traffic — correctly
    dropped, inside the timeout window."""
    outbound(hosts)
    close_from_inside(hosts, t=1.0)
    inbound(hosts, t=2.0)


def main() -> None:
    print(f"correct firewall (state timeout {T}s); violations reported "
          "per property version\n")
    header = f"{'scenario':<22}{'basic':>8}{'timed':>8}{'with-close':>12}"
    print(header)
    print("-" * len(header))
    rows = [
        ("normal exchange", scenario_normal),
        ("stale return (> T)", scenario_stale),
        ("return after close", scenario_closed),
    ]
    for label, scenario in rows:
        counts = run_scenario(StatefulFirewallApp(state_timeout=T), scenario)
        print(f"{label:<22}{counts['basic']:>8}{counts['timed']:>8}"
              f"{counts['with-close']:>12}")

    print("""
Reading the table: against a CORRECT firewall every count should be 0.
The basic property false-alarms on both expiry and close; adding the
timeout (Feature 3) fixes the first; adding the close obligation
(Feature 4) fixes the second.
""")

    # And the refined property still catches a real bug:
    buggy = StatefulFirewallApp(state_timeout=T,
                                faults=sometimes("drop_valid", 1.0))
    counts = run_scenario(buggy, scenario_normal)
    print(f"buggy firewall (drops valid return traffic): "
          f"with-close reports {counts['with-close']} violation(s)")
    assert counts["with-close"] == 1


if __name__ == "__main__":
    main()
