"""Chaos runs over the Table-1 catalog, with degradation reporting.

This is the harness behind ``repro chaos``: replay a seeded mixed workload
against the full property catalog twice — once clean, once under a named
:class:`~repro.netsim.chaos.ChaosProfile` — and compare.  The degraded
run's overflow ledger turns its raw violation count into an uncertainty
interval (``degraded - potential_false <= true <= degraded +
potential_missed``); for profiles whose only divergence sources are
monitor-side (``profile.ledgered``), the clean count is checked against
that interval.  Profiles with link faults perturb the event stream before
the monitor sees it, so they report detection recall instead.

Everything runs on the virtual clock from one seed: two invocations with
the same profile and seed produce identical reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .core import DegradationPolicy, Monitor
from .netsim.chaos import PROFILES, ChaosProfile, FaultyEventChannel
from .props import build_table1
from .switch.events import (
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
)
from .switch.switch import ProcessingMode
from .telemetry import MetricsRegistry

DEFAULT_EVENTS = 2000
DEFAULT_SETTLE = 600.0


def catalog_trace(seed: int, num_events: int = DEFAULT_EVENTS) -> List:
    """A randomized event stream touching every protocol Table 1 reads.

    The same generator shape as the soak test's mixed workload: TCP data
    and SYN/FIN traffic, ARP request/reply, DHCP, raw ethernet, port
    up/down out-of-band events, with uid-coherent egress of previously
    arrived packets.
    """
    from .packet import (
        DhcpMessageType,
        arp_reply,
        arp_request,
        dhcp_packet,
        ethernet,
        tcp_fin,
        tcp_packet,
        tcp_syn,
    )

    rng = random.Random(seed)
    events: List = []
    t = 0.0
    uid_pool: List = []
    for _ in range(num_events):
        t += rng.uniform(1e-4, 0.05)
        roll = rng.random()
        src, dst = rng.randint(1, 8), rng.randint(1, 8)
        if roll < 0.25:
            packet = tcp_packet(src, dst, f"10.0.0.{src}",
                                f"198.51.100.{dst}",
                                rng.randint(1000, 1040),
                                rng.choice([80, 22, 7001, 7002, 8080]))
        elif roll < 0.40:
            packet = tcp_syn(src, 0xFE, f"10.0.0.{src}", "10.0.0.100",
                             rng.randint(1000, 1040), 8080)
        elif roll < 0.55:
            packet = arp_request(src, f"10.0.0.{src}",
                                 f"10.0.0.{rng.randint(1, 120)}")
        elif roll < 0.62:
            packet = arp_reply(src, f"10.0.0.{src}", dst, f"10.0.0.{dst}")
        elif roll < 0.72:
            packet = dhcp_packet(src, rng.choice(
                [DhcpMessageType.REQUEST, DhcpMessageType.ACK,
                 DhcpMessageType.RELEASE]),
                xid=rng.randint(1, 9),
                yiaddr=f"10.0.0.{100 + rng.randint(0, 9)}",
                server_id=f"10.0.0.{250 + rng.randint(0, 3)}")
        elif roll < 0.80:
            packet = tcp_fin(src, dst, f"10.0.0.{src}", f"198.51.100.{dst}",
                             rng.randint(1000, 1040), 80)
        elif roll < 0.85:
            events.append(OutOfBandEvent(
                switch_id="s", time=t,
                oob_kind=rng.choice([OobKind.PORT_DOWN, OobKind.PORT_UP]),
                port=rng.randint(1, 4)))
            continue
        else:
            packet = ethernet(src, dst)
        kind = rng.random()
        if kind < 0.5:
            events.append(PacketArrival(switch_id="s", time=t, packet=packet,
                                        in_port=rng.randint(1, 4)))
            uid_pool.append(packet)
        elif kind < 0.85 and uid_pool:
            prior = rng.choice(uid_pool[-50:])
            events.append(PacketEgress(
                switch_id="s", time=t, packet=prior, in_port=1,
                out_port=rng.randint(1, 4),
                action=rng.choice([EgressAction.UNICAST, EgressAction.FLOOD])))
        else:
            events.append(PacketDrop(switch_id="s", time=t, packet=packet,
                                     in_port=rng.randint(1, 4), reason="x"))
    return events


def degradation_policy(profile: ChaosProfile) -> Optional[DegradationPolicy]:
    """The monitor-side policy a profile implies (None = unbounded)."""
    if profile.max_instances is None and profile.max_pending_ops is None:
        return None
    return DegradationPolicy(
        max_instances=profile.max_instances,
        eviction=profile.eviction,
        max_pending_ops=profile.max_pending_ops,
        retry_backoff=profile.retry_backoff,
        max_retries=profile.max_retries,
    )


def monitor_profile_kwargs(
    profile: Optional[ChaosProfile] = None,
) -> Dict[str, object]:
    """The ``Monitor(...)`` kwargs a chaos profile implies.

    Called once per monitor (or per fabric shard): fault channels carry
    RNG state, so every call mints fresh ones rather than sharing.
    """
    if profile is None or (
        profile.mode == "inline"
        and profile.control.is_null
        and not profile.degraded()
    ):
        return {}
    return {
        "mode": (ProcessingMode.SPLIT if profile.mode == "split"
                 else ProcessingMode.INLINE),
        "split_lag": profile.split_lag,
        "degradation": degradation_policy(profile),
        "op_faults": (None if profile.control.is_null
                      else profile.control.channel(name=profile.name)),
    }


def build_monitor(
    profile: Optional[ChaosProfile] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Monitor:
    """A catalog monitor, optionally configured for a chaos profile."""
    monitor = Monitor(registry=registry, **monitor_profile_kwargs(profile))
    for entry in build_table1():
        monitor.add_property(entry.prop)
    return monitor


def build_sharded_monitor(
    profile: Optional[ChaosProfile] = None,
    num_shards: int = 2,
    mode: str = "inprocess",
    registry: Optional[MetricsRegistry] = None,
    supervision=None,
):
    """A catalog :class:`~repro.fabric.ShardedMonitor` for a profile.

    Each shard gets its own profile-derived kwargs — in particular its
    own control-channel fault source and its own bounded-store budget
    (per-shard capacity, a documented difference from the single
    monitor's global bound).  ``supervision`` is an optional
    :class:`~repro.fabric.SupervisorPolicy` for mp-mode crash recovery.
    """
    from .fabric import ShardedMonitor

    props = [entry.prop for entry in build_table1()]
    return ShardedMonitor(
        props,
        num_shards=num_shards,
        mode=mode,
        registry=registry,
        monitor_kwargs_fn=lambda idx: monitor_profile_kwargs(profile),
        supervision=supervision,
    )


@dataclass
class RunResult:
    """One monitor run: verdicts plus the state needed for invariants."""

    monitor: Monitor
    events_offered: int
    events_seen: int
    link_counters: Dict[str, int]

    @property
    def per_property(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.monitor.violations:
            counts[violation.property_name] = \
                counts.get(violation.property_name, 0) + 1
        return counts

    def fingerprint(self) -> List[Tuple]:
        """Deterministic digest of every violation (order-sensitive)."""
        return [
            (v.property_name, round(v.time, 9),
             tuple(sorted((k, str(val)) for k, val in v.bindings.items())))
            for v in self.monitor.violations
        ]


def run_events(
    profile: Optional[ChaosProfile],
    events: List,
    settle: float = DEFAULT_SETTLE,
    registry: Optional[MetricsRegistry] = None,
) -> RunResult:
    """Feed one event stream through a (possibly chaotic) monitor."""
    offered = len(events)
    link_counters: Dict[str, int] = {}
    if profile is not None and not profile.link.is_null:
        channel = FaultyEventChannel(profile.link, name=profile.name)
        events = channel.transform(events)
        link_counters = dict(channel.counters)
    monitor = build_monitor(profile, registry=registry)
    if registry is not None:
        registry.time_fn = lambda: monitor.now
    for event in events:
        monitor.observe(event)
    if events:
        monitor.advance_to(events[-1].time + settle)
    return RunResult(
        monitor=monitor,
        events_offered=offered,
        events_seen=len(events),
        link_counters=link_counters,
    )


def check_invariants(result: RunResult) -> List[str]:
    """The soak-mode guarantees: nothing crashed, leaked, or stalled."""
    problems: List[str] = []
    monitor = result.monitor
    stats = monitor.stats
    retired = (stats.violations + stats.instances_expired
               + stats.instances_discharged + stats.instances_cancelled
               + stats.instances_evicted)
    live = monitor.live_instances()
    if stats.instances_created != live + retired:
        problems.append(
            f"instance accounting leak: created={stats.instances_created} "
            f"!= live={live} + retired={retired}")
    if monitor.pending_op_count() != 0:
        problems.append(
            f"{monitor.pending_op_count()} split-mode op(s) never applied "
            "after settle")
    for name, store in monitor._stores.items():
        if store.capacity is not None and store.live_count > store.capacity:
            problems.append(
                f"store {name!r} over capacity: "
                f"{store.live_count} > {store.capacity}")
    return problems


@dataclass
class PropertyDegradation:
    """Clean-vs-degraded verdict for one property."""

    name: str
    clean: int
    degraded: int
    potential_missed: int
    potential_false: int
    interval: Tuple[int, int]
    #: whether the clean count falls inside the interval; None when the
    #: profile has unledgered divergence sources (link faults)
    bounded: Optional[bool]
    recall: float


@dataclass
class DegradationReport:
    """What running a chaos profile did to detection quality."""

    profile: str
    seed: int
    events_offered: int
    events_delivered: int
    clean_total: int
    degraded_total: int
    interval: Tuple[int, int]
    bounded: Optional[bool]
    recall: float
    properties: List[PropertyDegradation]
    ledger: Dict[str, object]
    link_counters: Dict[str, int]
    invariant_failures: List[str] = field(default_factory=list)
    telemetry: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "events": {
                "offered": self.events_offered,
                "delivered": self.events_delivered,
            },
            "violations": {
                "clean": self.clean_total,
                "degraded": self.degraded_total,
                "interval": list(self.interval),
                "bounded": self.bounded,
                "recall": self.recall,
            },
            "properties": [
                {
                    "name": p.name,
                    "clean": p.clean,
                    "degraded": p.degraded,
                    "potential_missed": p.potential_missed,
                    "potential_false": p.potential_false,
                    "interval": list(p.interval),
                    "bounded": p.bounded,
                    "recall": p.recall,
                }
                for p in self.properties
            ],
            "ledger": self.ledger,
            "link_counters": self.link_counters,
            "invariant_failures": list(self.invariant_failures),
            "telemetry": self.telemetry,
        }


def _recall(clean: int, degraded: int) -> float:
    if clean == 0:
        return 1.0
    return min(clean, degraded) / clean


def compare_runs(
    profile: ChaosProfile,
    seed: int,
    clean: RunResult,
    degraded: RunResult,
) -> DegradationReport:
    """Build the degradation report from a clean/degraded run pair."""
    ledger = degraded.monitor.ledger
    clean_counts = clean.per_property
    degraded_counts = degraded.per_property
    names = sorted(set(clean_counts) | set(degraded_counts)
                   | set(ledger.properties()))
    properties: List[PropertyDegradation] = []
    for name in names:
        c = clean_counts.get(name, 0)
        d = degraded_counts.get(name, 0)
        interval = ledger.interval(d, name)
        properties.append(PropertyDegradation(
            name=name,
            clean=c,
            degraded=d,
            potential_missed=ledger.potential_missed(name),
            potential_false=ledger.potential_false(name),
            interval=interval,
            bounded=(interval[0] <= c <= interval[1])
            if profile.ledgered else None,
            recall=_recall(c, d),
        ))
    clean_total = len(clean.monitor.violations)
    degraded_total = len(degraded.monitor.violations)
    interval = ledger.interval(degraded_total)
    return DegradationReport(
        profile=profile.name,
        seed=seed,
        events_offered=degraded.events_offered,
        events_delivered=degraded.events_seen,
        clean_total=clean_total,
        degraded_total=degraded_total,
        interval=interval,
        bounded=(interval[0] <= clean_total <= interval[1])
        if profile.ledgered else None,
        recall=_recall(clean_total, degraded_total),
        properties=properties,
        ledger=ledger.summary(),
        link_counters=degraded.link_counters,
        invariant_failures=check_invariants(degraded)
        + check_invariants(clean),
    )


def run_chaos(
    profile: ChaosProfile,
    seed: int,
    num_events: int = DEFAULT_EVENTS,
    settle: float = DEFAULT_SETTLE,
    with_telemetry: bool = True,
) -> DegradationReport:
    """One full chaos round: clean reference run, degraded run, report."""
    events = catalog_trace(seed, num_events)
    clean = run_events(None, events, settle=settle)
    registry = MetricsRegistry() if with_telemetry else None
    degraded = run_events(profile, events, settle=settle, registry=registry)
    report = compare_runs(profile, seed, clean, degraded)
    if registry is not None:
        report.telemetry = registry.snapshot()
    return report


def render_report(report: DegradationReport) -> str:
    """Human-readable degradation report."""
    lines: List[str] = []
    lo, hi = report.interval
    lines.append(
        f"profile {report.profile!r} seed={report.seed}: "
        f"{report.events_delivered}/{report.events_offered} events "
        "reached the monitor")
    if report.bounded is None:
        bound = "unledgered (link faults): recall only"
    else:
        bound = "clean count WITHIN interval" if report.bounded \
            else "clean count OUTSIDE interval"
    lines.append(
        f"violations: clean={report.clean_total} "
        f"degraded={report.degraded_total} "
        f"interval=[{lo}, {hi}] recall={report.recall:.3f} ({bound})")
    shed = report.ledger.get("by_kind", {})
    if shed:
        detail = ", ".join(f"{k}={v}" for k, v in sorted(shed.items()))
        lines.append(f"overflow ledger: {detail}")
    else:
        lines.append("overflow ledger: empty")
    for p in report.properties:
        if p.clean == 0 and p.degraded == 0 and p.potential_missed == 0 \
                and p.potential_false == 0:
            continue
        mark = ""
        if p.bounded is True:
            mark = " ok"
        elif p.bounded is False:
            mark = " OUT-OF-BOUNDS"
        lines.append(
            f"  {p.name:<28} clean={p.clean:<4} degraded={p.degraded:<4} "
            f"interval=[{p.interval[0]}, {p.interval[1]}] "
            f"recall={p.recall:.2f}{mark}")
    for problem in report.invariant_failures:
        lines.append(f"  INVARIANT VIOLATED: {problem}")
    return "\n".join(lines)


@dataclass
class CrashRecoveryReport:
    """What SIGKILLing fabric workers mid-run did to detection quality.

    The acceptance bar: the run completes with no unhandled exception,
    every killed worker restarts within the budget, and the merged
    violation set equals the clean baseline within the overflow
    ledger's ``[lo, hi]`` uncertainty interval (``bounded``); when no
    state was actually lost, ``exact_match`` is True as well.
    """

    profile: str
    seed: int
    events: int
    shards: int
    clean_total: int
    fabric_total: int
    interval: Tuple[int, int]
    bounded: bool
    exact_match: bool
    kills_delivered: int
    kills_skipped: int
    restarts: int
    quarantined_batches: int
    failed_shards: List[int]
    shard_liveness: List[Dict[str, object]]
    per_property: Dict[str, Dict[str, int]]
    ledger: Dict[str, object]
    invariant_failures: List[str] = field(default_factory=list)
    telemetry: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "events": self.events,
            "shards": self.shards,
            "violations": {
                "clean": self.clean_total,
                "fabric": self.fabric_total,
                "interval": list(self.interval),
                "bounded": self.bounded,
                "exact_match": self.exact_match,
            },
            "recovery": {
                "kills_delivered": self.kills_delivered,
                "kills_skipped": self.kills_skipped,
                "restarts": self.restarts,
                "quarantined_batches": self.quarantined_batches,
                "failed_shards": list(self.failed_shards),
                "shards": list(self.shard_liveness),
            },
            "per_property": self.per_property,
            "ledger": self.ledger,
            "invariant_failures": list(self.invariant_failures),
            "telemetry": self.telemetry,
        }


def crash_schedule(
    profile: ChaosProfile,
    num_events: int,
    num_shards: int,
    batch: int,
) -> Dict[int, List[int]]:
    """Map batch-start event index -> shards to SIGKILL just before it.

    Kill *k* of shard *s* lands at ``at_fractions[k % len]`` of the
    stream, staggered one batch per shard so no two shards die at the
    same point (independent recoveries, not a correlated outage).
    """
    crash = profile.worker_crash
    schedule: Dict[int, List[int]] = {}
    num_batches = max(1, (num_events + batch - 1) // batch)
    for shard in range(num_shards):
        for k in range(crash.kills_per_shard):
            fraction = crash.at_fractions[k % len(crash.at_fractions)]
            index = min(num_batches - 1,
                        int(num_batches * fraction) + shard)
            schedule.setdefault(index * batch, []).append(shard)
    return schedule


def run_crash_chaos(
    profile: ChaosProfile,
    seed: int,
    num_events: int = DEFAULT_EVENTS,
    settle: float = DEFAULT_SETTLE,
    num_shards: int = 2,
    batch: int = 256,
    supervision=None,
    with_telemetry: bool = True,
) -> CrashRecoveryReport:
    """One crash-chaos round: clean baseline vs a SIGKILLed mp fabric.

    The clean run is a plain single :class:`Monitor` (the oracle the
    differential suite uses); the fabric run feeds the same stream in
    batches, delivering SIGKILL to live workers at the profile's
    schedule.  Only meaningful for mp mode — worker crashes need worker
    processes — so this always builds an mp fabric.
    """
    import os
    import signal as _signal

    from .fabric import SupervisorPolicy

    if profile.worker_crash.is_null:
        raise ValueError(
            f"profile {profile.name!r} has no worker-crash plan; "
            "use run_chaos for stream/monitor faults")
    if supervision is None:
        # Soak-friendly defaults: fast detection and restart so a
        # virtual-time replay does not stall on wall-clock backoff.
        supervision = SupervisorPolicy(
            heartbeat_interval=0.2, heartbeat_timeout=10.0,
            backoff_base=0.01, backoff_max=0.5)
    events = catalog_trace(seed, num_events)
    clean = run_events(None, events, settle=settle)
    registry = MetricsRegistry() if with_telemetry else None
    fabric = build_sharded_monitor(
        profile, num_shards=num_shards, mode="mp", registry=registry,
        supervision=supervision)
    if registry is not None:
        registry.time_fn = lambda: fabric.now
    schedule = crash_schedule(profile, len(events), num_shards, batch)
    kills_delivered = kills_skipped = 0
    try:
        for start in range(0, len(events), batch):
            for shard in schedule.get(start, ()):
                pid = fabric.supervisor.worker_pids()[shard]
                if pid is None:
                    kills_skipped += 1  # already down: nothing to kill
                    continue
                os.kill(pid, _signal.SIGKILL)
                kills_delivered += 1
            fabric.observe_batch(events[start:start + batch])
        if events:
            fabric.advance_to(events[-1].time + settle)
        fabric.stop()
    except BaseException:
        fabric.close()
        raise

    clean_counts = clean.per_property
    fabric_counts: Dict[str, int] = {}
    for violation in fabric.violations:
        fabric_counts[violation.property_name] = \
            fabric_counts.get(violation.property_name, 0) + 1
    per_property = {
        name: {"clean": clean_counts.get(name, 0),
               "fabric": fabric_counts.get(name, 0)}
        for name in sorted(set(clean_counts) | set(fabric_counts))
    }
    clean_total = len(clean.monitor.violations)
    fabric_total = len(fabric.violations)
    interval = fabric.ledger.interval(fabric_total)
    exact = (sorted(clean.fingerprint()) == sorted(
        (v.property_name, round(v.time, 9),
         tuple(sorted((k, str(val)) for k, val in v.bindings.items())))
        for v in fabric.violations))
    supervisor = fabric.supervisor
    invariants = check_invariants(clean)
    if fabric.pending_op_count() != 0:
        invariants.append(
            f"fabric retained {fabric.pending_op_count()} pending op(s)")
    report = CrashRecoveryReport(
        profile=profile.name,
        seed=seed,
        events=len(events),
        shards=num_shards,
        clean_total=clean_total,
        fabric_total=fabric_total,
        interval=interval,
        bounded=interval[0] <= clean_total <= interval[1],
        exact_match=exact,
        kills_delivered=kills_delivered,
        kills_skipped=kills_skipped,
        restarts=supervisor.total_restarts(),
        quarantined_batches=len(supervisor.quarantine_log),
        failed_shards=supervisor.failed(),
        shard_liveness=fabric.shard_liveness(),
        per_property=per_property,
        ledger=fabric.ledger.summary(),
        invariant_failures=invariants,
    )
    if registry is not None:
        report.telemetry = registry.snapshot()
    return report


def render_crash_report(report: CrashRecoveryReport) -> str:
    """Human-readable crash-recovery report."""
    lines: List[str] = []
    lo, hi = report.interval
    lines.append(
        f"profile {report.profile!r} seed={report.seed}: {report.events} "
        f"events over {report.shards} mp shards, "
        f"{report.kills_delivered} SIGKILL(s) delivered"
        + (f" ({report.kills_skipped} skipped: shard already down)"
           if report.kills_skipped else ""))
    verdict = "WITHIN interval" if report.bounded else "OUTSIDE interval"
    exact = ", exact match" if report.exact_match else ""
    lines.append(
        f"violations: clean={report.clean_total} "
        f"fabric={report.fabric_total} interval=[{lo}, {hi}] "
        f"({verdict}{exact})")
    lines.append(
        f"recovery: restarts={report.restarts} "
        f"quarantined_batches={report.quarantined_batches} "
        f"failed_shards={report.failed_shards or 'none'}")
    for row in report.shard_liveness:
        lines.append(
            f"  shard {row['shard']}: restarts={row['restarts']} "
            f"journal={row['journal_events']} "
            f"quarantined={row['quarantined_batches']}"
            + (f" FAILED ({row['down_reason']})" if row["failed"] else ""))
    shed = report.ledger.get("by_kind", {})
    if shed:
        detail = ", ".join(f"{k}={v}" for k, v in sorted(shed.items()))
        lines.append(f"overflow ledger: {detail}")
    else:
        lines.append("overflow ledger: empty")
    mismatched = {
        name: cf for name, cf in report.per_property.items()
        if cf["clean"] != cf["fabric"]
    }
    for name, cf in sorted(mismatched.items()):
        lines.append(
            f"  {name:<28} clean={cf['clean']:<4} fabric={cf['fabric']}")
    for problem in report.invariant_failures:
        lines.append(f"  INVARIANT VIOLATED: {problem}")
    return "\n".join(lines)


def run_soak(
    profile: ChaosProfile,
    seed: int,
    rounds: int,
    num_events: int = DEFAULT_EVENTS,
    settle: float = DEFAULT_SETTLE,
) -> List[DegradationReport]:
    """``--rounds N``: N independent chaos rounds on derived seeds."""
    return [
        run_chaos(profile, seed + offset, num_events=num_events,
                  settle=settle)
        for offset in range(rounds)
    ]


__all__ = [
    "DEFAULT_EVENTS",
    "DEFAULT_SETTLE",
    "PROFILES",
    "CrashRecoveryReport",
    "DegradationReport",
    "PropertyDegradation",
    "RunResult",
    "build_monitor",
    "build_sharded_monitor",
    "catalog_trace",
    "crash_schedule",
    "monitor_profile_kwargs",
    "check_invariants",
    "compare_runs",
    "degradation_policy",
    "render_crash_report",
    "render_report",
    "run_chaos",
    "run_crash_chaos",
    "run_events",
    "run_soak",
]
