"""FAST — flow-level state machines via the Open vSwitch ``learn`` action
(Table 2).

FAST encodes per-flow state machines by letting a rule install the rule
for the *next* state as packets are seen — the ``learn`` action — plus
hash functions for mapping packets to state.  Because the state lives in
OpenFlow rules, every state transition is a **slow-path** update (the
flow-table modification machinery), which is the performance wall Sec. 3.3
hits; and because ``learn`` in stock OVS offers no timeout actions and its
rule timeouts silently expire mid-machine (FAST's design omits them),
Table 2 marks rule timeouts ✗.

:class:`FastStateMachine` compiles a transition list into actual ``Learn``
rules on a :class:`~repro.switch.switch.Switch` — a genuine executable
model used by the tests; :class:`FastBackend` is the capability column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..switch.actions import Action, FieldRef, GotoTable, Learn
from ..switch.match import MatchSpec
from ..switch.switch import Switch
from .base import Backend, Capabilities


@dataclass(frozen=True)
class FastTransition:
    """One state transition compiled to a learn rule.

    ``trigger`` matches the packet that causes the transition (in the
    state's table); ``key_fields`` maps the installed next-state rule's
    match fields to the triggering packet's fields (FieldRef template) —
    FAST's per-flow keying, including the hash-like cross-field mappings
    that give it symmetric match.
    """

    from_state: int
    trigger: MatchSpec
    to_state: int
    key_fields: Tuple[Tuple[str, str], ...]  # (match field, trigger field)
    actions: Tuple[Action, ...] = ()


class FastStateMachine:
    """Compile per-flow state machines onto switch tables via learn.

    State *s* occupies ingress table ``base_table + s``; a transition from
    state *s* installs (via ``learn``) a rule in state *s+1*'s table keyed
    by the triggering packet.  The pipeline chains tables with GotoTable,
    so a packet consults every state's table in order — one lookup per
    state, mirroring FAST's pipeline organization.
    """

    def __init__(self, switch: Switch, base_table: int = 0) -> None:
        self.switch = switch
        self.base_table = base_table
        self.num_states = 0

    def install(self, transitions: Sequence[FastTransition]) -> None:
        if not transitions:
            raise ValueError("state machine needs at least one transition")
        self.num_states = max(t.to_state for t in transitions) + 1
        # Chain the state tables so each packet traverses all of them.
        for state in range(self.num_states):
            table_id = self.base_table + state
            if state < self.num_states - 1:
                self.switch.install_rule(
                    MatchSpec(),
                    [GotoTable(table_id + 1)],
                    table_id=table_id,
                    priority=1,
                    cookie=f"fast-chain-{state}",
                )
        for transition in transitions:
            self._install_transition(transition)

    def _install_transition(self, transition: FastTransition) -> None:
        table_id = self.base_table + transition.from_state
        learn = Learn(
            table_id=self.base_table + transition.to_state,
            match=tuple(
                (match_field, FieldRef(trigger_field))
                for match_field, trigger_field in transition.key_fields
            ),
            actions=transition.actions,
            priority=200,
            cookie=f"fast-state-{transition.to_state}",
        )
        goto: Tuple[Action, ...] = ()
        if transition.to_state > transition.from_state:
            goto = (GotoTable(self.base_table + transition.from_state + 1),)
        self.switch.install_rule(
            transition.trigger,
            [learn] + list(goto),
            table_id=table_id,
            priority=100,
            cookie=f"fast-trigger-{transition.from_state}",
        )

    def state_rule_count(self) -> int:
        """Installed per-flow state rules (the slow-path-updated state)."""
        return sum(
            1
            for table in self.switch.pipeline.tables
            for rule in table.rules
            if rule.cookie.startswith("fast-state-")
        )


class FastBackend(Backend):
    """Capability column for FAST."""

    def __init__(self) -> None:
        self.caps = Capabilities(
            name="FAST",
            state_mechanism="Learn action",
            update_datapath="Slow path",
            processing_mode="Inline",
            event_history=True,
            related_events=None,  # blank in the paper
            field_access="Fixed",
            negative_match=True,
            rule_timeouts=False,
            timeout_actions=False,
            symmetric_match=True,
            wandering_match=False,
            out_of_band=False,
            full_provenance=False,
            drop_visibility=False,
        )
        super().__init__()
