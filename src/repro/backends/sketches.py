"""Register-based sketches: heavy-hitter detection on the fast path.

Sec. 3.1 credits FAST's hash-function support with "enabling applications
such as load balancers and heavy-hitter detection", and Sec. 3.3 points to
"the register-based approach in P4" as the scalable state mechanism.  This
module builds that application class on the reproduction's register
substrate:

* :class:`CountMinSketch` — d hash rows over
  :class:`~repro.switch.registers.RegisterArray`; every update is a
  fast-path register write, so per-packet accounting is line-rate in the
  paper's taxonomy;
* :class:`HeavyHitterDetector` — flow-size estimation over the 5-tuple
  with a report threshold, plus an exact-counting baseline to quantify the
  sketch's overestimation (count-min never undercounts).

These are *measurement* state machines, deliberately contrasting with the
paper's *correctness* monitors: same substrate, different use of state —
the distinction the paper draws in its introduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.refs import event_fields
from ..switch.events import DataplaneEvent, PacketArrival
from ..switch.registers import RegisterArray, StateCostMeter
from .p4 import fnv1a


class CountMinSketch:
    """A count-min sketch over register arrays.

    ``depth`` independent hash rows of ``width`` counters; an update
    increments one counter per row, an estimate takes the row minimum.
    Estimates never undercount; overcounting shrinks with width.
    """

    def __init__(
        self,
        width: int = 1024,
        depth: int = 4,
        meter: Optional[StateCostMeter] = None,
    ) -> None:
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self.meter = meter if meter is not None else StateCostMeter()
        self._rows: List[RegisterArray] = [
            RegisterArray(f"cms-row-{i}", width, meter=self.meter)
            for i in range(depth)
        ]
        self.updates = 0

    def _index(self, row: int, key: Tuple) -> int:
        # Salt the key per row: independent-enough hash functions.
        return fnv1a((row * 0x9E3779B9,) + key) % self.width

    def update(self, key: Tuple, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key`` (fast-path writes)."""
        self.updates += 1
        for row, array in enumerate(self._rows):
            array.increment(self._index(row, key), count)

    def estimate(self, key: Tuple) -> int:
        """Estimated occurrence count (never below the true count)."""
        return min(
            array.read(self._index(row, key))
            for row, array in enumerate(self._rows)
        )


@dataclass(frozen=True)
class HeavyHitter:
    """One flow reported above the threshold."""

    flow: Tuple
    estimated: int
    first_reported_at: float


class HeavyHitterDetector:
    """Per-flow byte/packet accounting with threshold reporting.

    Processes arrival events; keys on the 5-tuple.  Reports each flow once,
    the first time its estimate crosses ``threshold``.  ``exact=True``
    keeps a ground-truth dict alongside the sketch so tests (and the
    overestimation bench) can compare.
    """

    def __init__(
        self,
        threshold: int = 100,
        width: int = 1024,
        depth: int = 4,
        exact: bool = False,
        meter: Optional[StateCostMeter] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.sketch = CountMinSketch(width=width, depth=depth, meter=meter)
        self.reported: Dict[Tuple, HeavyHitter] = {}
        self.exact_counts: Optional[Dict[Tuple, int]] = {} if exact else None
        self.packets_seen = 0

    def observe(self, event: DataplaneEvent) -> Optional[HeavyHitter]:
        """Process one event; returns a report if a flow just crossed."""
        if not isinstance(event, PacketArrival):
            return None
        flow = event.packet.five_tuple()
        if flow is None:
            return None
        key = (int(flow[0]), flow[1], int(flow[2]), flow[3], flow[4])
        self.packets_seen += 1
        self.sketch.update(key)
        if self.exact_counts is not None:
            self.exact_counts[key] = self.exact_counts.get(key, 0) + 1
        if key in self.reported:
            return None
        estimated = self.sketch.estimate(key)
        if estimated >= self.threshold:
            report = HeavyHitter(flow=key, estimated=estimated,
                                 first_reported_at=event.time)
            self.reported[key] = report
            return report
        return None

    def attach(self, switch) -> None:
        switch.add_tap(self.observe)

    # -- accuracy accounting ------------------------------------------------
    def true_heavy_hitters(self) -> Dict[Tuple, int]:
        """Ground truth (requires exact=True)."""
        if self.exact_counts is None:
            raise ValueError("detector was built without exact counting")
        return {
            key: count
            for key, count in self.exact_counts.items()
            if count >= self.threshold
        }

    def recall(self) -> float:
        """Fraction of true heavy hitters reported (count-min: always 1.0)."""
        truth = self.true_heavy_hitters()
        if not truth:
            return 1.0
        return sum(1 for key in truth if key in self.reported) / len(truth)

    def false_positives(self) -> int:
        """Reported flows whose true count is below the threshold."""
        if self.exact_counts is None:
            raise ValueError("detector was built without exact counting")
        return sum(
            1
            for key in self.reported
            if self.exact_counts.get(key, 0) < self.threshold
        )
