"""OpenFlow 1.3 (and 1.5) — the baseline column of Table 2.

Standard OpenFlow provides only quantitative state (counters, meters) on
the switch; *any* cross-packet state lives on the controller.  Following
the paper ("we limit our analysis of OpenFlow to actions supported in
version 1.3 — 1.5 for egress matching — without controller interaction"),
the backend rejects every property that needs event history: the switch
alone cannot hold it.

The module also provides :class:`ControllerMirror` — the thing you *would*
have to build instead: a tap that ships every dataplane event to a
controller-side monitor, charging slow-path cost per event.  This is the
"expensive to do externally" strawman of Sec. 1 ("an external monitor must
either see all such packets, or keep the full state table in its
forwarding base"), and the benchmarks use it to quantify that cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.monitor import Monitor
from ..core.provenance import ProvenanceLevel
from ..core.spec import PropertySpec
from ..core.violations import Violation
from ..switch.events import DataplaneEvent
from ..switch.registers import StateCostMeter
from .base import Backend, Capabilities


class OpenFlow13Backend(Backend):
    """OpenFlow without controller interaction: stateless beyond counters."""

    def __init__(self, version: str = "1.3") -> None:
        if version not in ("1.3", "1.5"):
            raise ValueError(f"unsupported OpenFlow version {version!r}")
        self.version = version
        self.caps = Capabilities(
            name="OpenFlow 1.3",
            state_mechanism="Controller only",
            update_datapath="—",
            processing_mode="Inline",
            event_history=None,  # blank: the switch has none of its own
            # The paper's OpenFlow column carries the 1.5-egress caveat for
            # related-event identification; without history the capability
            # never reaches a runtime monitor anyway.
            related_events=True,
            related_events_note="(1.5 only)",
            field_access="Fixed",
            negative_match=True,
            rule_timeouts=True,
            timeout_actions=False,
            symmetric_match=None,
            wandering_match=None,
            out_of_band=None,
            full_provenance=None,
            drop_visibility=False,
        )
        super().__init__()


class ControllerMirror:
    """Monitor every dataplane event at the controller.

    Each event costs a slow-path traversal (the packet, or a copy of it,
    must reach the controller).  The monitor semantics are the full core
    engine — the controller is a general-purpose computer — but the *cost*
    is what the paper says makes this infeasible at line rate.
    """

    def __init__(
        self,
        props: Sequence[PropertySpec],
        provenance: ProvenanceLevel = ProvenanceLevel.FULL,
    ) -> None:
        self.meter = StateCostMeter()
        self.monitor = Monitor(provenance=provenance, max_layer=7)
        for prop in props:
            self.monitor.add_property(prop)
        self.events_mirrored = 0

    def observe(self, event: DataplaneEvent) -> None:
        self.events_mirrored += 1
        self.meter.charge_slow_update()  # the event's trip off-switch
        self.monitor.observe(event)

    def attach(self, switch) -> None:
        switch.add_tap(self.observe)

    @property
    def violations(self) -> List[Violation]:
        return self.monitor.violations

    @property
    def mirroring_ticks(self) -> int:
        return self.meter.total_ticks
