"""The Varanus compiler: property specifications to switch rules.

The paper describes Varanus as compiling a property query language onto
switches "by using an extended, recursive form of the Open vSwitch learn
action to 'unroll' instances into new tables as events arrive", with
custom extensions for timeout actions.  This module is that compiler for
the dataplane-expressible fragment of the property IR:

* **stage 0** becomes a static rule in the entry table whose recursive
  learn *unrolls a fresh table* (``table_id=-1``) holding the stage-1
  watcher for the new instance, plus a suppression rule in the entry table
  so repeats of the same key do not spawn duplicate instances;
* each **positive stage k ≥ 1** becomes a watcher rule in the instance's
  table: on match it deletes this instance's rules (``DeleteRules`` — a
  Varanus OVS extension) and learns the stage-k+1 watcher into the *same*
  table (``table_id=-2``), or raises the violation ``Notify`` if final;
* **``Observe.within``** becomes the watcher's hard timeout: expiry
  silently retires the instance (Feature 3);
* a final **``Absent`` stage** becomes a pair installed together in the
  instance table (companion learns): a pure timer rule — a match that can
  never fire — whose ``on_timeout`` raises the violation (Feature 7), and
  a discharge rule matching the awaited event that deletes the timer;
* **``unless`` patterns** become higher-priority companion cancel rules
  that delete the instance's rules (Feature 4).

Everything runs on the simulated switch's rule machinery — no monitor
engine involved — so pipeline depth genuinely grows by one table per
unrolled instance and every state change is a slow-path flow-mod: exactly
the Sec. 3.3 cost profile, now produced by real compiled rules.
``tests/integration/test_varanus_compiler.py`` differentially checks the
compiled dataplane monitor against the reference engine on identical
traffic.

The expressible fragment is validated up front; rejections name the gap,
mirroring the paper's own limits: egress/drop matching and packet identity
need the switch's event taps, out-of-band events need Varanus's
controller-assisted extension, arbitrary predicates need general
computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.refs import Const, EventKind, EventPattern, FieldEq, FieldNe, Var
from ..core.spec import Absent, Observe, PropertySpec, Stage
from ..switch.actions import (
    Action,
    Deferred,
    DeleteRules,
    FieldRef,
    Learn,
    Notify,
    TemplateValue,
)
from ..switch.match import MatchSpec
from ..switch.switch import Switch

#: a match predicate that can never hold: positive equality on a field no
#: packet carries — the encoding of a pure timer rule.
NEVER_FIELD = "__varanus.never__"

_PACKET_KINDS = (EventKind.ARRIVAL, EventKind.ANY_PACKET)


class VaranusCompileError(ValueError):
    """The property needs features outside the dataplane-rule fragment."""


# ---------------------------------------------------------------------------
# Fragment validation
# ---------------------------------------------------------------------------
def _check_pattern(pattern: EventPattern, where: str) -> None:
    if pattern.kind not in _PACKET_KINDS:
        raise VaranusCompileError(
            f"{where}: only packet-arrival observations compile to rules "
            "(egress/drop matching needs the switch's event taps; "
            "out-of-band events need the controller-assisted extension)"
        )
    if pattern.same_packet_as is not None:
        raise VaranusCompileError(
            f"{where}: packet identity requires pipeline metadata, not rules"
        )
    for guard in pattern.guards:
        if not isinstance(guard, (FieldEq, FieldNe)):
            raise VaranusCompileError(
                f"{where}: only equality/inequality guards compile to "
                f"match fields (got {type(guard).__name__})"
            )


def check_compilable(prop: PropertySpec) -> None:
    """Raise :class:`VaranusCompileError` unless ``prop`` is expressible."""
    for i, stage in enumerate(prop.stages):
        where = f"property {prop.name!r} stage {stage.name!r}"
        _check_pattern(stage.pattern, where)
        if i == 0:
            for guard in stage.pattern.guards:
                if isinstance(guard.value, Var):
                    raise VaranusCompileError(
                        f"{where}: stage 0 guards must be constants"
                    )
        if isinstance(stage, Absent) and i != prop.num_stages - 1:
            raise VaranusCompileError(
                f"{where}: negative observations compile only as the final "
                "stage (an intermediate Absent needs engine timers)"
            )
        for unless in getattr(stage, "unless", ()):
            _check_pattern(unless, f"{where} (unless)")


# ---------------------------------------------------------------------------
# Value flow: which field of the firing packet carries each variable
# ---------------------------------------------------------------------------
def _field_for_var(prop: PropertySpec, var: str, firing_index: int) -> str:
    """The field of the stage-``firing_index`` packet carrying ``var``.

    Varanus's restriction: bound values must *flow through the packets* —
    a variable used at stage k must be readable from the packet that fired
    stage k-1, either because that stage bound it or because an equality
    guard pinned it there.  (The paper: "A, B pairs fully describe
    instances at any stage.")
    """
    stage = prop.stages[firing_index]
    for bind in stage.pattern.binds:
        if bind.var == var:
            return bind.field
    for guard in stage.pattern.guards:
        if (
            isinstance(guard, FieldEq)
            and isinstance(guard.value, Var)
            and guard.value.name == var
        ):
            return guard.field
    raise VaranusCompileError(
        f"property {prop.name!r}: ${var} is not readable from the stage-"
        f"{firing_index} packet (bind it there or pin it with an equality "
        "guard) — value flow through packets is a Varanus requirement"
    )


def _wrap(value: TemplateValue, depth: int) -> TemplateValue:
    for _ in range(depth):
        value = Deferred(value)
    return value


def _pattern_template(
    prop: PropertySpec, pattern: EventPattern, firing_index: int, depth: int
) -> Tuple[Tuple[Tuple[str, TemplateValue], ...], Tuple[str, ...]]:
    """Translate a stage pattern into a learn match template.

    ``firing_index`` is the stage whose packet resolves the FieldRefs;
    ``depth`` is how many learn levels separate template construction from
    that resolution (each level needs one ``Deferred`` wrapper).
    """
    match: List[Tuple[str, TemplateValue]] = []
    negate: List[str] = []
    for guard in pattern.guards:
        if isinstance(guard.value, Const):
            value: TemplateValue = guard.value.value
        else:
            origin = _field_for_var(prop, guard.value.name, firing_index)
            value = _wrap(FieldRef(origin), depth)
        match.append((guard.field, value))
        if isinstance(guard, FieldNe):
            negate.append(guard.field)
    return tuple(match), tuple(negate)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------
def build_entry(
    prop: PropertySpec,
    entry_table: int = 0,
    priority: int = 500,
) -> Tuple[MatchSpec, Tuple[Learn, Learn], str]:
    """Construct the full rule plan for ``prop`` without a switch.

    Returns ``(entry_match, (unroll, suppression), message)``: the static
    entry-table rule's match, its two learn actions — ``unroll`` carries
    the whole nested watcher chain, ``suppression`` the per-key duplicate
    shadow — and the alert message.  :func:`compile_property` installs
    this plan; :func:`plan_property` prices it.
    """
    check_compilable(prop)
    cookie = f"varanus:{prop.name}"
    message = prop.name

    # Build the watcher chain back-to-front.  At stage index k the watcher
    # template is constructed now but resolved when stage k-1 fires; the
    # chain nests one learn level per stage, so templates for stage k need
    # (k - 1) Deferred wrappers.
    key_origins = tuple(
        origin for var, origin in prop.var_origin().items()
        if var in prop.key_vars
    )
    deeper: Optional[Learn] = None
    for index in range(prop.num_stages - 1, 0, -1):
        deeper = _watcher_learn(prop, index, deeper, cookie, message,
                                entry_table, key_origins)

    assert deeper is not None  # specs have >= 2 stages in this fragment
    stage0 = prop.stages[0]
    entry_match = MatchSpec()
    for guard in stage0.pattern.guards:
        value = guard.value.value  # constants only (validated)
        if isinstance(guard, FieldNe):
            entry_match = entry_match.neq(guard.field, value)
        else:
            entry_match = entry_match.eq(guard.field, value)

    # The suppression rule prevents a live instance's key from spawning
    # duplicates.  It is *per key* (keyed cookie) so that retiring one
    # instance — violation, discharge, or cancel — re-opens exactly that
    # key; a hard timeout ties it to the stage-1 window where one exists.
    suppression = Learn(
        table_id=entry_table,
        match=tuple((origin, FieldRef(origin)) for origin in key_origins),
        actions=(),
        priority=priority + 10,
        hard_timeout=_suppression_timeout(prop),
        cookie=f"{cookie}:suppress",
        cookie_fields=key_origins,
    )
    return entry_match, (deeper, suppression), message


def compile_property(
    switch: Switch,
    prop: PropertySpec,
    entry_table: int = 0,
    priority: int = 500,
) -> str:
    """Compile ``prop`` onto ``switch``; returns the alert message.

    Violations surface as dataplane alerts (``switch.add_alert_sink``)
    whose message is the property name; the final triggering packet's
    guard fields ride along as carried values (Feature 10's free limited
    provenance).
    """
    entry_match, (unroll, suppression), message = build_entry(
        prop, entry_table, priority)
    switch.install_rule(
        entry_match,
        [unroll, suppression],
        table_id=entry_table,
        priority=priority,
        cookie=f"varanus:{prop.name}:entry",
    )
    return message


# ---------------------------------------------------------------------------
# Static rule-plan accounting (ground truth for the linter's cost model)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RulePlan:
    """What one instance of a compiled property costs, counted off the
    emitted rule plan rather than modeled.

    The accounting walks the violation path — stage 0 fires, every watcher
    fires in order, the final stage raises the alert (for a final
    ``Absent``, the timer expires) — because that is the lifecycle the
    whole plan exists to execute:

    * ``instance_tables`` — fresh tables this instance unrolls into the
      pipeline (learns targeting ``table_id == -1``);
    * ``rules_per_instance`` — rules installed over the lifecycle: the
      suppression rule plus every watcher/timer/discharge/cancel learn,
      companions (``extra``) included;
    * ``flow_mods_per_instance`` — slow-path state operations issued over
      the lifecycle, counted the way the switch meters them: one per
      top-level ``Learn`` or ``DeleteRules`` action (companion learns ride
      inside their parent's update), timer ``on_timeout`` actions included.
    """

    prop: str
    instance_tables: int
    rules_per_instance: int
    flow_mods_per_instance: int


def _installed_rules(learn: Learn) -> int:
    """Rules one Learn execution lands: the rule itself plus companions."""
    return 1 + sum(_installed_rules(extra) for extra in learn.extra)


def _unrolled_tables(learn: Learn) -> int:
    """Fresh tables one Learn execution creates (companions share them)."""
    return 1 if learn.table_id == -1 else 0


def plan_property(prop: PropertySpec) -> RulePlan:
    """Price ``prop`` by walking the rule plan ``compile_property`` emits.

    Raises :class:`VaranusCompileError` when the property is outside the
    rule-compilable fragment, exactly like compilation would.
    """
    _, (unroll, suppression), _ = build_entry(prop)
    tables = 0
    rules = _installed_rules(suppression)
    flow_mods = 2  # stage 0's firing issues the unroll + suppression learns
    watcher: Optional[Learn] = unroll
    while watcher is not None:
        tables += _unrolled_tables(watcher)
        rules += _installed_rules(watcher)
        # Fire the watcher along the violation path: a timer rule (pure
        # timeout encoding) fires via on_timeout, everything else via its
        # match actions.
        fired = watcher.on_timeout if watcher.on_timeout else watcher.actions
        deeper: Optional[Learn] = None
        for action in fired:
            if isinstance(action, Learn):
                flow_mods += 1
                deeper = action  # the next stage's watcher learn
            elif isinstance(action, DeleteRules):
                flow_mods += 1
        watcher = deeper
    return RulePlan(
        prop=prop.name,
        instance_tables=tables,
        rules_per_instance=rules,
        flow_mods_per_instance=flow_mods,
    )


def _suppression_timeout(prop: PropertySpec) -> Optional[float]:
    """Suppression must not outlive the instance it shadows."""
    stage1 = prop.stages[1]
    if isinstance(stage1, Absent):
        return stage1.within
    if isinstance(stage1, Observe) and stage1.within is not None:
        return stage1.within
    return None


def _watcher_learn(
    prop: PropertySpec,
    index: int,
    deeper: Optional[Learn],
    cookie: str,
    message: str,
    entry_table: int,
    key_origins: Tuple[str, ...],
) -> Learn:
    """The learn installing stage ``index``'s watcher.

    Fired by stage ``index - 1``'s packet; installs into a fresh table for
    the first watcher (unrolling the instance) or the instance's own table
    afterwards.  Template values resolve against the firing packet, so
    their Deferred depth is ``index - 1`` (one unwrap per enclosing learn).
    """
    stage = prop.stages[index]
    target = -1 if index == 1 else -2
    depth = index - 1
    final = index == prop.num_stages - 1
    firing_index = index - 1

    unsuppress = DeleteRules(
        f"{cookie}:suppress", table_id=entry_table, cookie_fields=key_origins
    )
    extras: List[Learn] = [
        _cancel_learn(prop, unless, firing_index, depth, cookie, target,
                      unsuppress)
        for unless in getattr(stage, "unless", ())
    ]

    if isinstance(stage, Absent):
        # Timer + discharge pair, installed together in the instance table.
        carried = _carry_template(prop, firing_index, depth)
        timer = Learn(
            table_id=target,
            match=((NEVER_FIELD, 1),),
            actions=(),
            priority=10,
            hard_timeout=stage.within,
            on_timeout=(Notify(message, carry=tuple(carried)), unsuppress),
            cookie=f"{cookie}:timer",
        )
        match, negate = _pattern_template(prop, stage.pattern, firing_index,
                                          depth)
        discharge = Learn(
            table_id=target,
            match=match,
            negate=negate,
            actions=(DeleteRules(f"{cookie}:timer", table_id=-2), unsuppress),
            priority=400,
            cookie=f"{cookie}:discharge",
        )
        return Learn(
            table_id=timer.table_id,
            match=timer.match,
            actions=timer.actions,
            priority=timer.priority,
            hard_timeout=timer.hard_timeout,
            on_timeout=timer.on_timeout,
            cookie=timer.cookie,
            extra=tuple([discharge] + extras),
        )

    match, negate = _pattern_template(prop, stage.pattern, firing_index, depth)
    cleanup = (
        DeleteRules(cookie, table_id=-2),
        DeleteRules(f"{cookie}:timer", table_id=-2),
        DeleteRules(f"{cookie}:discharge", table_id=-2),
        DeleteRules(f"{cookie}:cancel", table_id=-2),
    )
    if final:
        cleanup = cleanup + (unsuppress,)
    if final:
        actions: Tuple[Action, ...] = (
            Notify(message, carry=_final_carry(prop, index)),
        ) + cleanup
    else:
        assert deeper is not None
        actions = cleanup + (deeper,)
    return Learn(
        table_id=target,
        match=match,
        negate=negate,
        actions=actions,
        priority=300,
        hard_timeout=stage.within,
        cookie=cookie,
        extra=tuple(extras),
    )


def _cancel_learn(
    prop: PropertySpec,
    pattern: EventPattern,
    firing_index: int,
    depth: int,
    cookie: str,
    target: int,
    unsuppress: DeleteRules,
) -> Learn:
    match, negate = _pattern_template(prop, pattern, firing_index, depth)
    return Learn(
        table_id=target,
        match=match,
        negate=negate,
        actions=(
            DeleteRules(cookie, table_id=-2),
            DeleteRules(f"{cookie}:timer", table_id=-2),
            DeleteRules(f"{cookie}:discharge", table_id=-2),
            DeleteRules(f"{cookie}:cancel", table_id=-2),
            unsuppress,
        ),
        priority=450,
        cookie=f"{cookie}:cancel",
    )


def _carry_template(
    prop: PropertySpec, firing_index: int, depth: int
) -> List[str]:
    """Fields of the firing packet worth baking into a timer Notify."""
    fields: List[str] = []
    stage = prop.stages[firing_index]
    for bind in stage.pattern.binds:
        fields.append(bind.field)
    return fields


def _final_carry(prop: PropertySpec, final_index: int) -> Tuple[str, ...]:
    """Carry the final stage's guard fields from the triggering packet."""
    pattern = prop.stages[final_index].pattern
    return tuple(
        guard.field for guard in pattern.guards
        if isinstance(guard, (FieldEq, FieldNe))
    )
