"""OpenState — Mealy-machine per-flow state on the switch (Table 2).

OpenState extends OpenFlow tables with an eXtended Finite State Machine
(XFSM) abstraction: packets are mapped to a state via a *lookup scope* (a
fixed tuple of header fields), matched against (state, event) transition
rules, and may write a new state via an *update scope*.  This supports MAC
learning, connection tracking, and port knocking on-switch — but the state
machine is keyed by fixed fields, so wandering match, out-of-band events,
and timeout actions are out of architectural reach.

:class:`XfsmTable` is a faithful executable model of the primitive (used
directly by the unit tests and the port-knocking example);
:class:`OpenStateBackend` is the capability column for Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.refs import event_fields
from ..switch.events import DataplaneEvent
from ..switch.registers import StateCostMeter
from .base import Backend, Capabilities

DEFAULT_STATE = 0


@dataclass(frozen=True)
class XfsmTransition:
    """One (state, event-predicate) -> (next-state, actions) rule."""

    state: int
    predicate: Callable[[Mapping[str, object]], bool]
    next_state: int
    label: str = ""
    action: Optional[Callable[[Mapping[str, object]], None]] = None


class XfsmTable:
    """An OpenState-style state table.

    ``lookup_scope`` and ``update_scope`` are tuples of dotted field names;
    OpenState's "cross-flow" trick (e.g. port knocking keyed by source
    while updating by source) uses differing scopes.  State lookups are
    fast-path; the cost meter records them as such.
    """

    def __init__(
        self,
        lookup_scope: Tuple[str, ...],
        update_scope: Optional[Tuple[str, ...]] = None,
        meter: Optional[StateCostMeter] = None,
    ) -> None:
        if not lookup_scope:
            raise ValueError("lookup scope cannot be empty")
        self.lookup_scope = lookup_scope
        self.update_scope = update_scope if update_scope is not None else lookup_scope
        self.transitions: List[XfsmTransition] = []
        self.state: Dict[Tuple, int] = {}
        self.meter = meter if meter is not None else StateCostMeter()

    def add_transition(self, transition: XfsmTransition) -> None:
        self.transitions.append(transition)

    def _key(self, fields: Mapping[str, object], scope: Tuple[str, ...]) -> Optional[Tuple]:
        try:
            return tuple(fields[name] for name in scope)
        except KeyError:
            return None

    def state_of(self, fields: Mapping[str, object]) -> int:
        key = self._key(fields, self.lookup_scope)
        if key is None:
            return DEFAULT_STATE
        return self.state.get(key, DEFAULT_STATE)

    def process(self, event: DataplaneEvent, max_layer: int = 4) -> Optional[int]:
        """Run one event through the XFSM; returns the new state or None
        if no transition matched."""
        fields = event_fields(event, max_layer=max_layer)
        self.meter.charge_lookup()
        current = self.state_of(fields)
        for transition in self.transitions:
            if transition.state != current:
                continue
            if not transition.predicate(fields):
                continue
            update_key = self._key(fields, self.update_scope)
            if update_key is not None:
                self.state[update_key] = transition.next_state
                self.meter.charge_fast_update()
            if transition.action is not None:
                transition.action(fields)
            return transition.next_state
        return None

    def population(self) -> int:
        """Flows holding non-default state."""
        return sum(1 for s in self.state.values() if s != DEFAULT_STATE)


class OpenStateBackend(Backend):
    """Capability column for OpenState."""

    def __init__(self) -> None:
        self.caps = Capabilities(
            name="OpenState",
            state_mechanism="State machine",
            update_datapath="Fast path",
            processing_mode="Inline",
            event_history=True,
            related_events=None,  # blank in the paper
            field_access="Fixed",
            negative_match=True,
            rule_timeouts=True,
            timeout_actions=False,
            symmetric_match=True,
            wandering_match=False,
            out_of_band=False,
            full_provenance=False,
            drop_visibility=False,
        )
        super().__init__()
