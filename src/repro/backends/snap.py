"""SNAP — stateful network-wide abstractions over global arrays (Table 2).

SNAP programs read and write persistent *global arrays* indexed by header
fields, with stateful tests, compiled down to register-machine targets
(P4/POF among them) under a "one big switch" abstraction.  It inherits
those targets' strengths (fast-path updates, dynamic fields, symmetric
match) and their monitoring gaps (no timeout actions, no out-of-band
events, no provenance) — and the paper notes its compiler hides individual
switch behaviour, which a monitor may specifically care about.

:class:`SnapProgram` is an executable model of the abstraction: named
global arrays plus ``on(guard) do read/write/test`` statements over the
event stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..core.refs import event_fields
from ..switch.events import DataplaneEvent
from ..switch.registers import GlobalArrays, StateCostMeter
from .base import Backend, Capabilities


@dataclass
class SnapStatement:
    """One guarded array operation.

    ``test`` (if given) reads ``array[key]`` and, when the test returns
    True, fires ``on_match``; ``write`` (if given) computes the new cell
    value from the old one.  This mirrors SNAP's read/test/write atoms.
    """

    guard: Callable[[Mapping[str, object]], bool]
    array: str
    key_fields: Tuple[str, ...]
    write: Optional[Callable[[object, Mapping[str, object]], object]] = None
    test: Optional[Callable[[object], bool]] = None
    on_match: Optional[Callable[[Mapping[str, object]], None]] = None
    label: str = ""


class SnapProgram:
    """Global-array stateful program over the dataplane event stream."""

    def __init__(self, meter: Optional[StateCostMeter] = None) -> None:
        self.meter = meter if meter is not None else StateCostMeter()
        self.arrays = GlobalArrays(meter=self.meter)
        self.statements: List[SnapStatement] = []
        self.matches = 0

    def add(self, statement: SnapStatement) -> None:
        self.statements.append(statement)

    def _key(
        self, statement: SnapStatement, fields: Mapping[str, object]
    ) -> Optional[Tuple]:
        try:
            return tuple(fields[name] for name in statement.key_fields)
        except KeyError:
            return None

    def process(self, event: DataplaneEvent) -> int:
        """Run one event through every statement; returns writes done."""
        fields = event_fields(event, max_layer=7)
        writes = 0
        for statement in self.statements:
            self.meter.charge_lookup()
            if not statement.guard(fields):
                continue
            key = self._key(statement, fields)
            if key is None:
                continue
            current = self.arrays.read(statement.array, key)
            if statement.test is not None and statement.test(current):
                self.matches += 1
                if statement.on_match is not None:
                    statement.on_match(fields)
            if statement.write is not None:
                self.arrays.write(
                    statement.array, key, statement.write(current, fields)
                )
                writes += 1
        return writes


class SnapBackend(Backend):
    """Capability column for SNAP."""

    def __init__(self) -> None:
        self.caps = Capabilities(
            name="SNAP",
            state_mechanism="Global arrays",
            update_datapath="Fast path",
            processing_mode="",  # blank: target-dependent
            event_history=True,
            related_events=True,
            field_access="Dynamic",
            negative_match=True,
            rule_timeouts=False,
            timeout_actions=False,
            symmetric_match=True,
            wandering_match=None,  # blank: target-dependent
            out_of_band=False,
            full_provenance=False,
            drop_visibility=False,
        )
        super().__init__()
