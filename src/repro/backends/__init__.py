"""Executable models of the approaches compared in Table 2."""

from .base import (
    FAST_PATH_SPLIT_LAG,
    Backend,
    BackendMonitor,
    Capabilities,
    UnsupportedFeature,
    default_split_lag,
    split_lag_profile,
)
from .conformance import (
    PAPER_TABLE2,
    PROBES,
    TABLE2_ROWS,
    all_backends,
    build_table2,
    diff_against_paper,
    render_table2,
    run_probe,
)
from .fast import FastBackend, FastStateMachine, FastTransition
from .openflow13 import ControllerMirror, OpenFlow13Backend
from .openstate import DEFAULT_STATE, OpenStateBackend, XfsmTable, XfsmTransition
from .p4 import P4Backend, P4Program, P4Stage, fnv1a
from .sketches import CountMinSketch, HeavyHitter, HeavyHitterDetector
from .snap import SnapBackend, SnapProgram, SnapStatement
from .varanus import (
    StaticVaranusBackend,
    VaranusBackend,
    compile_firewall_to_rules,
)
from .varanus_compiler import (
    VaranusCompileError,
    check_compilable,
    compile_property,
)

__all__ = [
    "FAST_PATH_SPLIT_LAG",
    "Backend",
    "BackendMonitor",
    "Capabilities",
    "UnsupportedFeature",
    "default_split_lag",
    "split_lag_profile",
    "PAPER_TABLE2",
    "PROBES",
    "TABLE2_ROWS",
    "all_backends",
    "build_table2",
    "diff_against_paper",
    "render_table2",
    "run_probe",
    "FastBackend",
    "FastStateMachine",
    "FastTransition",
    "ControllerMirror",
    "OpenFlow13Backend",
    "DEFAULT_STATE",
    "OpenStateBackend",
    "XfsmTable",
    "XfsmTransition",
    "P4Backend",
    "P4Program",
    "P4Stage",
    "fnv1a",
    "CountMinSketch",
    "HeavyHitter",
    "HeavyHitterDetector",
    "SnapBackend",
    "SnapProgram",
    "SnapStatement",
    "StaticVaranusBackend",
    "VaranusBackend",
    "compile_firewall_to_rules",
    "VaranusCompileError",
    "check_compilable",
    "compile_property",
]
