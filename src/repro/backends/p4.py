"""POF / P4 — protocol-independent pipelines with register state (Table 2).

P4 (and POF, which the paper groups with it) programs define the parser
*and* the match-action pipeline: dynamic field access to any depth, and
per-flow persistent state in register arrays updated on the **fast path**.
P4's egress pipeline can match on switch metadata (output port) — the
paper singles it out as "unique in considering this requirement" — so this
backend has drop/egress visibility.  What the architecture still lacks for
monitoring: timeout actions, out-of-band events, and full provenance;
wandering-match support is target-dependent (blank).

:class:`P4Program` is a small executable model of the primitive: a
programmable parser depth, register arrays indexed by a header-field hash,
and stateful match-action stages — used by the register-update benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.refs import event_fields
from ..switch.events import DataplaneEvent
from ..switch.registers import RegisterArray, StateCostMeter
from .base import Backend, Capabilities


def fnv1a(values: Tuple) -> int:
    """The hash P4 programs typically use for register indexing."""
    h = 0xCBF29CE484222325
    for value in values:
        v = int(value) if not isinstance(value, str) else hash(value)
        for shift in (0, 8, 16, 24, 32, 40):
            h ^= (v >> shift) & 0xFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


@dataclass
class P4Stage:
    """One match-action stage: a guard plus a register update."""

    guard: Callable[[Mapping[str, object]], bool]
    array: str
    key_fields: Tuple[str, ...]
    update: Callable[[int, Mapping[str, object]], int]  # old value -> new
    label: str = ""


class P4Program:
    """A register-based stateful program over the dataplane event stream."""

    def __init__(
        self,
        parse_depth: int = 7,
        register_size: int = 4096,
        meter: Optional[StateCostMeter] = None,
    ) -> None:
        self.parse_depth = parse_depth
        self.register_size = register_size
        self.meter = meter if meter is not None else StateCostMeter()
        self.stages: List[P4Stage] = []
        self._arrays: Dict[str, RegisterArray] = {}

    def array(self, name: str) -> RegisterArray:
        if name not in self._arrays:
            self._arrays[name] = RegisterArray(
                name, self.register_size, meter=self.meter
            )
        return self._arrays[name]

    def add_stage(self, stage: P4Stage) -> None:
        self.stages.append(stage)

    def index_for(self, stage: P4Stage, fields: Mapping[str, object]) -> Optional[int]:
        try:
            key = tuple(fields[name] for name in stage.key_fields)
        except KeyError:
            return None
        return fnv1a(key) % self.register_size

    def process(self, event: DataplaneEvent) -> int:
        """Run one event through all stages; returns updates performed."""
        fields = event_fields(event, max_layer=self.parse_depth)
        updates = 0
        for stage in self.stages:
            self.meter.charge_lookup()
            if not stage.guard(fields):
                continue
            index = self.index_for(stage, fields)
            if index is None:
                continue
            array = self.array(stage.array)
            old = array.read(index)
            array.write(index, stage.update(old, fields))  # fast path
            updates += 1
        return updates


class P4Backend(Backend):
    """Capability column for POF and P4."""

    def __init__(self) -> None:
        self.caps = Capabilities(
            name="POF and P4",
            state_mechanism="Flow registers",
            update_datapath="Fast path",
            processing_mode="",  # blank: target-dependent
            event_history=True,
            related_events=True,
            field_access="Dynamic",
            negative_match=True,
            rule_timeouts=True,
            timeout_actions=False,
            symmetric_match=True,
            wandering_match=None,  # blank: hash support is target-dependent
            out_of_band=False,
            full_provenance=False,
            drop_visibility=True,  # egress-pipeline metadata matching
        )
        super().__init__()
