"""Conformance harness — regenerates Table 2 by probing each backend.

For every semantic-challenge row of Table 2 there is a minimal *probe
property* exercising exactly that feature (on top of a plain two-stage
history baseline).  The harness asks each backend to compile the probe:

* compiles — and, where the probe carries a witness trace, detects the
  violation when the trace is replayed — the cell is ``Y`` (✓);
* rejected with ``precluded=True`` — the cell is ``X`` (✗);
* rejected as target-dependent / out of design — the cell is blank.

The first three rows (state mechanism, update datapath, processing mode)
are architectural metadata, read from the capability descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.refs import Bind, Const, EventKind, EventPattern, FieldEq, FieldNe, Var
from ..core.spec import Absent, Observe, PropertySpec
from ..packet.builder import arp_request, dhcp_packet, ethernet
from ..packet.dhcp import DhcpMessageType
from ..switch.events import (
    DataplaneEvent,
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketEgress,
)
from .base import Backend, UnsupportedFeature
from .fast import FastBackend
from .openflow13 import OpenFlow13Backend
from .openstate import OpenStateBackend
from .p4 import P4Backend
from .snap import SnapBackend
from .varanus import StaticVaranusBackend, VaranusBackend


def all_backends() -> Tuple[Backend, ...]:
    """The seven Table 2 columns, in the paper's order."""
    return (
        OpenFlow13Backend(),
        OpenStateBackend(),
        FastBackend(),
        P4Backend(),
        SnapBackend(),
        VaranusBackend(),
        StaticVaranusBackend(),
    )


# ---------------------------------------------------------------------------
# Probe properties: each exercises exactly one semantic challenge.
# ---------------------------------------------------------------------------
def history_probe() -> PropertySpec:
    """Two positive observations on L2 fields: pure event history."""
    return PropertySpec(
        name="probe-history",
        description="a frame from S, then a frame to S",
        stages=(
            Observe(
                "seen",
                EventPattern(kind=EventKind.ARRIVAL, binds=(Bind("S", "eth.src"),)),
            ),
            Observe(
                "answered",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.src", Var("S")),),
                ),
            ),
        ),
        key_vars=("S",),
    )


def identity_probe() -> PropertySpec:
    """Arrival linked to its own egress: packet identity (F5)."""
    return PropertySpec(
        name="probe-identity",
        description="an arrival and the same packet's egress",
        stages=(
            Observe(
                "in",
                EventPattern(kind=EventKind.ARRIVAL, binds=(Bind("S", "eth.src"),)),
            ),
            Observe(
                "out",
                EventPattern(kind=EventKind.EGRESS, same_packet_as="in"),
            ),
        ),
        key_vars=("S",),
    )


def fields_probe() -> PropertySpec:
    """Guards on L7 (DHCP) fields: dynamic parsing (F1)."""
    return PropertySpec(
        name="probe-fields",
        description="two DHCP ACKs for the same address",
        stages=(
            Observe(
                "ack",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("ip", "dhcp.yiaddr"),),
                ),
            ),
            Observe(
                "ack2",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("dhcp.yiaddr", Var("ip")),),
                ),
            ),
        ),
        key_vars=("ip",),
    )


def negative_probe() -> PropertySpec:
    """A FieldNe guard: negative match (F6)."""
    return PropertySpec(
        name="probe-negative",
        description="a frame from S, then a frame from S to someone else",
        stages=(
            Observe(
                "seen",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("S", "eth.src"), Bind("D", "eth.dst")),
                ),
            ),
            Observe(
                "elsewhere",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(
                        FieldEq("eth.src", Var("S")),
                        FieldNe("eth.dst", Var("D")),
                    ),
                ),
            ),
        ),
        key_vars=("S",),
    )


def timeout_probe() -> PropertySpec:
    """An expiring stage: ordinary rule timeouts (F3)."""
    return PropertySpec(
        name="probe-timeout",
        description="within 1s of a frame from S, a frame to S",
        stages=(
            Observe(
                "seen",
                EventPattern(kind=EventKind.ARRIVAL, binds=(Bind("S", "eth.src"),)),
            ),
            Observe(
                "reply",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.dst", Var("S")),),
                ),
                within=1.0,
            ),
        ),
        key_vars=("S",),
    )


def timeout_action_probe() -> PropertySpec:
    """An Absent stage: timeout actions (F7)."""
    return PropertySpec(
        name="probe-timeout-action",
        description="1s elapses with no frame back to S",
        stages=(
            Observe(
                "seen",
                EventPattern(kind=EventKind.ARRIVAL, binds=(Bind("S", "eth.src"),)),
            ),
            Absent(
                "no_reply",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.dst", Var("S")),),
                ),
                within=1.0,
            ),
        ),
        key_vars=("S",),
    )


def symmetric_probe() -> PropertySpec:
    """Directional pair inversion: symmetric match (F8)."""
    return PropertySpec(
        name="probe-symmetric",
        description="a frame S->D, then the inverted frame D->S",
        stages=(
            Observe(
                "forward",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("S", "eth.src"), Bind("D", "eth.dst")),
                ),
            ),
            Observe(
                "reverse",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(
                        FieldEq("eth.src", Var("D")),
                        FieldEq("eth.dst", Var("S")),
                    ),
                ),
            ),
        ),
        key_vars=("S", "D"),
    )


def wandering_probe() -> PropertySpec:
    """A value bound from an IPv4 field guarded on an ARP field: the
    cross-protocol instance mapping of wandering match (F8).  Deliberately
    stays within fixed-function parse depth (L3) — wandering is about
    instance *mapping* across protocols, not parser reach, and Varanus
    supports it despite fixed field access."""
    return PropertySpec(
        name="probe-wandering",
        description="an IPv4 packet from ip, then an ARP naming ip",
        stages=(
            Observe(
                "ip_seen",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("ip", "ipv4.src"),),
                ),
            ),
            Observe(
                "arp_names_it",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("arp.sender_ip", Var("ip")),),
                ),
            ),
        ),
        key_vars=("ip",),
    )


def oob_probe() -> PropertySpec:
    """An out-of-band stage advancing every instance: multiple match."""
    return PropertySpec(
        name="probe-oob",
        description="a frame from S, a port-down, then a frame to S",
        stages=(
            Observe(
                "seen",
                EventPattern(kind=EventKind.ARRIVAL, binds=(Bind("S", "eth.src"),)),
            ),
            Observe(
                "port_down",
                EventPattern(kind=EventKind.OOB, oob_kind=OobKind.PORT_DOWN),
            ),
            Observe(
                "stale",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("eth.dst", Var("S")),),
                ),
            ),
        ),
        key_vars=("S",),
    )


# ---------------------------------------------------------------------------
# Witness traces: replayed into compiled probes to confirm detection.
# ---------------------------------------------------------------------------
def _arr(packet, t: float, port: int = 1) -> PacketArrival:
    return PacketArrival(switch_id="probe", time=t, packet=packet, in_port=port)


def _egr(packet, t: float, port: int = 2) -> PacketEgress:
    return PacketEgress(
        switch_id="probe", time=t, packet=packet, out_port=port, in_port=1,
        action=EgressAction.UNICAST,
    )


def history_trace() -> List[DataplaneEvent]:
    return [_arr(ethernet(1, 2), 0.0), _arr(ethernet(1, 3), 0.1)]


def identity_trace() -> List[DataplaneEvent]:
    p = ethernet(1, 2)
    return [_arr(p, 0.0), _egr(p, 0.001)]


def fields_trace() -> List[DataplaneEvent]:
    a1 = dhcp_packet(5, DhcpMessageType.ACK, yiaddr="10.0.0.9", xid=1)
    a2 = dhcp_packet(6, DhcpMessageType.ACK, yiaddr="10.0.0.9", xid=2)
    return [_arr(a1, 0.0), _arr(a2, 0.1)]


def negative_trace() -> List[DataplaneEvent]:
    return [_arr(ethernet(1, 2), 0.0), _arr(ethernet(1, 3), 0.1)]


def timeout_trace_hit() -> List[DataplaneEvent]:
    return [_arr(ethernet(1, 2), 0.0), _arr(ethernet(3, 1), 0.5)]


def timeout_action_trace() -> List[DataplaneEvent]:
    # Only the trigger; the violation must come from the timer at t=1.0.
    return [_arr(ethernet(1, 2), 0.0)]


def symmetric_trace() -> List[DataplaneEvent]:
    return [_arr(ethernet(1, 2), 0.0), _arr(ethernet(2, 1), 0.1)]


def wandering_trace() -> List[DataplaneEvent]:
    from ..packet.builder import tcp_packet

    ip_pkt = tcp_packet(5, 6, "10.0.0.9", "10.0.0.10", 1000, 80)
    arp = arp_request(9, "10.0.0.9", "10.0.0.3")
    return [_arr(ip_pkt, 0.0), _arr(arp, 0.1)]


def oob_trace() -> List[DataplaneEvent]:
    return [
        _arr(ethernet(1, 2), 0.0),
        OutOfBandEvent(switch_id="probe", time=0.1,
                       oob_kind=OobKind.PORT_DOWN, port=3),
        _arr(ethernet(3, 1), 0.2),
    ]


@dataclass(frozen=True)
class Probe:
    """One Table 2 semantic-challenge row.

    ``feature_name`` is the exact string the backend's compile check uses
    when rejecting for *this* feature; a rejection citing some other
    feature (e.g. OpenFlow 1.3 failing the negative-match probe on event
    history, which the probe incidentally needs) falls back to the
    backend's declared capability (``cap_attr``) — each Table 2 row rates
    a feature in isolation.
    """

    row: str
    prop_factory: Callable[[], PropertySpec]
    feature_name: str
    cap_attr: str
    trace_factory: Optional[Callable[[], List[DataplaneEvent]]] = None
    settle: float = 0.0  # advance monitor time after the trace (for timers)


PROBES: Tuple[Probe, ...] = (
    Probe("Event History", history_probe, "event history", "event_history",
          history_trace),
    Probe("Identification of related events", identity_probe,
          "identification of related events", "related_events",
          identity_trace),
    Probe("Negative match", negative_probe, "negative match",
          "negative_match", negative_trace),
    Probe("Rule timeouts", timeout_probe, "rule timeouts", "rule_timeouts",
          timeout_trace_hit),
    Probe("Timeout actions", timeout_action_probe, "timeout actions",
          "timeout_actions", timeout_action_trace, settle=2.0),
    Probe("Symmetric match", symmetric_probe, "symmetric match",
          "symmetric_match", symmetric_trace),
    Probe("Wandering match", wandering_probe, "wandering match",
          "wandering_match", wandering_trace),
    Probe("Out-of-band events", oob_probe,
          "out-of-band events / multiple match", "out_of_band", oob_trace),
)


def run_probe(backend: Backend, probe: Probe) -> str:
    """Returns the Table 2 cell for one backend x probe."""
    prop = probe.prop_factory()
    try:
        monitor = backend.compile(prop)
    except UnsupportedFeature as exc:
        if exc.feature == probe.feature_name:
            return "X" if exc.precluded else ""
        # Rejected for an unrelated reason the probe incidentally needs:
        # rate the feature itself from the declared capability.
        return backend.caps.cell(getattr(backend.caps, probe.cap_attr))
    if probe.trace_factory is None:
        return "Y"
    last_time = 0.0
    for event in probe.trace_factory():
        monitor.observe(event)
        last_time = event.time
    # Settle past any timers the probe armed, plus the split-mode lag (a
    # split backend applies its final state transition after the event).
    monitor.advance_to(max(probe.settle, last_time + 1.0))
    if not monitor.violations:
        raise AssertionError(
            f"{backend.caps.name} compiled {prop.name} but missed the "
            "witness trace — capability model and engine disagree"
        )
    return "Y"


TABLE2_ROWS = (
    "State mechanism",
    "Update datapath",
    "Processing Mode",
    "Event History",
    "Identification of related events",
    "Field access",
    "Negative match",
    "Rule timeouts",
    "Timeout actions",
    "Symmetric match",
    "Wandering match",
    "Out-of-band events",
    "Full provenance",
)


def build_table2(
    backends: Optional[Sequence[Backend]] = None,
) -> Dict[str, Dict[str, str]]:
    """Compute the full Table 2: {row -> {backend name -> cell}}."""
    backends = tuple(backends) if backends is not None else all_backends()
    table: Dict[str, Dict[str, str]] = {row: {} for row in TABLE2_ROWS}
    for backend in backends:
        caps = backend.caps
        name = caps.name
        table["State mechanism"][name] = caps.state_mechanism
        table["Update datapath"][name] = caps.update_datapath
        table["Processing Mode"][name] = caps.processing_mode
        table["Field access"][name] = caps.field_access
        prov = backend.supports_full_provenance()
        table["Full provenance"][name] = caps.cell(prov)
        for probe in PROBES:
            table[probe.row][name] = run_probe(backend, probe)
        # The probes for features the backend's own caps say are supported
        # only via a version note get the note appended (OpenFlow 1.5).
        if caps.related_events_note and caps.related_events:
            cell = table["Identification of related events"][name]
            table["Identification of related events"][name] = (
                f"{cell} {caps.related_events_note}".strip()
            )
    return table


def render_table2(table: Optional[Dict[str, Dict[str, str]]] = None) -> str:
    """Pretty-print the computed Table 2."""
    if table is None:
        table = build_table2()
    backends = list(next(iter(table.values())).keys())
    row_width = max(len(r) for r in table) + 2
    col_width = max(max(len(b) for b in backends),
                    max(len(c) for row in table.values() for c in row.values())) + 2
    lines = [" " * row_width + "".join(b.ljust(col_width) for b in backends)]
    for row, cells in table.items():
        lines.append(
            row.ljust(row_width)
            + "".join(cells[b].ljust(col_width) for b in backends)
        )
    return "\n".join(lines)


#: The paper's Table 2, cell for cell ("Y" = ✓, "X" = ✗, "" = blank).
PAPER_TABLE2: Dict[str, Dict[str, str]] = {
    "State mechanism": {
        "OpenFlow 1.3": "Controller only",
        "OpenState": "State machine",
        "FAST": "Learn action",
        "POF and P4": "Flow registers",
        "SNAP": "Global arrays",
        "Varanus": "Recursive learn",
        "Static Varanus": "Recursive learn",
    },
    "Update datapath": {
        "OpenFlow 1.3": "—",
        "OpenState": "Fast path",
        "FAST": "Slow path",
        "POF and P4": "Fast path",
        "SNAP": "Fast path",
        "Varanus": "Slow path",
        "Static Varanus": "Slow path",
    },
    "Processing Mode": {
        "OpenFlow 1.3": "Inline",
        "OpenState": "Inline",
        "FAST": "Inline",
        "POF and P4": "",
        "SNAP": "",
        "Varanus": "Split",
        "Static Varanus": "Split",
    },
    "Event History": {
        "OpenFlow 1.3": "",
        "OpenState": "Y",
        "FAST": "Y",
        "POF and P4": "Y",
        "SNAP": "Y",
        "Varanus": "Y",
        "Static Varanus": "Y",
    },
    "Identification of related events": {
        "OpenFlow 1.3": "Y (1.5 only)",
        "OpenState": "",
        "FAST": "",
        "POF and P4": "Y",
        "SNAP": "Y",
        "Varanus": "Y",
        "Static Varanus": "Y",
    },
    "Field access": {
        "OpenFlow 1.3": "Fixed",
        "OpenState": "Fixed",
        "FAST": "Fixed",
        "POF and P4": "Dynamic",
        "SNAP": "Dynamic",
        "Varanus": "Fixed",
        "Static Varanus": "Fixed",
    },
    "Negative match": {
        "OpenFlow 1.3": "Y",
        "OpenState": "Y",
        "FAST": "Y",
        "POF and P4": "Y",
        "SNAP": "Y",
        "Varanus": "Y",
        "Static Varanus": "Y",
    },
    "Rule timeouts": {
        "OpenFlow 1.3": "Y",
        "OpenState": "Y",
        "FAST": "X",
        "POF and P4": "Y",
        "SNAP": "X",
        "Varanus": "Y",
        "Static Varanus": "Y",
    },
    "Timeout actions": {
        "OpenFlow 1.3": "X",
        "OpenState": "X",
        "FAST": "X",
        "POF and P4": "X",
        "SNAP": "X",
        "Varanus": "Y",
        "Static Varanus": "Y",
    },
    "Symmetric match": {
        "OpenFlow 1.3": "",
        "OpenState": "Y",
        "FAST": "Y",
        "POF and P4": "Y",
        "SNAP": "Y",
        "Varanus": "Y",
        "Static Varanus": "Y",
    },
    "Wandering match": {
        "OpenFlow 1.3": "",
        "OpenState": "X",
        "FAST": "X",
        "POF and P4": "",
        "SNAP": "",
        "Varanus": "Y",
        "Static Varanus": "Y",
    },
    "Out-of-band events": {
        "OpenFlow 1.3": "",
        "OpenState": "X",
        "FAST": "X",
        "POF and P4": "X",
        "SNAP": "X",
        "Varanus": "Y",
        "Static Varanus": "X",
    },
    "Full provenance": {
        "OpenFlow 1.3": "",
        "OpenState": "X",
        "FAST": "X",
        "POF and P4": "X",
        "SNAP": "X",
        "Varanus": "X",
        "Static Varanus": "X",
    },
}


def diff_against_paper(
    table: Optional[Dict[str, Dict[str, str]]] = None,
) -> List[Tuple[str, str, str, str]]:
    """(row, backend, computed, expected) for every mismatching cell."""
    if table is None:
        table = build_table2()
    diffs = []
    for row, expected_cells in PAPER_TABLE2.items():
        for backend_name, expected in expected_cells.items():
            computed = table.get(row, {}).get(backend_name, "<missing>")
            if computed != expected:
                diffs.append((row, backend_name, computed, expected))
    return diffs
