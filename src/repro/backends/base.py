"""Backend capability model — the scaffolding behind Table 2.

Each of the paper's surveyed approaches (OpenFlow 1.3, OpenState, FAST,
POF/P4, SNAP, Varanus, Static Varanus) is modeled as a :class:`Backend`
with a :class:`Capabilities` descriptor declaring exactly the semantic
features the paper's Table 2 grants it.  ``compile()`` validates a property
specification against those capabilities — raising
:class:`UnsupportedFeature` precisely where the paper puts an ✗ (or leaves
a blank, for target-dependent support) — and otherwise instantiates a
:class:`BackendMonitor`: the core monitor engine configured with the
backend's parse depth, drop visibility, state-update path, processing
mode, and pipeline-cost model.

Tri-state capability values mirror Table 2's cells: ``True`` = ✓,
``False`` = ✗ ("the architecture precludes implementation"), ``None`` =
blank ("does not apply or support is unclear / target-dependent").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.analysis import (
    analyze,
    requires_drop_visibility,
    requires_multiple_match,
    requires_out_of_band,
)
from ..core.features import FeatureRequirements, MatchKind
from ..core.monitor import Monitor
from ..core.provenance import ProvenanceLevel
from ..core.spec import PropertySpec
from ..core.violations import Violation
from ..switch.events import DataplaneEvent, PacketDrop
from ..switch.registers import StateCostMeter, TABLE_LOOKUP_COST
from ..switch.switch import DEFAULT_SPLIT_LAG, ProcessingMode

#: state-update lag for approaches whose Table 2 update-datapath cell says
#: "Fast path": the update lands within roughly one pipeline pass, not a
#: control-channel round trip.
FAST_PATH_SPLIT_LAG = 5e-6


def default_split_lag(caps: "Capabilities") -> float:
    """Table 2's update-datapath column read as a split-lag prior.

    "Fast path" updates commit in-pipeline (:data:`FAST_PATH_SPLIT_LAG`);
    "Slow path" — and the blank / "—" cells, where the update path is
    unstated — pay the control-channel round trip that
    :data:`DEFAULT_SPLIT_LAG` models.
    """
    if caps.update_datapath == "Fast path":
        return FAST_PATH_SPLIT_LAG
    return DEFAULT_SPLIT_LAG


def split_lag_profile() -> Dict[str, float]:
    """Per-backend default split lags, keyed by canonical backend name."""
    from .conformance import all_backends  # deferred: conformance imports base

    return {
        backend.caps.name: default_split_lag(backend.caps)
        for backend in all_backends()
    }


class UnsupportedFeature(Exception):
    """The backend's architecture cannot express a required feature.

    ``precluded`` distinguishes Table 2's ✗ ("the architecture precludes
    implementation") from its blanks ("support is unclear or
    target-dependent"): the conformance harness renders the two
    differently.
    """

    def __init__(self, feature: str, reason: str, precluded: bool = True) -> None:
        super().__init__(f"{feature}: {reason}")
        self.feature = feature
        self.reason = reason
        self.precluded = precluded


@dataclass(frozen=True)
class Capabilities:
    """One Table 2 column."""

    name: str
    state_mechanism: str
    update_datapath: str  # "Fast path" | "Slow path" | "—" | "" (blank)
    processing_mode: str  # "Inline" | "Split" | "" (blank)
    event_history: Optional[bool]
    related_events: Optional[bool]  # packet identity / F5; OF uses a note
    related_events_note: str = ""
    field_access: str = "Fixed"  # "Fixed" | "Dynamic"
    negative_match: Optional[bool] = True
    rule_timeouts: Optional[bool] = None
    timeout_actions: Optional[bool] = False
    symmetric_match: Optional[bool] = None
    wandering_match: Optional[bool] = None
    out_of_band: Optional[bool] = None
    full_provenance: Optional[bool] = None
    #: not a Table 2 row, but load-bearing for the firewall/NAT properties:
    #: can the approach observe dropped packets at all?
    drop_visibility: bool = False

    @property
    def max_parse_layer(self) -> int:
        return 7 if self.field_access == "Dynamic" else 4

    def cell(self, value: Optional[bool]) -> str:
        if value is None:
            return ""
        return "Y" if value else "X"


class BackendMonitor:
    """A property monitor running under one backend's constraints.

    Wraps the core engine with: the backend's parse-depth limit, drop
    (in)visibility, state-update path costs, processing mode, and a
    pipeline-depth model (``depth_fn``) so benchmarks can read the cost of
    each event in simulated lookup ticks.
    """

    def __init__(
        self,
        backend_name: str,
        props: Sequence[PropertySpec],
        max_layer: int,
        mode: ProcessingMode,
        slow_path: bool,
        drop_visibility: bool,
        depth_fn: Callable[["BackendMonitor"], int],
        provenance: ProvenanceLevel = ProvenanceLevel.LIMITED,
        split_lag: float = DEFAULT_SPLIT_LAG,
        store_strategy: str = "indexed",
    ) -> None:
        self.backend_name = backend_name
        self.meter = StateCostMeter()
        self.monitor = Monitor(
            provenance=provenance,
            store_strategy=store_strategy,
            mode=mode,
            split_lag=split_lag,
            max_layer=max_layer,
            meter=self.meter,
            slow_path_updates=slow_path,
        )
        for prop in props:
            self.monitor.add_property(prop)
        self.drop_visibility = drop_visibility
        self._depth_fn = depth_fn
        self.events_seen = 0
        self.events_filtered = 0

    # -- event intake ------------------------------------------------------
    def observe(self, event: DataplaneEvent) -> None:
        if isinstance(event, PacketDrop) and not self.drop_visibility:
            self.events_filtered += 1
            return  # the architecture never surfaces drops
        self.events_seen += 1
        # Every packet event traverses the whole monitoring pipeline: one
        # lookup per table.  This is the cost Sec. 3.3 worries about.
        self.meter.charge_lookup(self.pipeline_depth)
        self.monitor.observe(event)

    def advance_to(self, when: float) -> None:
        self.monitor.advance_to(when)

    def attach(self, switch) -> None:
        switch.add_tap(self.observe)

    # -- results -------------------------------------------------------------
    @property
    def violations(self) -> List[Violation]:
        return self.monitor.violations

    @property
    def pipeline_depth(self) -> int:
        return self._depth_fn(self)

    @property
    def live_instances(self) -> int:
        return self.monitor.live_instances()

    @property
    def processing_ticks(self) -> int:
        return self.meter.total_ticks


class Backend:
    """Base class: capability checks shared by every approach."""

    caps: Capabilities

    def __init__(self) -> None:
        if not hasattr(self, "caps"):  # pragma: no cover - subclass contract
            raise TypeError("Backend subclasses must define caps")

    # -- compile ----------------------------------------------------------------
    def compile(self, *props: PropertySpec) -> BackendMonitor:
        """Validate and instantiate a monitor for the given properties."""
        if not props:
            raise ValueError("compile() needs at least one property")
        for prop in props:
            self.check(prop)
        return self._instantiate(props)

    def check(self, prop: PropertySpec) -> FeatureRequirements:
        """Raise :class:`UnsupportedFeature` if the property needs more
        than this backend provides; returns the requirement analysis."""
        req = analyze(prop)
        gaps = self.blockers(prop, req)
        if gaps:
            raise gaps[0]
        return req

    def blockers(
        self,
        prop: PropertySpec,
        req: Optional[FeatureRequirements] = None,
    ) -> Tuple[UnsupportedFeature, ...]:
        """Every feature gap between ``prop`` and this backend, in the
        order ``check()`` would trip over them (so ``blockers()[0]`` is
        exactly what ``check()`` raises).  The static feasibility pass in
        :mod:`repro.lint` reports the full list per backend."""
        if req is None:
            req = analyze(prop)
        caps = self.caps
        gaps: List[UnsupportedFeature] = []
        self._require(gaps, caps.event_history, req.history, "event history")
        self._require(gaps, caps.related_events, req.identity,
                      "identification of related events")
        if req.max_layer > caps.max_parse_layer:
            gaps.append(UnsupportedFeature(
                "field access",
                f"property parses to L{req.max_layer} but {caps.name} has "
                f"fixed-function parsing (max L{caps.max_parse_layer})",
            ))
        self._require(gaps, caps.negative_match, req.negative_match,
                      "negative match")
        self._require(gaps, caps.rule_timeouts, req.timeouts, "rule timeouts")
        self._require(gaps, caps.timeout_actions, req.timeout_actions,
                      "timeout actions")
        self._require(
            gaps,
            caps.symmetric_match,
            req.match_kind is MatchKind.SYMMETRIC,
            "symmetric match",
        )
        self._require(
            gaps,
            caps.wandering_match,
            req.match_kind is MatchKind.WANDERING,
            "wandering match",
        )
        self._require(gaps, caps.out_of_band,
                      req.out_of_band or req.multiple_match,
                      "out-of-band events / multiple match")
        if req.drop_visibility and not caps.drop_visibility:
            gaps.append(UnsupportedFeature(
                "drop visibility",
                f"{caps.name} never surfaces dropped packets (they do not "
                "enter the egress pipeline)",
            ))
        return tuple(gaps)

    def _require(
        self,
        gaps: List[UnsupportedFeature],
        capability: Optional[bool],
        needed: bool,
        feature: str,
    ) -> None:
        if not needed:
            return
        if capability is True:
            return
        if capability is False:
            gaps.append(UnsupportedFeature(
                feature,
                f"{self.caps.name}'s architecture precludes it",
                precluded=True,
            ))
            return
        gaps.append(UnsupportedFeature(
            feature,
            f"support in {self.caps.name} is target-dependent / not part "
            "of its design",
            precluded=False,
        ))

    # -- instantiation -----------------------------------------------------------
    def _instantiate(self, props: Sequence[PropertySpec]) -> BackendMonitor:
        caps = self.caps
        return BackendMonitor(
            backend_name=caps.name,
            props=props,
            max_layer=caps.max_parse_layer,
            mode=(
                ProcessingMode.SPLIT
                if caps.processing_mode == "Split"
                else ProcessingMode.INLINE
            ),
            slow_path=caps.update_datapath == "Slow path",
            drop_visibility=caps.drop_visibility,
            depth_fn=self._depth_fn(props),
            split_lag=default_split_lag(caps),
            provenance=(
                ProvenanceLevel.FULL
                if caps.full_provenance
                else ProvenanceLevel.LIMITED
            ),
        )

    def _depth_fn(
        self, props: Sequence[PropertySpec]
    ) -> Callable[[BackendMonitor], int]:
        """Default pipeline-depth model: one table per observation stage."""
        static_depth = sum(p.num_stages for p in props)
        return lambda bm: static_depth

    # -- provenance capability (probed separately) ----------------------------------
    def supports_full_provenance(self) -> Optional[bool]:
        return self.caps.full_provenance
