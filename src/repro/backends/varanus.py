"""Varanus — on-switch property monitoring via recursive learn (Table 2).

Varanus is the paper's own prototype: each active monitor instance is
"unrolled" into its own OpenFlow table by an extended, *recursive* form of
the OVS learn action, with custom extensions for timeout actions and
out-of-band events.  It is the only surveyed approach supporting the full
feature set — at the cost the paper spells out in Sec. 3.3:

* the switch pipeline is **one table per active instance**: pipeline depth
  (and thus per-packet processing time) grows linearly with the number of
  instances;
* all state lives in OpenFlow rules, so every update is a **slow-path**
  flow-mod, far from line rate;
* processing is **split**: state updates land asynchronously after the
  packet is forwarded, so monitor state can lag the traffic.

:class:`VaranusBackend` configures the core engine accordingly — the depth
model reads the live instance population, the meter charges a lookup *per
table* per packet, updates are slow-path, and the processing mode is
split.  ``benchmarks/bench_pipeline_depth.py`` measures exactly these.

:func:`compile_firewall_to_rules` additionally shows the mechanism itself:
the stateful-firewall property compiled to literal recursive-learn rules
on a :class:`~repro.switch.switch.Switch`, where each outbound flow grows
the pipeline by one table — the structural fact behind the cost model.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.spec import PropertySpec
from ..switch.actions import FieldRef, Learn, Notify
from ..switch.match import MatchSpec
from ..switch.switch import DEFAULT_SPLIT_LAG, Switch
from .base import Backend, BackendMonitor, Capabilities


class VaranusBackend(Backend):
    """Capability column + cost model for Varanus."""

    def __init__(self, split_lag: float = DEFAULT_SPLIT_LAG) -> None:
        self.split_lag = split_lag
        self.caps = Capabilities(
            name="Varanus",
            state_mechanism="Recursive learn",
            update_datapath="Slow path",
            processing_mode="Split",
            event_history=True,
            related_events=True,
            field_access="Fixed",
            negative_match=True,
            rule_timeouts=True,
            timeout_actions=True,
            symmetric_match=True,
            wandering_match=True,
            out_of_band=True,
            full_provenance=False,
            drop_visibility=True,  # custom Open vSwitch extensions
        )
        super().__init__()

    def _depth_fn(
        self, props: Sequence[PropertySpec]
    ) -> Callable[[BackendMonitor], int]:
        # One static stage-0 table per property, plus one table per live
        # instance: Sec. 3.3's "the depth of the switch pipeline is no
        # smaller than the number of active instances".
        base = len(props)
        return lambda bm: base + bm.live_instances


class StaticVaranusBackend(Backend):
    """The bounded variant: one table per observation stage.

    Sec. 3.3: bounding the number of monitoring tables gives constant
    packet processing time "at the expense of some expressivity" — one
    table per observation stage preserves wandering match but sacrifices
    out-of-band events (multiple match), whose unrolling needed an
    unbounded number of tables.
    """

    def __init__(self, split_lag: float = DEFAULT_SPLIT_LAG) -> None:
        self.split_lag = split_lag
        self.caps = Capabilities(
            name="Static Varanus",
            state_mechanism="Recursive learn",
            update_datapath="Slow path",
            processing_mode="Split",
            event_history=True,
            related_events=True,
            field_access="Fixed",
            negative_match=True,
            rule_timeouts=True,
            timeout_actions=True,
            symmetric_match=True,
            wandering_match=True,
            out_of_band=False,  # the sacrificed feature
            full_provenance=False,
            drop_visibility=True,
        )
        super().__init__()
    # depth: the default (sum of stage counts) — constant in instances.


def compile_firewall_to_rules(switch: Switch, alert_cookie: str = "fw-violation") -> None:
    """Compile the basic stateful-firewall property to recursive learn.

    Table 0 (static): an arrival from the internal side (port 1) triggers a
    recursive learn that *appends a new table* holding this (A, B)
    instance's stage-2 watcher: a rule matching return traffic B -> A whose
    fate is a drop.  Because our pipeline exposes drops to egress rules
    only via the monitor, the compiled watcher here raises the alert on the
    *match* of return traffic entering while the pinhole rule says it
    should pass — the structural point (one table per instance, slow-path
    growth) is what this function demonstrates and the benchmarks measure.
    """
    # table_id=-1: each learn appends a FRESH table — one per instance.
    learn = Learn(
        table_id=-1,
        match=(
            ("ipv4.src", FieldRef("ipv4.dst")),  # B: the inverted pair
            ("ipv4.dst", FieldRef("ipv4.src")),  # A
        ),
        actions=(
            Notify(
                "firewall property instance matched return traffic",
                carry=("ipv4.src", "ipv4.dst"),
            ),
        ),
        cookie=alert_cookie,
    )
    # The stage-0 rule only learns; the packet falls through to the
    # pipeline's miss policy for its ordinary forwarding fate.
    switch.install_rule(
        MatchSpec(in_port=1),
        [learn],
        table_id=0,
        priority=50,
        cookie="varanus-stage0",
    )
