"""Attack synthesis from taint findings: the lint's claims, executed.

The taint pass (:mod:`repro.lint.taint`) *flags* properties whose monitor
state an end host controls — L017 says "one sender can flood the instance
table", L018 says "the sender paces traffic around the deadline".  This
module closes the loop by turning those findings into concrete event
traces and running them against a real :class:`~repro.core.monitor.Monitor`
so the claims are checked, not just asserted:

* an **exhaustion flood** (from an L017 finding) synthesizes packets that
  match the property's stage 0 while cycling every key-bound header field
  through fresh values, then feeds them to a monitor capped by the very
  :func:`~repro.core.degradation.suggested_policy` the lint recommends.
  The attack *succeeds* when the monitor's :class:`OverflowLedger` shows
  shed instances; a benign control trace (same traffic shape, a handful
  of distinct keys) over the same monitor must shed nothing.

* an **evasion pacing** run (from an L018 finding on an ``absent ...
  refresh on_prior`` stage) re-sends the deadline-opening packet just
  inside the window so the obligation never fires, while the control run
  sends it once and collects the violation the attacker suppressed.

``repro chaos --attack`` drives :func:`run_attacks` over the whole DSL
catalog plus the adversarial corpus; the integration tests assert the
flagged/unflagged split is faithful (flagged properties degrade under
attack, unflagged ones do not).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, List, Optional, Tuple

from .core.degradation import suggested_policy
from .core.monitor import Monitor
from .core.spec import PropertySpec
from .lang import compile_one, parse_one
from .lang.ast import Comparison, Literal, NamedPredicate, PropertyAst, StageAst
from .lint.diagnostics import Diagnostic
from .lint.taint import TaintReport, analyze_taint, taint_diagnostics
from .packet.addresses import MACAddress
from .packet.builder import (
    arp_reply,
    arp_request,
    dhcp_packet,
    ethernet,
    tcp_packet,
    udp_packet,
)
from .packet.dhcp import DhcpMessageType
from .packet.headers import TCPFlags
from .packet.packet import Packet
from .props.arp import ArpKnowledge
from .props.catalog import CATALOG_BACKENDS, CATALOG_VIP
from .props.dhcp_arp import LeaseKnowledge
from .props.dsl_sources import DSL_SOURCES, dsl_predicates
from .props.load_balancing import RoundRobinExpectation
from .switch.events import PacketArrival

#: ledger record kinds that mean "an instance was shed"
SHED_KINDS = ("instance-evicted", "instance-rejected")

#: instance cap imposed on the attacked monitor (small so floods are cheap)
ATTACK_CAP = 64

#: distinct keys in the benign control trace — far under ATTACK_CAP
BENIGN_KEYS = 8

#: stage-0 predicates we know how to satisfy with a forged packet
_SPOOFABLE_PREDICATES = (
    "tcp_syn", "arp_request", "arp_reply",
    "dhcp_request", "dhcp_ack", "dhcp_release",
)


def _predicate_env():
    return dsl_predicates(
        ArpKnowledge(), LeaseKnowledge(),
        RoundRobinExpectation(CATALOG_VIP, CATALOG_BACKENDS))


# ---------------------------------------------------------------------------
# findings
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AttackFinding:
    """One L017/L018 diagnostic paired with everything needed to attack."""

    source_key: str  # DSL_SOURCES key ("" for ad-hoc sources)
    source: str
    ast: PropertyAst
    report: TaintReport
    diagnostic: Diagnostic

    @property
    def prop(self) -> str:
        return self.ast.name

    @property
    def code(self) -> str:
        return self.diagnostic.code


def findings_for(source: str, source_key: str = "") -> List[AttackFinding]:
    """The attackable (L017/L018) findings for one property source."""
    ast = parse_one(source)
    report = analyze_taint(ast)
    return [
        AttackFinding(source_key=source_key, source=source, ast=ast,
                      report=report, diagnostic=diag)
        for diag in taint_diagnostics(ast, report)
        if diag.code in ("L017", "L018")
    ]


def catalog_findings(
    keys: Optional[Iterable[str]] = None,
) -> List[AttackFinding]:
    """Attackable findings across the DSL catalog (or a subset of keys)."""
    out: List[AttackFinding] = []
    for key in (sorted(DSL_SOURCES) if keys is None else keys):
        out.extend(findings_for(DSL_SOURCES[key], source_key=key))
    return out


# ---------------------------------------------------------------------------
# trace synthesis
# ---------------------------------------------------------------------------

class SynthesisError(Exception):
    """Stage 0 cannot be forged by a lone sender (opaque predicate &c)."""


def _stage0_plan(stage: StageAst, key_vars: Tuple[str, ...]):
    """(fixed field assignments, varying key fields, predicates) for stage 0.

    Equality guards against literals become fixed header values — the
    flood has to *match* the property, not just resemble it.  Ordered
    guards pick a satisfying value just inside the bound.
    """
    fixed: Dict[str, object] = {}
    predicates: List[str] = []
    for condition in stage.pattern.conditions:
        if isinstance(condition, NamedPredicate):
            if condition.name not in _SPOOFABLE_PREDICATES:
                raise SynthesisError(
                    f"stage 0 requires opaque predicate @{condition.name}")
            predicates.append(condition.name)
        elif isinstance(condition, Comparison):
            if not isinstance(condition.value, Literal):
                continue  # stage-0 var refs have nothing bound yet
            value = condition.value.value
            if condition.op in ("==", "<=", ">="):
                fixed[condition.field] = value
            elif condition.op == "<" and isinstance(value, int):
                fixed[condition.field] = value - 1
            elif condition.op == ">" and isinstance(value, int):
                fixed[condition.field] = value + 1
            # "!=": any default value other than the literal matches;
            # the synthetic defaults below never collide with catalog
            # literals, so nothing to do.
    varying = tuple(
        bind.field for bind in stage.pattern.binds
        if bind.var in key_vars and bind.field not in fixed
    )
    return fixed, varying, predicates


def _key_value(field_name: str, salt: int) -> object:
    """The ``salt``-th distinct forged value for one header field."""
    suffix = field_name.rsplit(".", 1)[-1]
    if suffix.endswith("mac") or field_name in ("eth.src", "eth.dst"):
        # locally-administered unicast OUI so forged MACs are well-formed
        return MACAddress(0x02_00_00_00_00_00 + salt)
    if suffix.endswith("ip") or field_name in ("ipv4.src", "ipv4.dst"):
        # RFC 2544 benchmarking range: never collides with catalog hosts
        return f"198.18.{(salt >> 8) & 255}.{salt & 255}"
    return 1024 + (salt % 60000)  # ports, xids, misc integers


def _forge_packet(assign: Dict[str, object], predicates: List[str]) -> Packet:
    """A packet realizing the given field assignment.

    The protocol is inferred from the assigned field prefixes (and any
    spoofable stage-0 predicates); unassigned fields fall back to fixed
    attacker-host defaults.
    """
    prefixes = {name.split(".", 1)[0] for name in assign}

    def get(name, default):
        return assign.get(name, default)

    if "arp" in prefixes or any(p.startswith("arp_") for p in predicates):
        if "arp_reply" in predicates:
            return arp_reply(
                get("arp.sender_mac", MACAddress(0x02_00_00_00_FF_01)),
                get("arp.sender_ip", "198.18.255.1"),
                get("arp.target_mac", MACAddress(0x02_00_00_00_FF_02)),
                get("arp.target_ip", "198.18.255.2"))
        return arp_request(
            get("arp.sender_mac", MACAddress(0x02_00_00_00_FF_01)),
            get("arp.sender_ip", "198.18.255.1"),
            get("arp.target_ip", "198.18.255.2"))
    if "dhcp" in prefixes or any(p.startswith("dhcp_") for p in predicates):
        msg_type = DhcpMessageType.REQUEST
        if "dhcp_ack" in predicates:
            msg_type = DhcpMessageType.ACK
        elif "dhcp_release" in predicates:
            msg_type = DhcpMessageType.RELEASE
        msg_type = get("dhcp.msg_type", msg_type)
        return dhcp_packet(
            get("dhcp.client_mac", MACAddress(0x02_00_00_00_FF_01)),
            msg_type,
            xid=get("dhcp.xid", 1),
            yiaddr=get("dhcp.yiaddr", "198.18.255.3"),
            server_id=get("dhcp.server_id", "198.18.255.4"),
            requested_ip=get("dhcp.requested_ip", None))
    if "udp" in prefixes:
        return udp_packet(
            get("eth.src", MACAddress(0x02_00_00_00_FF_01)),
            get("eth.dst", MACAddress(0x02_00_00_00_FF_02)),
            get("ipv4.src", "198.18.255.1"),
            get("ipv4.dst", "198.18.255.2"),
            get("udp.src", 40000), get("udp.dst", 40001))
    if "tcp" in prefixes or "ipv4" in prefixes or "tcp_syn" in predicates:
        flags = TCPFlags.SYN if "tcp_syn" in predicates else TCPFlags.ACK
        return tcp_packet(
            get("eth.src", MACAddress(0x02_00_00_00_FF_01)),
            get("eth.dst", MACAddress(0x02_00_00_00_FF_02)),
            get("ipv4.src", "198.18.255.1"),
            get("ipv4.dst", "198.18.255.2"),
            get("tcp.src", 40000), get("tcp.dst", 40001),
            flags=get("tcp.flags", flags))
    return ethernet(
        get("eth.src", MACAddress(0x02_00_00_00_FF_01)),
        get("eth.dst", MACAddress(0x02_00_00_00_FF_02)))


def synthesize_flood(
    finding: AttackFinding,
    count: int,
    *,
    distinct_keys: Optional[int] = None,
    start: float = 0.0,
    spacing: float = 0.001,
    salt: int = 0,
) -> List[PacketArrival]:
    """``count`` stage-0 matches cycling the key through forged values.

    ``distinct_keys=None`` mints a fresh key per packet (the exhaustion
    flood); a small value replays the same few keys (the benign control).
    Raises :class:`SynthesisError` when stage 0 needs an opaque predicate.
    """
    stage = finding.ast.stages[0]
    fixed, varying, predicates = _stage0_plan(stage, finding.report.key_vars)
    events: List[PacketArrival] = []
    for i in range(count):
        key_salt = salt + (i if distinct_keys is None else i % distinct_keys)
        assign = dict(fixed)
        for name in varying:
            assign[name] = _key_value(name, key_salt)
        in_port = assign.pop("in_port", 1)
        events.append(PacketArrival(
            switch_id="s", time=start + i * spacing,
            packet=_forge_packet(assign, predicates), in_port=in_port))
    return events


# ---------------------------------------------------------------------------
# attack execution
# ---------------------------------------------------------------------------

@dataclass
class AttackOutcome:
    """What one synthesized attack did to one property's monitor."""

    prop: str
    code: str
    kind: str  # "exhaustion-flood" | "evasion-pacing" | "skipped"
    succeeded: bool  # attack had the effect the lint predicted
    clean_control: bool  # control run showed no degradation artifact
    events: int = 0
    attack_sheds: int = 0
    control_sheds: int = 0
    attack_violations: int = 0
    control_violations: int = 0
    #: ledgered uncertainty interval around the attack run's verdict count
    attack_interval: Tuple[int, int] = (0, 0)
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "prop": self.prop,
            "code": self.code,
            "kind": self.kind,
            "succeeded": self.succeeded,
            "clean_control": self.clean_control,
            "events": self.events,
            "attack_sheds": self.attack_sheds,
            "control_sheds": self.control_sheds,
            "attack_violations": self.attack_violations,
            "control_violations": self.control_violations,
            "attack_interval": list(self.attack_interval),
            "detail": self.detail,
        }


def _capped_monitor(finding: AttackFinding, cap: int) -> Monitor:
    """A monitor holding just the flagged property, capped as suggested."""
    spec: PropertySpec = compile_one(finding.source, _predicate_env())
    policy = suggested_policy(
        max(finding.report.instance_bound, 1), attacker_keyed=True, cap=cap)
    monitor = Monitor(degradation=policy)
    monitor.add_property(spec)
    return monitor


def _sheds(monitor: Monitor, prop: str) -> int:
    return sum(1 for r in monitor.ledger.records
               if r.prop == prop and r.kind in SHED_KINDS)


def run_exhaustion(
    finding: AttackFinding,
    *,
    cap: int = ATTACK_CAP,
    events: Optional[int] = None,
    salt: int = 0,
) -> AttackOutcome:
    """Flood the instance table; contrast with a benign control trace."""
    count = events if events is not None else 4 * cap
    try:
        flood = synthesize_flood(finding, count, salt=salt)
        benign = synthesize_flood(finding, count,
                                  distinct_keys=BENIGN_KEYS, salt=salt)
    except SynthesisError as exc:
        return AttackOutcome(
            prop=finding.prop, code=finding.code, kind="skipped",
            succeeded=False, clean_control=True, detail=str(exc))

    attacked = _capped_monitor(finding, cap)
    for event in flood:
        attacked.observe(event)
    control = _capped_monitor(finding, cap)
    for event in benign:
        control.observe(event)

    attack_sheds = _sheds(attacked, finding.prop)
    control_sheds = _sheds(control, finding.prop)
    return AttackOutcome(
        prop=finding.prop, code=finding.code, kind="exhaustion-flood",
        succeeded=attack_sheds > 0, clean_control=control_sheds == 0,
        events=count,
        attack_sheds=attack_sheds, control_sheds=control_sheds,
        attack_violations=len(attacked.violations),
        control_violations=len(control.violations),
        attack_interval=attacked.ledger.interval(
            len(attacked.violations), finding.prop),
        detail=f"{count} forged packets against max_instances={cap}",
    )


def _evasion_stage(ast: PropertyAst) -> Optional[int]:
    """Index of the refreshable deadline stage an attacker can pace."""
    for index, stage in enumerate(ast.stages):
        if (index == 1 and stage.negative and stage.within is not None
                and stage.refresh == "on_prior"):
            return index
    return None


def run_evasion(
    finding: AttackFinding,
    *,
    windows: int = 4,
    salt: int = 0,
) -> AttackOutcome:
    """Pace the deadline-opening packet so the obligation never fires.

    Supported shape: ``observe`` then ``absent ... within W refresh
    on_prior`` — re-matching stage 0 resets the deadline (the "buggy
    reset" the spec documents), so a sender repeating its request every
    0.9 W keeps the obligation alive forever.  The control run sends the
    request once and harvests the violation the attacker suppressed.
    """
    index = _evasion_stage(finding.ast)
    if index is None:
        return AttackOutcome(
            prop=finding.prop, code=finding.code, kind="skipped",
            succeeded=False, clean_control=True,
            detail="no absent-within-refresh-on_prior stage to pace")
    window = finding.ast.stages[index].within
    try:
        openers = synthesize_flood(
            finding, windows, distinct_keys=1,
            spacing=0.9 * window, salt=salt)
        (single,) = synthesize_flood(finding, 1, distinct_keys=1, salt=salt)
    except SynthesisError as exc:
        return AttackOutcome(
            prop=finding.prop, code=finding.code, kind="skipped",
            succeeded=False, clean_control=True, detail=str(exc))
    horizon = windows * window + 2 * window

    attacked = _capped_monitor(finding, ATTACK_CAP)
    # re-send the opener just inside each deadline window, then stop:
    # only the *final* (unrefreshed) deadline may fire
    for event in openers:
        attacked.observe(event)
    attacked.advance_to(horizon)

    control = _capped_monitor(finding, ATTACK_CAP)
    control.observe(single)
    control.advance_to(horizon)

    # The attack succeeds when the deadline was *deferred*: the paced run
    # either never fires, or fires strictly later than the single-opener
    # control (whose violation lands at opener-time + window).
    first_attack = min((v.time for v in attacked.violations), default=None)
    first_control = min((v.time for v in control.violations), default=None)
    deferred = first_control is not None and (
        first_attack is None or first_attack > first_control)
    evaded_windows = len(openers) - 1
    return AttackOutcome(
        prop=finding.prop, code=finding.code, kind="evasion-pacing",
        succeeded=deferred and evaded_windows > 0,
        clean_control=len(control.violations) > 0,
        events=len(openers),
        attack_violations=len(attacked.violations),
        control_violations=len(control.violations),
        attack_interval=attacked.ledger.interval(
            len(attacked.violations), finding.prop),
        detail=(f"opener re-sent every {0.9 * window:g}s deferred the "
                f"within-{window:g} deadline across {evaded_windows} "
                f"window(s)"
                + ("" if first_attack is None or first_control is None else
                   f" (violation at t={first_attack:g} vs t="
                   f"{first_control:g} unpaced)")),
    )


def run_attack(finding: AttackFinding, *, salt: int = 0,
               cap: int = ATTACK_CAP) -> AttackOutcome:
    """Dispatch one finding to the attack its rule code calls for."""
    if finding.code == "L018":
        return run_evasion(finding, salt=salt)
    return run_exhaustion(finding, cap=cap, salt=salt)


# ---------------------------------------------------------------------------
# reports
# ---------------------------------------------------------------------------

@dataclass
class AttackReport:
    """One sweep of synthesized attacks over a set of findings."""

    outcomes: List[AttackOutcome] = dc_field(default_factory=list)
    rounds: int = 1

    @property
    def failed(self) -> bool:
        """True when any executed attack contradicted the lint's claim."""
        return any(
            o.kind != "skipped" and not (o.succeeded and o.clean_control)
            for o in self.outcomes
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rounds": self.rounds,
            "failed": self.failed,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


def run_attacks(
    *,
    rounds: int = 1,
    keys: Optional[Iterable[str]] = None,
    extra_sources: Iterable[str] = (),
    cap: int = ATTACK_CAP,
) -> AttackReport:
    """Attack every flagged property in the catalog (plus extras)."""
    findings = catalog_findings(keys)
    for source in extra_sources:
        findings.extend(findings_for(source))
    report = AttackReport(rounds=rounds)
    for round_index in range(rounds):
        salt = round_index * 100_000
        for finding in findings:
            report.outcomes.append(run_attack(finding, salt=salt, cap=cap))
    return report


def render_attack_report(report: AttackReport) -> str:
    """Human-readable sweep summary for ``repro chaos --attack``."""
    lines: List[str] = []
    executed = [o for o in report.outcomes if o.kind != "skipped"]
    skipped = [o for o in report.outcomes if o.kind == "skipped"]
    lines.append(
        f"adversarial sweep: {len(report.outcomes)} finding(s) over "
        f"{report.rounds} round(s), {len(executed)} attack(s) executed, "
        f"{len(skipped)} skipped")
    for outcome in report.outcomes:
        if outcome.kind == "skipped":
            lines.append(
                f"  SKIP {outcome.prop} [{outcome.code}]: {outcome.detail}")
            continue
        verdict = ("confirmed" if outcome.succeeded and outcome.clean_control
                   else "NOT CONFIRMED")
        lines.append(
            f"  {verdict} {outcome.prop} [{outcome.code}] "
            f"{outcome.kind}: {outcome.detail}")
        if outcome.kind == "exhaustion-flood":
            lines.append(
                f"    attack shed {outcome.attack_sheds} instance(s), "
                f"control shed {outcome.control_sheds}; verdict interval "
                f"{list(outcome.attack_interval)}")
        else:
            lines.append(
                f"    attack saw {outcome.attack_violations} violation(s), "
                f"control saw {outcome.control_violations}")
    lines.append("attack sweep "
                 + ("FAILED: a lint claim did not reproduce" if report.failed
                    else "passed: every executed attack behaved as flagged"))
    return "\n".join(lines)
