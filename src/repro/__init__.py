"""repro — stateful cross-packet property monitoring on software switches.

A full reproduction of *"Switches are Monitors Too! Stateful Property
Monitoring as a Switch Design Criterion"* (Nelson, DeMarinis, Hoff,
Fonseca, Krishnamurthi — HotNets 2016): the monitoring engine the paper
gestures at, the substrate it assumes, the thirteen-property catalog of its
Table 1, executable capability models of the seven approaches in its Table
2, and benchmarks for the Sec. 3.3 performance analysis.

Quick tour::

    from repro.netsim import single_switch_network, TraceRecorder
    from repro.core import Monitor
    from repro.props import firewall_timed

    net, switch, hosts = single_switch_network(2)
    monitor = Monitor(scheduler=net.scheduler)
    monitor.add_property(firewall_timed(T=30.0))
    monitor.attach(switch)
    # drive traffic; monitor.violations collects the witnesses

Subpackages:

* :mod:`repro.core`     — property IR, monitor engine, static analysis;
* :mod:`repro.packet`   — addresses, L2-L7 headers, wire codecs, builders;
* :mod:`repro.switch`   — the match-action dataplane (tables, learn
  actions, registers, egress stage, out-of-band events);
* :mod:`repro.netsim`   — virtual time, event scheduler, topology, traces,
  workloads;
* :mod:`repro.apps`     — the monitored network functions, with fault
  injection;
* :mod:`repro.props`    — the property catalog (Table 1 + worked examples);
* :mod:`repro.backends` — capability models of OpenFlow 1.3, OpenState,
  FAST, POF/P4, SNAP, Varanus, Static Varanus (Table 2);
* :mod:`repro.lang`     — the textual property language.
"""

__version__ = "1.0.0"

from .core.monitor import Monitor
from .core.provenance import ProvenanceLevel
from .core.spec import Absent, Observe, PropertySpec
from .core.violations import Violation
from .switch.switch import ProcessingMode, Switch

__all__ = [
    "__version__",
    "Monitor",
    "ProvenanceLevel",
    "Absent",
    "Observe",
    "PropertySpec",
    "Violation",
    "ProcessingMode",
    "Switch",
]
