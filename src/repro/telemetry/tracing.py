"""Packet/instance trace spans — one packet's story across the layers.

A :class:`Tracer` records **nested spans** on the virtual clock: a root
span per packet arrival (keyed by the packet uid), child spans for its
pipeline traversal and per-table matches, and zero-duration event spans
wherever the monitor advances, kills, or violates an instance because of
that packet.  The result is the observability counterpart of Feature 10
provenance: provenance explains a *violation* after the fact; a trace
explains every *packet*, including the ones that matched nothing.

Spans serialize as JSON lines (``dump_spans`` / ``load_spans``), one span
per line, ordered by span id — which, because ids are allocated at span
*start*, guarantees a parent's line precedes every child's.  The
well-formedness contract (checked by :func:`validate_spans`, pinned by a
Hypothesis property in the test suite):

* every span is closed: ``end`` is present and ``end >= start``;
* every non-root span's parent exists and was started no later than the
  child (``parent.start <= child.start`` and ``parent.span_id <
  child.span_id``);
* span ids strictly increase in emission order.

Correlation across decoupled layers works through the packet uid: the
switch opens a root span *before* emitting ``PacketArrival`` to its taps,
so when the monitor (a tap, synchronous) emits its own spans for the same
uid they attach under that root.  :class:`NullTracer` is the default and
costs one attribute check per call site.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Optional, Sequence


class Span:
    """One timed operation; zero-duration spans model point events."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "uid", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        uid: Optional[int] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.uid = uid
        self.attrs = attrs or {}

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "uid": self.uid,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.span_id}, {self.name!r}, parent={self.parent_id}, "
            f"[{self.start}, {self.end}])"
        )


class Tracer:
    """Records spans in memory; see module docstring for the contract."""

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._next_id = 1
        self._root_by_uid: Dict[int, Span] = {}

    # -- span lifecycle ----------------------------------------------------
    def start(
        self,
        name: str,
        time: float,
        uid: Optional[int] = None,
        parent: Optional[Span] = None,
        root: bool = False,
        **attrs: object,
    ) -> Span:
        """Open a span.

        With no explicit ``parent``, a span carrying a ``uid`` attaches
        under the current root span for that uid (if one is open).
        ``root=True`` registers this span as that root.
        """
        if parent is None and uid is not None and not root:
            current = self._root_by_uid.get(uid)
            if current is not None and current.end is None:
                parent = current
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else None,
            name,
            time,
            uid=uid,
            attrs=dict(attrs) if attrs else None,
        )
        self._next_id += 1
        self.spans.append(span)
        if root and uid is not None:
            self._root_by_uid[uid] = span
        return span

    def end(self, span: Span, time: float, **attrs: object) -> None:
        span.end = max(time, span.start)
        if attrs:
            span.attrs.update(attrs)
        if span.uid is not None and self._root_by_uid.get(span.uid) is span:
            del self._root_by_uid[span.uid]

    def event(
        self,
        name: str,
        time: float,
        uid: Optional[int] = None,
        parent: Optional[Span] = None,
        **attrs: object,
    ) -> Span:
        """A zero-duration span (instantaneous point event)."""
        span = self.start(name, time, uid=uid, parent=parent, **attrs)
        span.end = time
        return span

    def close_all(self, time: float) -> int:
        """Close any span still open (defensive; returns how many)."""
        closed = 0
        for span in self.spans:
            if span.end is None:
                span.end = max(time, span.start)
                closed += 1
        self._root_by_uid.clear()
        return closed

    def reset(self) -> None:
        self.spans.clear()
        self._root_by_uid.clear()
        self._next_id = 1


class NullTracer(Tracer):
    """The default: every operation is a no-op returning no span."""

    enabled = False

    def __init__(self) -> None:  # pragma: no cover - trivial
        pass

    def start(self, name, time, uid=None, parent=None, root=False, **attrs):  # type: ignore[override]
        return None

    def end(self, span, time, **attrs):  # type: ignore[override]
        pass

    def event(self, name, time, uid=None, parent=None, **attrs):  # type: ignore[override]
        return None

    def close_all(self, time):  # type: ignore[override]
        return 0

    def reset(self):  # type: ignore[override]
        pass


NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------
def dump_spans(spans: Iterable[Span], fp: IO[str]) -> int:
    """Write spans as JSON lines in span-id order; returns the count."""
    count = 0
    for span in sorted(spans, key=lambda s: s.span_id):
        fp.write(json.dumps(span.to_dict(), sort_keys=True))
        fp.write("\n")
        count += 1
    return count


def load_spans(fp: IO[str]) -> List[Span]:
    """Read a span JSONL stream back into :class:`Span` objects."""
    spans: List[Span] = []
    for line in fp:
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        span = Span(
            span_id=int(data["span_id"]),
            parent_id=data.get("parent_id"),
            name=data["name"],
            start=float(data["start"]),
            uid=data.get("uid"),
            attrs=data.get("attrs") or {},
        )
        if data.get("end") is not None:
            span.end = float(data["end"])
        spans.append(span)
    return spans


def save_spans(spans: Iterable[Span], path: str) -> int:
    with open(path, "w", encoding="utf-8") as fp:
        return dump_spans(spans, fp)


# ---------------------------------------------------------------------------
# Well-formedness
# ---------------------------------------------------------------------------
def validate_spans(spans: Sequence[Span]) -> List[str]:
    """Check the span-tree contract; returns a list of violations (empty
    when well-formed).  Used by tests and by ``repro stats --trace-out``
    before writing the file."""
    problems: List[str] = []
    by_id: Dict[int, Span] = {}
    last_id = 0
    for span in spans:
        if span.span_id <= last_id:
            problems.append(
                f"span {span.span_id} out of order (after {last_id})"
            )
        last_id = span.span_id
        by_id[span.span_id] = span
        if span.end is None:
            problems.append(f"span {span.span_id} ({span.name}) never closed")
        elif span.end < span.start:
            problems.append(
                f"span {span.span_id} ({span.name}) ends before it starts"
            )
        if span.parent_id is not None:
            parent = by_id.get(span.parent_id)
            if parent is None:
                problems.append(
                    f"span {span.span_id} ({span.name}) parent "
                    f"{span.parent_id} missing or later"
                )
            elif parent.start > span.start:
                problems.append(
                    f"span {span.span_id} ({span.name}) starts before its "
                    f"parent {parent.span_id}"
                )
    return problems


def replay_with_trace(monitor, events, tracer: Tracer) -> None:
    """Feed recorded events into ``monitor`` with one root span per event.

    This is the offline analogue of the switch's live tracing: each trace
    event gets a root span (named after its type, keyed by the packet uid
    when it has one) under which the monitor's instance spans nest.  Used
    by ``repro stats`` and the span well-formedness tests.
    """
    for event in events:
        packet = getattr(event, "packet", None)
        uid = packet.uid if packet is not None else None
        root = tracer.start(
            type(event).__name__, event.time, uid=uid, root=True,
            switch=event.switch_id,
        )
        monitor.observe(event)
        tracer.end(root, monitor.now)
