"""Packet/instance trace spans — one packet's story across the layers.

A :class:`Tracer` records **nested spans** on the virtual clock: a root
span per packet arrival (keyed by the packet uid), child spans for its
pipeline traversal and per-table matches, and zero-duration event spans
wherever the monitor advances, kills, or violates an instance because of
that packet.  The result is the observability counterpart of Feature 10
provenance: provenance explains a *violation* after the fact; a trace
explains every *packet*, including the ones that matched nothing.

Spans serialize as JSON lines (``dump_spans`` / ``load_spans``), one span
per line, ordered by span id — which, because ids are allocated at span
*start*, guarantees a parent's line precedes every child's.  The
well-formedness contract (checked by :func:`validate_spans`, pinned by a
Hypothesis property in the test suite):

* every span is closed: ``end`` is present and ``end >= start``;
* every non-root span's parent exists and was started no later than the
  child (``parent.start <= child.start`` and ``parent.span_id <
  child.span_id``);
* span ids strictly increase in emission order.

Correlation across decoupled layers works through the packet uid: the
switch opens a root span *before* emitting ``PacketArrival`` to its taps,
so when the monitor (a tap, synchronous) emits its own spans for the same
uid they attach under that root.  :class:`NullTracer` is the default and
costs one attribute check per call site.
"""

from __future__ import annotations

import atexit
import json
from collections import deque
from typing import (
    IO,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)


class Span:
    """One timed operation; zero-duration spans model point events."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "uid", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        uid: Optional[int] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.uid = uid
        self.attrs = attrs or {}

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "uid": self.uid,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.span_id}, {self.name!r}, parent={self.parent_id}, "
            f"[{self.start}, {self.end}])"
        )


class Tracer:
    """Records spans in memory; see module docstring for the contract.

    ``max_spans`` turns the in-memory record into a ring buffer: only the
    most recent spans are retained (what ``repro serve`` exposes over
    ``GET /trace``).  Ring eviction drops *retention*, not lifecycle —
    the :class:`Span` object outlives the ring, so ``end()`` on an
    already-evicted span still fires ``on_close`` and a
    :class:`SpanWriter` persisting the stream loses nothing.
    ``on_close`` fires once per span, at the moment it closes
    (``end``/``event``/``close_all``).

    A tracer is also a context manager: leaving the ``with`` block closes
    any span still open at the latest time the tracer has seen, so a
    scope that raises cannot leave dangling spans behind.
    """

    enabled = True

    def __init__(
        self,
        max_spans: Optional[int] = None,
        on_close: Optional[Callable[[Span], None]] = None,
    ) -> None:
        self.spans: Union[List[Span], Deque[Span]] = (
            [] if max_spans is None else deque(maxlen=max_spans)
        )
        self.on_close = on_close
        self._next_id = 1
        self._root_by_uid: Dict[int, Span] = {}
        self._latest = 0.0

    # -- span lifecycle ----------------------------------------------------
    def start(
        self,
        name: str,
        time: float,
        uid: Optional[int] = None,
        parent: Optional[Span] = None,
        root: bool = False,
        **attrs: object,
    ) -> Span:
        """Open a span.

        With no explicit ``parent``, a span carrying a ``uid`` attaches
        under the current root span for that uid (if one is open).
        ``root=True`` registers this span as that root.
        """
        if parent is None and uid is not None and not root:
            current = self._root_by_uid.get(uid)
            if current is not None and current.end is None:
                parent = current
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else None,
            name,
            time,
            uid=uid,
            attrs=dict(attrs) if attrs else None,
        )
        self._next_id += 1
        self.spans.append(span)
        if time > self._latest:
            self._latest = time
        if root and uid is not None:
            self._root_by_uid[uid] = span
        return span

    def end(self, span: Span, time: float, **attrs: object) -> None:
        span.end = max(time, span.start)
        if span.end > self._latest:
            self._latest = span.end
        if attrs:
            span.attrs.update(attrs)
        if span.uid is not None and self._root_by_uid.get(span.uid) is span:
            del self._root_by_uid[span.uid]
        if self.on_close is not None:
            self.on_close(span)

    def event(
        self,
        name: str,
        time: float,
        uid: Optional[int] = None,
        parent: Optional[Span] = None,
        **attrs: object,
    ) -> Span:
        """A zero-duration span (instantaneous point event)."""
        span = self.start(name, time, uid=uid, parent=parent, **attrs)
        span.end = time
        if self.on_close is not None:
            self.on_close(span)
        return span

    def close_all(self, time: Optional[float] = None) -> int:
        """Close any span still open (defensive; returns how many).

        With no explicit ``time``, spans close at the latest timestamp
        the tracer has seen — the right default for context-manager and
        shutdown paths that have no clock of their own.
        """
        when = self._latest if time is None else time
        closed = 0
        for span in self.spans:
            if span.end is None:
                span.end = max(when, span.start)
                closed += 1
                if self.on_close is not None:
                    self.on_close(span)
        self._root_by_uid.clear()
        return closed

    def recent(self, limit: int = 100, uid: Optional[int] = None) -> List[Span]:
        """The most recent ``limit`` spans in span-id order, optionally
        filtered to one packet uid (the ``GET /trace`` query)."""
        spans: Iterable[Span] = self.spans
        if uid is not None:
            spans = [s for s in spans if s.uid == uid]
        tail = list(spans)[-max(0, limit):]
        return sorted(tail, key=lambda s: s.span_id)

    def reset(self) -> None:
        self.spans.clear()
        self._root_by_uid.clear()
        self._next_id = 1
        self._latest = 0.0

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close_all()


class NullTracer(Tracer):
    """The default: every operation is a no-op returning no span."""

    enabled = False

    def __init__(self) -> None:  # pragma: no cover - trivial
        pass

    def start(self, name, time, uid=None, parent=None, root=False, **attrs):  # type: ignore[override]
        return None

    def end(self, span, time, **attrs):  # type: ignore[override]
        pass

    def event(self, name, time, uid=None, parent=None, **attrs):  # type: ignore[override]
        return None

    def close_all(self, time=None):  # type: ignore[override]
        return 0

    def recent(self, limit=100, uid=None):  # type: ignore[override]
        return []

    def reset(self):  # type: ignore[override]
        pass


NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------
def dump_spans(spans: Iterable[Span], fp: IO[str]) -> int:
    """Write spans as JSON lines in span-id order; returns the count."""
    count = 0
    for span in sorted(spans, key=lambda s: s.span_id):
        fp.write(json.dumps(span.to_dict(), sort_keys=True))
        fp.write("\n")
        count += 1
    return count


def load_spans(fp: IO[str]) -> List[Span]:
    """Read a span JSONL stream back into :class:`Span` objects."""
    spans: List[Span] = []
    for line in fp:
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        span = Span(
            span_id=int(data["span_id"]),
            parent_id=data.get("parent_id"),
            name=data["name"],
            start=float(data["start"]),
            uid=data.get("uid"),
            attrs=data.get("attrs") or {},
        )
        if data.get("end") is not None:
            span.end = float(data["end"])
        spans.append(span)
    return spans


def save_spans(spans: Iterable[Span], path: str) -> int:
    with open(path, "w", encoding="utf-8") as fp:
        return dump_spans(spans, fp)


class SpanWriter:
    """Crash-safe incremental JSONL span sink for long-running processes.

    ``save_spans`` writes everything at the end of a run — fine for
    replay, fatal for a daemon: a ``repro serve`` process killed mid-run
    would lose every span, and a buffered writer killed mid-``write``
    would leave a truncated final record.  A ``SpanWriter`` instead:

    * persists each span the moment it **closes** (via the tracer's
      ``on_close`` hook), writing the full line in one call and flushing
      before returning — a ``SIGKILL`` at any instant leaves a valid
      JSONL prefix of complete records, never half a line;
    * registers an ``atexit`` hook so a normal-but-unclean interpreter
      exit (an uncaught exception in ``repro serve``/``replay``) still
      closes open spans and the file;
    * is a context manager, and ``close()`` is idempotent.

    Lines appear in span *completion* order (children usually precede
    parents), not span-id order; sort after :func:`load_spans` before
    :func:`validate_spans`.
    """

    def __init__(self, path: str, tracer: Optional[Tracer] = None) -> None:
        self.path = path
        self.written = 0
        self._fp: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        self._tracer = tracer
        if tracer is not None:
            tracer.on_close = self.write
        atexit.register(self.close)

    def write(self, span: Span) -> None:
        """Persist one closed span: a single write of a full line, then
        an explicit flush so the record is durable before we return."""
        if self._fp is None:
            return
        self._fp.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        self._fp.flush()
        self.written += 1

    def close(self) -> None:
        if self._fp is None:
            return
        if self._tracer is not None:
            self._tracer.close_all()  # flushes stragglers through write()
            self._tracer.on_close = None
        fp, self._fp = self._fp, None
        fp.close()
        atexit.unregister(self.close)

    def __enter__(self) -> "SpanWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Well-formedness
# ---------------------------------------------------------------------------
def validate_spans(spans: Sequence[Span]) -> List[str]:
    """Check the span-tree contract; returns a list of violations (empty
    when well-formed).  Used by tests and by ``repro stats --trace-out``
    before writing the file."""
    problems: List[str] = []
    by_id: Dict[int, Span] = {}
    last_id = 0
    for span in spans:
        if span.span_id <= last_id:
            problems.append(
                f"span {span.span_id} out of order (after {last_id})"
            )
        last_id = span.span_id
        by_id[span.span_id] = span
        if span.end is None:
            problems.append(f"span {span.span_id} ({span.name}) never closed")
        elif span.end < span.start:
            problems.append(
                f"span {span.span_id} ({span.name}) ends before it starts"
            )
        if span.parent_id is not None:
            parent = by_id.get(span.parent_id)
            if parent is None:
                problems.append(
                    f"span {span.span_id} ({span.name}) parent "
                    f"{span.parent_id} missing or later"
                )
            elif parent.start > span.start:
                problems.append(
                    f"span {span.span_id} ({span.name}) starts before its "
                    f"parent {parent.span_id}"
                )
    return problems


def replay_with_trace(monitor, events, tracer: Tracer) -> None:
    """Feed recorded events into ``monitor`` with one root span per event.

    This is the offline analogue of the switch's live tracing: each trace
    event gets a root span (named after its type, keyed by the packet uid
    when it has one) under which the monitor's instance spans nest.  Used
    by ``repro stats`` and the span well-formedness tests.
    """
    for event in events:
        packet = getattr(event, "packet", None)
        uid = packet.uid if packet is not None else None
        root = tracer.start(
            type(event).__name__, event.time, uid=uid, root=True,
            switch=event.switch_id,
        )
        monitor.observe(event)
        tracer.end(root, monitor.now)
