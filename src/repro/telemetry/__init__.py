"""Telemetry: unified metrics registry, trace spans, and stat polling.

One observability layer for the whole reproduction (see
``docs/OBSERVABILITY.md`` for the metric catalog):

* :class:`MetricsRegistry` — counters / gauges / histograms with labels,
  timestamped on the virtual clock; :class:`NullRegistry` is the
  near-zero-overhead default that still backs the legacy stats views.
* :class:`Tracer` — nested spans following one packet uid from arrival
  through pipeline tables to monitor stage advances and violations,
  serialized as JSONL.
* :class:`StatsPoller` — periodic gauge sampling on a virtual-time
  interval (the Ryu ``bandwidth_monitor`` pattern, minus gevent).
* :func:`render_prometheus` / :func:`render_json` — snapshot exposition.
"""

from .exposition import render_json, render_prometheus
from .metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_HISTOGRAM,
    NullRegistry,
)
from .poller import StatsPoller
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanWriter,
    Tracer,
    dump_spans,
    load_spans,
    replay_with_trace,
    save_spans,
    validate_spans,
)

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_HISTOGRAM",
    "NullRegistry",
    "StatsPoller",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanWriter",
    "Tracer",
    "dump_spans",
    "load_spans",
    "replay_with_trace",
    "save_spans",
    "validate_spans",
    "render_json",
    "render_prometheus",
    "snapshot_digest",
]


def snapshot_digest(registry: MetricsRegistry, limit: int = 8) -> str:
    """One-line counter digest for benchmark output footers."""
    parts = []
    for family in registry.families():
        if family.kind != "counter":
            continue
        total = sum(cell.value for cell in family.cells.values())  # type: ignore[union-attr]
        if total:
            short = family.name.replace("repro_", "", 1)
            value = int(total) if total == int(total) else round(total, 6)
            parts.append(f"{short}={value}")
    shown = parts[:limit]
    suffix = f" (+{len(parts) - limit} more)" if len(parts) > limit else ""
    return f"telemetry: {', '.join(shown) or 'no samples'}{suffix}"
