"""The unified metrics registry — one source of truth for every counter.

Sec. 3.3's claims are quantitative (pipeline depth tracks live instances,
split-mode lag causes monitor errors, postcards trade memory for
bandwidth), and before this module each layer measured them with its own
ad-hoc bookkeeping (``MonitorStats``, ``SwitchStats``, loose ints on the
postcard collector).  The registry replaces all of that with three
instrument kinds in the Prometheus mold — :class:`Counter`,
:class:`Gauge`, :class:`Histogram` — addressable by ``(name, labels)``
and timestamped on the **virtual clock**, never the wall clock, so a
replayed trace produces byte-identical snapshots run after run.

Two registry flavours share one interface:

* :class:`MetricsRegistry` — the real thing: instruments are registered,
  labeled families fan out, histograms bucket, and
  :meth:`MetricsRegistry.snapshot` exports everything for the
  Prometheus-text / JSON renderers in :mod:`repro.telemetry.exposition`.

* :class:`NullRegistry` — the **default** everywhere instrumentation is
  wired in.  Its counters and gauges still count (they are single slotted
  attributes, exactly as cheap as the ad-hoc ints they replaced — this is
  what keeps the legacy ``monitor.stats`` / ``switch.stats`` views
  working with no registry configured), but histograms are shared no-ops,
  ``enabled`` is False so hot paths skip labeled fan-out and span
  emission, and ``snapshot()`` exports nothing.
  ``benchmarks/bench_monitor_throughput.py`` measures the enabled ↔
  disabled gap to keep this claim honest.

Zero dependencies by design: the repo's north star is a switch simulator
that runs "as fast as the hardware allows", and a telemetry layer you
cannot afford to leave on is one you cannot trust when you need it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

#: Default histogram buckets for virtual-time latencies (seconds).  The
#: interesting dynamic range is BASE_FORWARD_LATENCY (5e-6) through
#: slow-path storms (hundreds of microseconds per flow_mod at 250 ticks).
LATENCY_BUCKETS = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 1e-2, 1e-1,
)

#: Default buckets for small cardinalities (candidates scanned per event,
#: pending-op queue depth, tables traversed).
COUNT_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0, 1000.0)

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (float so latency sums fit too)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; tracks its high watermark for peak stats."""

    __slots__ = ("value", "high_watermark")

    def __init__(self) -> None:
        self.value = 0.0
        self.high_watermark = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_watermark:
            self.high_watermark = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max.

    Bucket semantics are Prometheus cumulative ``le`` bounds; an implicit
    ``+Inf`` bucket catches the overflow.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Tuple[float, ...] = COUNT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``(inf, count)``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


class _NullHistogram(Histogram):
    """Shared do-nothing histogram handed out by the null registry."""

    __slots__ = ()

    def observe(self, value: float) -> None:  # pragma: no cover - trivial
        pass


NULL_HISTOGRAM = _NullHistogram()


class _Family:
    """All cells of one metric name (one per distinct label set)."""

    __slots__ = ("name", "kind", "help", "unit", "cells")

    def __init__(self, name: str, kind: str, help: str, unit: str) -> None:
        self.name = name
        self.kind = kind  # "counter" | "gauge" | "histogram"
        self.help = help
        self.unit = unit
        self.cells: Dict[LabelPairs, object] = {}


class MetricsRegistry:
    """Counters, gauges, and histograms with labels, virtual-time stamped.

    Instruments are get-or-create by ``(name, labels)``; asking for an
    existing name with a different instrument kind raises ``ValueError``
    (one name, one meaning).  ``time_fn`` supplies the snapshot timestamp
    — wire it to the simulation clock (``scheduler.clock.now`` or
    ``monitor.now``) so exports are reproducible.
    """

    enabled = True

    def __init__(self, time_fn: Optional[Callable[[], float]] = None) -> None:
        self._families: Dict[str, _Family] = {}
        self.time_fn = time_fn

    # -- instrument access -------------------------------------------------
    def _instrument(
        self,
        kind: str,
        name: str,
        help: str,
        unit: str,
        labels: Optional[Mapping[str, str]],
        factory: Callable[[], object],
    ) -> object:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help, unit)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {kind}"
            )
        else:
            if help and not family.help:
                family.help = help
            if unit and not family.unit:
                family.unit = unit
        key = _label_key(labels)
        cell = family.cells.get(key)
        if cell is None:
            cell = factory()
            family.cells[key] = cell
        return cell

    def counter(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        return self._instrument("counter", name, help, unit, labels, Counter)  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        return self._instrument("gauge", name, help, unit, labels, Gauge)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Tuple[float, ...] = COUNT_BUCKETS,
    ) -> Histogram:
        return self._instrument(  # type: ignore[return-value]
            "histogram", name, help, unit, labels, lambda: Histogram(buckets)
        )

    # -- export ------------------------------------------------------------
    def now(self) -> Optional[float]:
        return self.time_fn() if self.time_fn is not None else None

    def families(self) -> Iterator[_Family]:
        for name in sorted(self._families):
            yield self._families[name]

    def snapshot(self) -> dict:
        """Everything the registry holds, as plain JSON-serializable data."""
        metrics = []
        for family in self.families():
            samples = []
            for key in sorted(family.cells):
                cell = family.cells[key]
                sample: Dict[str, object] = {"labels": dict(key)}
                if family.kind == "counter":
                    sample["value"] = _jsonable(cell.value)  # type: ignore[union-attr]
                elif family.kind == "gauge":
                    sample["value"] = _jsonable(cell.value)  # type: ignore[union-attr]
                    sample["peak"] = _jsonable(cell.high_watermark)  # type: ignore[union-attr]
                else:
                    hist: Histogram = cell  # type: ignore[assignment]
                    sample.update(
                        count=hist.count,
                        sum=_jsonable(hist.sum),
                        min=_jsonable(hist.min),
                        max=_jsonable(hist.max),
                        buckets=[
                            [_jsonable(le), n] for le, n in hist.cumulative()
                        ],
                    )
                samples.append(sample)
            metrics.append({
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "unit": family.unit,
                "samples": samples,
            })
        return {"time": _jsonable(self.now()), "metrics": metrics}


class NullRegistry(MetricsRegistry):
    """The default registry: counts, but registers and exports nothing.

    Counters and gauges returned here are real (the legacy stats views
    read them, and ``x.inc()`` costs what ``stats.x += 1`` used to), but
    they live outside any family — ``snapshot()`` is empty, histograms
    are a shared no-op, and ``enabled`` is False so call sites skip
    per-label fan-out and span emission entirely.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._loose: Dict[Tuple[str, str, LabelPairs], object] = {}

    def _instrument(self, kind, name, help, unit, labels, factory):  # type: ignore[override]
        key = (kind, name, _label_key(labels))
        cell = self._loose.get(key)
        if cell is None:
            cell = factory()
            self._loose[key] = cell
        return cell

    def histogram(self, name, help="", unit="", labels=None, buckets=COUNT_BUCKETS):  # type: ignore[override]
        return NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {"time": None, "metrics": []}


def _jsonable(value):
    """Floats that carry integral values export as ints (stable goldens)."""
    if value is None:
        return None
    if isinstance(value, float):
        if value == float("inf"):
            return "+Inf"
        if value == int(value):
            return int(value)
    return value
