"""Snapshot renderers: Prometheus text exposition and JSON.

Both renderers consume the plain-data snapshot produced by
:meth:`repro.telemetry.metrics.MetricsRegistry.snapshot`, so they can run
long after the simulation objects are gone (e.g. on a snapshot reloaded
from the file ``repro replay --metrics`` wrote).

The Prometheus format follows the text exposition conventions: ``# HELP``
/ ``# TYPE`` headers per family, ``{label="value"}`` sample suffixes with
label values escaped per the spec (backslash, double-quote, newline),
histogram ``_bucket``/``_sum``/``_count`` series with cumulative ``le``
bounds, and gauges additionally exported with a ``_peak`` series carrying
the high watermark (virtual-time peaks are how the repro reports
Sec. 3.3's "depth grows with live instances" numbers).  ``_peak`` is a
distinct metric name, so it gets its own ``# TYPE`` header and its
samples are grouped under it rather than interleaved with the base
gauge.  Output ordering is fully deterministic — families by name,
samples by sorted labels — so golden tests can pin the exact bytes.
"""

from __future__ import annotations

import json
from typing import Mapping

__all__ = ["render_prometheus", "render_json"]


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text-exposition spec: backslash,
    double-quote, and line feed become ``\\\\``, ``\\"``, ``\\n``."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP text escaping: only backslash and line feed are special."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_value(value: object) -> str:
    if value is None:
        return "NaN"
    if value == "+Inf":
        return "+Inf"
    if isinstance(value, bool):  # pragma: no cover - no boolean metrics
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _fmt_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: dict) -> str:
    """The snapshot in Prometheus text exposition format."""
    lines = []
    stamp = snapshot.get("time")
    if stamp is not None:
        lines.append(f"# Snapshot at virtual time {_fmt_value(stamp)}s")
    for family in snapshot.get("metrics", ()):
        name = family["name"]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        kind = family["kind"]
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if kind == "counter":
                lines.append(
                    f"{name}{_fmt_labels(labels)} {_fmt_value(sample['value'])}"
                )
            elif kind == "gauge":
                lines.append(
                    f"{name}{_fmt_labels(labels)} {_fmt_value(sample['value'])}"
                )
            else:  # histogram
                for le, count in sample["buckets"]:
                    bound = 'le="+Inf"' if le == "+Inf" else f'le="{_fmt_value(le)}"'
                    lines.append(
                        f"{name}_bucket{_fmt_labels(labels, bound)} {count}"
                    )
                lines.append(
                    f"{name}_sum{_fmt_labels(labels)} {_fmt_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_fmt_labels(labels)} {sample['count']}"
                )
        if kind == "gauge":
            # The high watermark is its own metric name, so it needs its
            # own # TYPE header (the spec groups all samples of a name
            # under one header; interleaving them with the base gauge
            # would make name_peak an untyped orphan).
            lines.append(f"# TYPE {name}_peak gauge")
            for sample in family["samples"]:
                labels = sample.get("labels", {})
                lines.append(
                    f"{name}_peak{_fmt_labels(labels)} "
                    f"{_fmt_value(sample['peak'])}"
                )
    return "\n".join(lines) + "\n"


def render_json(snapshot: dict, indent: int = 2) -> str:
    """The snapshot as pretty-printed, key-sorted JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)
