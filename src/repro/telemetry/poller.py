"""Periodic gauge sampling on virtual time — the Ryu polling idiom.

Ryu's ``bandwidth_monitor`` app runs a green thread that wakes every N
seconds and polls each datapath for its stats.  The simulator equivalent
needs no threads: a :class:`StatsPoller` either (a) rides the discrete-
event :class:`~repro.netsim.scheduler.EventScheduler` with pre-scheduled
ticks up to a horizon, or (b) is driven directly from a replay loop via
:meth:`StatsPoller.advance_to` — the same virtual-time-driven style as
``Monitor.advance_to``.

Each tick invokes the configured ``sources`` (callables that refresh
gauges whose producers do not update them continuously — e.g. collector
memory) and then samples **every gauge** in the registry, appending one
``{"time": t, "values": {rendered_name: value}}`` row.  The time series
is what turns point-in-time gauges (live instances, pending split-mode
ops, stored postcards) into the growth curves Sec. 3.3 talks about.

``repro serve`` adds a third driving mode: **wall clock**.  Construct
the poller with a ``clock`` (any zero-argument monotonic-seconds
callable; the daemon passes its :class:`~repro.netsim.clock.WallClock`)
and call :meth:`StatsPoller.poll` from a periodic task.  Ticks still
fire at their nominal deadlines — a late ``poll()`` fires every missed
tick, stamped with the deadline it *should* have fired at, and records
the lateness in the row's ``"jitter"`` field — so wall-clock series
stay aligned to the interval grid exactly like virtual-clock ones
(replay parity: rows produced by ``advance_to`` carry no jitter field
and are byte-identical to pre-wall-clock output).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .metrics import MetricsRegistry, _jsonable


def _sample_name(family_name: str, labels) -> str:
    if not labels:
        return family_name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{family_name}{{{inner}}}"


class StatsPoller:
    """Samples registry gauges every ``interval`` virtual seconds."""

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float,
        sources: Sequence[Callable[[], None]] = (),
        start_time: float = 0.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"poll interval must be positive, got {interval!r}")
        self.registry = registry
        self.interval = interval
        self.sources = list(sources)
        self.clock = clock
        self.samples: List[dict] = []
        self._next_tick = start_time + interval

    # -- virtual-time driven (replay loops) --------------------------------
    def advance_to(self, when: float) -> int:
        """Fire every tick with deadline <= ``when``; returns ticks fired."""
        fired = 0
        while self._next_tick <= when:
            self.sample(self._next_tick)
            self._next_tick += self.interval
            fired += 1
        return fired

    # -- wall-clock driven (repro serve) -----------------------------------
    def poll(self) -> int:
        """Fire every tick due at ``clock()`` now; returns ticks fired.

        Each fired row is stamped with its nominal deadline (keeping the
        series on the interval grid regardless of scheduling delay) and
        carries ``"jitter"``: how many real seconds after the deadline
        the sample was actually taken.  Calling ``poll()`` on schedule
        bounds jitter below one interval; a stalled loop catches up with
        one row per missed tick, jitter revealing the stall.
        """
        if self.clock is None:
            raise ValueError("poll() needs a clock; pass clock= or use "
                             "advance_to()/attach()")
        now = self.clock()
        fired = 0
        while self._next_tick <= now:
            deadline = self._next_tick
            row = self.sample(deadline)
            row["jitter"] = _jsonable(max(0.0, now - deadline))
            self._next_tick = deadline + self.interval
            fired += 1
        return fired

    def seconds_until_due(self) -> float:
        """Wall seconds until the next tick (sleep hint; >= 0)."""
        if self.clock is None:
            raise ValueError("seconds_until_due() needs a clock")
        return max(0.0, self._next_tick - self.clock())

    # -- scheduler driven (live simulations) -------------------------------
    def attach(self, scheduler, until: float) -> int:
        """Pre-schedule ticks on ``scheduler`` up to the ``until`` horizon.

        Pre-scheduling (rather than self-rescheduling) keeps ``run()``
        terminating: a tick that re-arms itself forever would never let
        the event queue drain.
        """
        scheduled = 0
        t = self._next_tick
        while t <= until:
            scheduler.call_at(
                t, lambda t=t: self._scheduled_sample(t), label="stats-poll"
            )
            t += self.interval
            scheduled += 1
        self._next_tick = t
        return scheduled

    def _scheduled_sample(self, t: float) -> None:
        self.sample(t)

    # -- the tick ----------------------------------------------------------
    def sample(self, t: float) -> dict:
        """Refresh sources, then record one row of every gauge's value."""
        for source in self.sources:
            source()
        values: Dict[str, object] = {}
        for family in self.registry.families():
            if family.kind != "gauge":
                continue
            for labels in sorted(family.cells):
                gauge = family.cells[labels]
                values[_sample_name(family.name, labels)] = _jsonable(
                    gauge.value  # type: ignore[union-attr]
                )
        row = {"time": _jsonable(t), "values": values}
        self.samples.append(row)
        return row
