"""Network address value types.

These are small immutable wrappers over integers with canonical string
forms.  The monitor binds address values out of packets and compares them
across observation stages (the paper's Feature 2/8), so hashability and
total ordering matter more than wire-format tricks.
"""

from __future__ import annotations

import re
from functools import total_ordering
from typing import Union

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:-]){5}[0-9a-fA-F]{2}$")
_IPV4_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


class AddressError(ValueError):
    """Raised for malformed address literals or out-of-range values."""


@total_ordering
class MACAddress:
    """A 48-bit IEEE 802 MAC address.

    Accepts ``"aa:bb:cc:dd:ee:ff"`` (or ``-`` separated) strings, raw
    integers, or 6-byte ``bytes``.

    >>> MACAddress("00:00:00:00:00:01")
    MACAddress('00:00:00:00:00:01')
    >>> int(MACAddress(1))
    1
    """

    __slots__ = ("_value",)

    BROADCAST: "MACAddress"
    ZERO: "MACAddress"

    def __init__(self, value: Union[str, int, bytes, "MACAddress"]) -> None:
        if isinstance(value, MACAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise AddressError(f"MAC integer out of range: {value!r}")
            self._value = value
        elif isinstance(value, bytes):
            if len(value) != 6:
                raise AddressError(f"MAC bytes must be length 6, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise AddressError(f"malformed MAC address {value!r}")
            self._value = int(value.replace("-", ":").replace(":", ""), 16)
        else:
            raise AddressError(f"cannot build MACAddress from {type(value).__name__}")

    # -- conversions ---------------------------------------------------
    def __int__(self) -> int:
        return self._value

    def packed(self) -> bytes:
        """6-byte big-endian wire representation."""
        return self._value.to_bytes(6, "big")

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MACAddress('{self}')"

    # -- predicates ----------------------------------------------------
    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        """True for group addresses (I/G bit set), including broadcast."""
        return bool((self._value >> 40) & 0x01)

    @property
    def is_unicast(self) -> bool:
        return not self.is_multicast

    # -- comparisons / hashing ------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, MACAddress):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "MACAddress") -> bool:
        if isinstance(other, MACAddress):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("mac", self._value))


MACAddress.BROADCAST = MACAddress((1 << 48) - 1)
MACAddress.ZERO = MACAddress(0)


@total_ordering
class IPv4Address:
    """A 32-bit IPv4 address.

    >>> IPv4Address("10.0.0.1")
    IPv4Address('10.0.0.1')
    >>> IPv4Address(0x0A000001) == IPv4Address("10.0.0.1")
    True
    """

    __slots__ = ("_value",)

    ZERO: "IPv4Address"
    BROADCAST: "IPv4Address"

    def __init__(self, value: Union[str, int, bytes, "IPv4Address"]) -> None:
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise AddressError(f"IPv4 integer out of range: {value!r}")
            self._value = value
        elif isinstance(value, bytes):
            if len(value) != 4:
                raise AddressError(f"IPv4 bytes must be length 4, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            match = _IPV4_RE.match(value)
            if not match:
                raise AddressError(f"malformed IPv4 address {value!r}")
            octets = [int(g) for g in match.groups()]
            if any(o > 255 for o in octets):
                raise AddressError(f"IPv4 octet out of range in {value!r}")
            self._value = (
                (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
            )
        else:
            raise AddressError(f"cannot build IPv4Address from {type(value).__name__}")

    # -- conversions ---------------------------------------------------
    def __int__(self) -> int:
        return self._value

    def packed(self) -> bytes:
        """4-byte big-endian wire representation."""
        return self._value.to_bytes(4, "big")

    def __str__(self) -> str:
        v = self._value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    # -- predicates ----------------------------------------------------
    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 32) - 1

    @property
    def is_multicast(self) -> bool:
        return 224 <= (self._value >> 24) <= 239

    @property
    def is_private(self) -> bool:
        """RFC 1918 private ranges — apps use this to classify 'internal'."""
        top = self._value >> 24
        if top == 10:
            return True
        if top == 172 and 16 <= ((self._value >> 16) & 0xFF) <= 31:
            return True
        if top == 192 and ((self._value >> 16) & 0xFF) == 168:
            return True
        return False

    def in_subnet(self, network: "IPv4Address", prefix_len: int) -> bool:
        """True if this address falls inside ``network/prefix_len``."""
        if not 0 <= prefix_len <= 32:
            raise AddressError(f"bad prefix length {prefix_len!r}")
        if prefix_len == 0:
            return True
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        return (self._value & mask) == (int(network) & mask)

    # -- comparisons / hashing ------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        if isinstance(other, IPv4Address):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ipv4", self._value))


IPv4Address.ZERO = IPv4Address(0)
IPv4Address.BROADCAST = IPv4Address((1 << 32) - 1)
