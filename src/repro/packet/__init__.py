"""Packet model: addresses, L2–L7 headers, wire codecs, builders.

Public surface of the packet subpackage.  The monitor's field extraction
(paper Feature 1) reads the flat dotted-name namespace these types expose
via ``fields()``; the ``uid`` on :class:`Packet` carries packet identity
(Feature 5) across rewrites and flooding.
"""

from .addresses import AddressError, IPv4Address, MACAddress
from .builder import (
    arp_reply,
    arp_request,
    dhcp_packet,
    ethernet,
    ftp_control_packet,
    icmp_echo,
    tcp_fin,
    tcp_packet,
    tcp_rst,
    tcp_syn,
    udp_packet,
)
from .dhcp import DHCP_CLIENT_PORT, DHCP_SERVER_PORT, Dhcp, DhcpMessageType, DhcpOp
from .ftp import FTP_CONTROL_PORT, FtpControl, encode_port_command
from .headers import (
    ICMP,
    TCP,
    UDP,
    Arp,
    ArpOp,
    Ethernet,
    EtherType,
    HeaderError,
    IPProto,
    IPv4,
    TCPFlags,
    Vlan,
)
from .packet import Packet, fresh_uid
from .parser import ParseError, encode, parse, reparse

__all__ = [
    "AddressError",
    "IPv4Address",
    "MACAddress",
    "arp_reply",
    "arp_request",
    "dhcp_packet",
    "ethernet",
    "ftp_control_packet",
    "icmp_echo",
    "tcp_fin",
    "tcp_packet",
    "tcp_rst",
    "tcp_syn",
    "udp_packet",
    "DHCP_CLIENT_PORT",
    "DHCP_SERVER_PORT",
    "Dhcp",
    "DhcpMessageType",
    "DhcpOp",
    "FTP_CONTROL_PORT",
    "FtpControl",
    "encode_port_command",
    "ICMP",
    "TCP",
    "UDP",
    "Arp",
    "ArpOp",
    "Ethernet",
    "EtherType",
    "HeaderError",
    "IPProto",
    "IPv4",
    "TCPFlags",
    "Vlan",
    "Packet",
    "fresh_uid",
    "ParseError",
    "encode",
    "parse",
    "reparse",
]
