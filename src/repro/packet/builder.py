"""Convenience constructors for well-formed packets.

The apps, tests, and workload generators all build packets through these
helpers so the header plumbing (ethertypes, protocol numbers, well-known
ports) lives in exactly one place.
"""

from __future__ import annotations

from typing import Optional, Union

from .addresses import IPv4Address, MACAddress
from .dhcp import DHCP_CLIENT_PORT, DHCP_SERVER_PORT, Dhcp, DhcpMessageType, DhcpOp
from .ftp import FTP_CONTROL_PORT, FtpControl
from .headers import ICMP, TCP, UDP, Arp, ArpOp, Ethernet, EtherType, IPProto, IPv4, TCPFlags
from .packet import Packet

MacLike = Union[str, int, MACAddress]
IpLike = Union[str, int, IPv4Address]


def _mac(value: MacLike) -> MACAddress:
    return value if isinstance(value, MACAddress) else MACAddress(value)


def _ip(value: IpLike) -> IPv4Address:
    return value if isinstance(value, IPv4Address) else IPv4Address(value)


def ethernet(src: MacLike, dst: MacLike, ethertype: int = EtherType.IPV4) -> Packet:
    """A bare L2 frame."""
    return Packet.of(Ethernet(src=_mac(src), dst=_mac(dst), ethertype=ethertype))


def arp_request(
    sender_mac: MacLike, sender_ip: IpLike, target_ip: IpLike
) -> Packet:
    """A broadcast ARP who-has request."""
    return Packet.of(
        Ethernet(src=_mac(sender_mac), dst=MACAddress.BROADCAST, ethertype=EtherType.ARP),
        Arp(
            op=ArpOp.REQUEST,
            sender_mac=_mac(sender_mac),
            sender_ip=_ip(sender_ip),
            target_mac=MACAddress.ZERO,
            target_ip=_ip(target_ip),
        ),
    )


def arp_reply(
    sender_mac: MacLike, sender_ip: IpLike, target_mac: MacLike, target_ip: IpLike
) -> Packet:
    """A unicast ARP is-at reply."""
    return Packet.of(
        Ethernet(src=_mac(sender_mac), dst=_mac(target_mac), ethertype=EtherType.ARP),
        Arp(
            op=ArpOp.REPLY,
            sender_mac=_mac(sender_mac),
            sender_ip=_ip(sender_ip),
            target_mac=_mac(target_mac),
            target_ip=_ip(target_ip),
        ),
    )


def tcp_packet(
    src_mac: MacLike,
    dst_mac: MacLike,
    src_ip: IpLike,
    dst_ip: IpLike,
    src_port: int,
    dst_port: int,
    flags: int = TCPFlags.ACK,
    payload: bytes = b"",
    ttl: int = 64,
    seq: int = 0,
) -> Packet:
    """A TCP segment over IPv4 over Ethernet."""
    return Packet.of(
        Ethernet(src=_mac(src_mac), dst=_mac(dst_mac), ethertype=EtherType.IPV4),
        IPv4(src=_ip(src_ip), dst=_ip(dst_ip), proto=IPProto.TCP, ttl=ttl,
             payload_len=20 + len(payload)),
        TCP(src_port=src_port, dst_port=dst_port, flags=flags, seq=seq),
        payload=payload,
    )


def tcp_syn(src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, **kw) -> Packet:
    return tcp_packet(src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port,
                      flags=TCPFlags.SYN, **kw)


def tcp_fin(src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, **kw) -> Packet:
    return tcp_packet(src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port,
                      flags=TCPFlags.FIN | TCPFlags.ACK, **kw)


def tcp_rst(src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, **kw) -> Packet:
    return tcp_packet(src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port,
                      flags=TCPFlags.RST, **kw)


def udp_packet(
    src_mac: MacLike,
    dst_mac: MacLike,
    src_ip: IpLike,
    dst_ip: IpLike,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    ttl: int = 64,
) -> Packet:
    """A UDP datagram over IPv4 over Ethernet."""
    return Packet.of(
        Ethernet(src=_mac(src_mac), dst=_mac(dst_mac), ethertype=EtherType.IPV4),
        IPv4(src=_ip(src_ip), dst=_ip(dst_ip), proto=IPProto.UDP, ttl=ttl,
             payload_len=8 + len(payload)),
        UDP(src_port=src_port, dst_port=dst_port, payload_len=len(payload)),
        payload=payload,
    )


def icmp_echo(
    src_mac: MacLike,
    dst_mac: MacLike,
    src_ip: IpLike,
    dst_ip: IpLike,
    reply: bool = False,
    ident: int = 0,
    seq: int = 0,
) -> Packet:
    """An ICMP echo request (or reply) over IPv4."""
    icmp_type = ICMP.TYPE_ECHO_REPLY if reply else ICMP.TYPE_ECHO_REQUEST
    return Packet.of(
        Ethernet(src=_mac(src_mac), dst=_mac(dst_mac), ethertype=EtherType.IPV4),
        IPv4(src=_ip(src_ip), dst=_ip(dst_ip), proto=IPProto.ICMP, payload_len=8),
        ICMP(icmp_type=icmp_type, ident=ident, seq=seq),
    )


def dhcp_packet(
    client_mac: MacLike,
    msg_type: int,
    *,
    src_mac: Optional[MacLike] = None,
    dst_mac: MacLike = MACAddress.BROADCAST,
    src_ip: IpLike = IPv4Address.ZERO,
    dst_ip: IpLike = IPv4Address.BROADCAST,
    xid: int = 1,
    yiaddr: IpLike = IPv4Address.ZERO,
    requested_ip: Optional[IpLike] = None,
    lease_time: Optional[int] = None,
    server_id: Optional[IpLike] = None,
) -> Packet:
    """A DHCP message over UDP/IPv4/Ethernet.

    Client-originated message types go client-port -> server-port; server
    replies the reverse.
    """
    from_client = msg_type in (
        DhcpMessageType.DISCOVER,
        DhcpMessageType.REQUEST,
        DhcpMessageType.DECLINE,
        DhcpMessageType.RELEASE,
        DhcpMessageType.INFORM,
    )
    sport = DHCP_CLIENT_PORT if from_client else DHCP_SERVER_PORT
    dport = DHCP_SERVER_PORT if from_client else DHCP_CLIENT_PORT
    op = DhcpOp.BOOTREQUEST if from_client else DhcpOp.BOOTREPLY
    dhcp = Dhcp(
        op=op,
        msg_type=msg_type,
        xid=xid,
        client_mac=_mac(client_mac),
        yiaddr=_ip(yiaddr),
        requested_ip=None if requested_ip is None else _ip(requested_ip),
        lease_time=lease_time,
        server_id=None if server_id is None else _ip(server_id),
    )
    return Packet.of(
        Ethernet(
            src=_mac(src_mac if src_mac is not None else client_mac),
            dst=_mac(dst_mac),
            ethertype=EtherType.IPV4,
        ),
        IPv4(src=_ip(src_ip), dst=_ip(dst_ip), proto=IPProto.UDP),
        UDP(src_port=sport, dst_port=dport),
        dhcp,
    )


def ftp_control_packet(
    src_mac: MacLike,
    dst_mac: MacLike,
    src_ip: IpLike,
    dst_ip: IpLike,
    src_port: int,
    line: str,
    to_server: bool = True,
) -> Packet:
    """One FTP control line over TCP port 21."""
    sport = src_port if to_server else FTP_CONTROL_PORT
    dport = FTP_CONTROL_PORT if to_server else src_port
    return Packet.of(
        Ethernet(src=_mac(src_mac), dst=_mac(dst_mac), ethertype=EtherType.IPV4),
        IPv4(src=_ip(src_ip), dst=_ip(dst_ip), proto=IPProto.TCP),
        TCP(src_port=sport, dst_port=dport, flags=TCPFlags.ACK | TCPFlags.PSH),
        FtpControl.from_line(line),
    )
