"""FTP control-channel (L7) parsing.

The FTP property of Table 1 (taken by the paper from FAST) is "Data L4 port
matches L4 port given in control stream": the monitor must parse PORT
commands (and PASV replies) out of the TCP control connection, bind the
advertised data port, and later match the data connection's actual port
against it — a negative match at L7 parse depth.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple

from .addresses import IPv4Address
from .headers import HeaderError

FTP_CONTROL_PORT = 21

_PORT_RE = re.compile(
    r"^PORT\s+(\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3})\s*$",
    re.IGNORECASE,
)
_PASV_REPLY_RE = re.compile(
    r"^227\s+.*\((\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3})\)",
)


@dataclass(frozen=True)
class FtpControl:
    """One line of an FTP control conversation.

    ``data_ip``/``data_port`` are populated when the line advertises a data
    endpoint (an active-mode ``PORT`` command or a passive-mode ``227``
    reply); otherwise they are ``None`` and the line is opaque text.
    """

    LAYER: ClassVar[int] = 7
    NAME: ClassVar[str] = "ftp"

    line: str
    data_ip: Optional[IPv4Address] = None
    data_port: Optional[int] = None

    @classmethod
    def from_line(cls, line: str) -> "FtpControl":
        """Parse a control line, extracting an advertised data endpoint."""
        stripped = line.strip()
        for pattern in (_PORT_RE, _PASV_REPLY_RE):
            match = pattern.match(stripped)
            if match:
                h1, h2, h3, h4, p1, p2 = (int(g) for g in match.groups())
                if any(o > 255 for o in (h1, h2, h3, h4, p1, p2)):
                    raise HeaderError(f"FTP endpoint octet out of range in {line!r}")
                ip = IPv4Address(f"{h1}.{h2}.{h3}.{h4}")
                return cls(line=stripped, data_ip=ip, data_port=(p1 << 8) | p2)
        return cls(line=stripped)

    @property
    def advertises_endpoint(self) -> bool:
        return self.data_port is not None

    @property
    def is_port_command(self) -> bool:
        return self.line.upper().startswith("PORT")

    @property
    def is_pasv_reply(self) -> bool:
        return self.line.startswith("227")

    # -- wire format -----------------------------------------------------
    def encode(self) -> bytes:
        return (self.line + "\r\n").encode("ascii")

    @classmethod
    def decode(cls, data: bytes) -> Tuple["FtpControl", bytes]:
        try:
            text = data.decode("ascii")
        except UnicodeDecodeError as exc:
            raise HeaderError(f"FTP control line is not ASCII: {exc}") from exc
        line, sep, rest = text.partition("\r\n")
        if not sep:
            raise HeaderError("FTP control line missing CRLF terminator")
        return cls.from_line(line), rest.encode("ascii")

    def fields(self) -> Dict[str, object]:
        out: Dict[str, object] = {"ftp.line": self.line}
        if self.data_ip is not None:
            out["ftp.data_ip"] = self.data_ip
        if self.data_port is not None:
            out["ftp.data_port"] = self.data_port
        return out


def encode_port_command(ip: IPv4Address, port: int) -> str:
    """Render an active-mode PORT command advertising ``ip:port``."""
    if not 0 <= port < 65536:
        raise HeaderError(f"port out of range: {port!r}")
    octets = str(ip).split(".")
    return f"PORT {octets[0]},{octets[1]},{octets[2]},{octets[3]},{port >> 8},{port & 0xFF}"
