"""DHCP (L7) message model.

The DHCP properties in Table 1 of the paper ("Reply to lease request within
T seconds", "Leased addresses never re-used until expiration or release",
"No lease overlap between DHCP servers", and the DHCP+ARP wandering-match
pair) need access to application-layer fields: message type, client hardware
address, offered/requested address, lease time, and server identifier.

The wire format is a compact subset of RFC 2131: the fixed BOOTP-style
prefix plus a TLV options region carrying the fields the properties read.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import ClassVar, Dict, Optional, Tuple

from .addresses import IPv4Address, MACAddress
from .headers import HeaderError


class DhcpMessageType(IntEnum):
    DISCOVER = 1
    OFFER = 2
    REQUEST = 3
    DECLINE = 4
    ACK = 5
    NAK = 6
    RELEASE = 7
    INFORM = 8


class DhcpOp(IntEnum):
    BOOTREQUEST = 1
    BOOTREPLY = 2


_OPT_MSG_TYPE = 53
_OPT_REQUESTED_IP = 50
_OPT_LEASE_TIME = 51
_OPT_SERVER_ID = 54
_OPT_END = 255

DHCP_SERVER_PORT = 67
DHCP_CLIENT_PORT = 68


@dataclass(frozen=True)
class Dhcp:
    """A DHCP message.

    ``yiaddr`` ("your address") carries the offered/acknowledged lease;
    ``requested_ip`` is the client's ask; ``server_id`` identifies which
    DHCP server spoke — the field the "no lease overlap between servers"
    property matches negatively on.
    """

    LAYER: ClassVar[int] = 7
    NAME: ClassVar[str] = "dhcp"

    op: int
    msg_type: int
    xid: int
    client_mac: MACAddress
    yiaddr: IPv4Address = IPv4Address.ZERO
    requested_ip: Optional[IPv4Address] = None
    lease_time: Optional[int] = None
    server_id: Optional[IPv4Address] = None

    def __post_init__(self) -> None:
        if self.op not in (DhcpOp.BOOTREQUEST, DhcpOp.BOOTREPLY):
            raise HeaderError(f"bad DHCP op {self.op!r}")
        if not 0 <= self.xid < (1 << 32):
            raise HeaderError(f"DHCP xid out of range: {self.xid!r}")

    # -- classification ------------------------------------------------
    @property
    def is_request(self) -> bool:
        return self.msg_type == DhcpMessageType.REQUEST

    @property
    def is_discover(self) -> bool:
        return self.msg_type == DhcpMessageType.DISCOVER

    @property
    def is_offer(self) -> bool:
        return self.msg_type == DhcpMessageType.OFFER

    @property
    def is_ack(self) -> bool:
        return self.msg_type == DhcpMessageType.ACK

    @property
    def is_release(self) -> bool:
        return self.msg_type == DhcpMessageType.RELEASE

    # -- wire format -----------------------------------------------------
    def encode(self) -> bytes:
        head = struct.pack("!BI", self.op, self.xid)
        head += self.client_mac.packed()
        head += self.yiaddr.packed()
        opts = struct.pack("!BBB", _OPT_MSG_TYPE, 1, self.msg_type)
        if self.requested_ip is not None:
            opts += struct.pack("!BB", _OPT_REQUESTED_IP, 4) + self.requested_ip.packed()
        if self.lease_time is not None:
            opts += struct.pack("!BBI", _OPT_LEASE_TIME, 4, self.lease_time)
        if self.server_id is not None:
            opts += struct.pack("!BB", _OPT_SERVER_ID, 4) + self.server_id.packed()
        opts += struct.pack("!B", _OPT_END)
        return head + opts

    @classmethod
    def decode(cls, data: bytes) -> Tuple["Dhcp", bytes]:
        if len(data) < 15:
            raise HeaderError(f"DHCP truncated: {len(data)} bytes")
        op, xid = struct.unpack("!BI", data[:5])
        client_mac = MACAddress(data[5:11])
        yiaddr = IPv4Address(data[11:15])
        msg_type: Optional[int] = None
        requested_ip: Optional[IPv4Address] = None
        lease_time: Optional[int] = None
        server_id: Optional[IPv4Address] = None
        i = 15
        while i < len(data):
            tag = data[i]
            if tag == _OPT_END:
                i += 1
                break
            if i + 2 > len(data):
                raise HeaderError("DHCP option header truncated")
            length = data[i + 1]
            value = data[i + 2 : i + 2 + length]
            if len(value) != length:
                raise HeaderError("DHCP option value truncated")
            if tag == _OPT_MSG_TYPE and length == 1:
                msg_type = value[0]
            elif tag == _OPT_REQUESTED_IP and length == 4:
                requested_ip = IPv4Address(value)
            elif tag == _OPT_LEASE_TIME and length == 4:
                (lease_time,) = struct.unpack("!I", value)
            elif tag == _OPT_SERVER_ID and length == 4:
                server_id = IPv4Address(value)
            i += 2 + length
        if msg_type is None:
            raise HeaderError("DHCP message missing message-type option")
        return (
            cls(
                op=op,
                msg_type=msg_type,
                xid=xid,
                client_mac=client_mac,
                yiaddr=yiaddr,
                requested_ip=requested_ip,
                lease_time=lease_time,
                server_id=server_id,
            ),
            data[i:],
        )

    def fields(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "dhcp.op": self.op,
            "dhcp.msg_type": self.msg_type,
            "dhcp.xid": self.xid,
            "dhcp.client_mac": self.client_mac,
            "dhcp.yiaddr": self.yiaddr,
        }
        if self.requested_ip is not None:
            out["dhcp.requested_ip"] = self.requested_ip
        if self.lease_time is not None:
            out["dhcp.lease_time"] = self.lease_time
        if self.server_id is not None:
            out["dhcp.server_id"] = self.server_id
        return out
