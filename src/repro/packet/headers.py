"""Protocol header types, L2 through L4.

Each header is a frozen dataclass with a ``LAYER`` class attribute (the OSI
layer it belongs to), field accessors used by the monitor's field-extraction
machinery (the paper's Feature 1), and ``encode``/``decode`` for a simple
wire format.  The wire format follows the real protocols closely enough that
parse-depth limits are meaningful, but checksums are carried verbatim rather
than validated — the reproduction studies monitoring semantics, not
checksumming.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from enum import IntEnum
from typing import ClassVar, Dict, Optional, Tuple

from .addresses import IPv4Address, MACAddress


class HeaderError(ValueError):
    """Raised on malformed wire bytes or invalid header field values."""


class EtherType(IntEnum):
    """Subset of IEEE 802 EtherTypes used by the reproduction."""

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100


class IPProto(IntEnum):
    """IPv4 protocol numbers used by the reproduction."""

    ICMP = 1
    TCP = 6
    UDP = 17


class ArpOp(IntEnum):
    REQUEST = 1
    REPLY = 2


class TCPFlags(IntEnum):
    """Individual TCP flag bits (combinable with ``|``)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


@dataclass(frozen=True)
class Ethernet:
    """Ethernet II header (no FCS)."""

    LAYER: ClassVar[int] = 2
    NAME: ClassVar[str] = "eth"

    src: MACAddress
    dst: MACAddress
    ethertype: int

    def encode(self) -> bytes:
        return self.dst.packed() + self.src.packed() + struct.pack("!H", self.ethertype)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["Ethernet", bytes]:
        if len(data) < 14:
            raise HeaderError(f"ethernet header truncated: {len(data)} bytes")
        dst = MACAddress(data[0:6])
        src = MACAddress(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(src=src, dst=dst, ethertype=ethertype), data[14:]

    def fields(self) -> Dict[str, object]:
        return {
            "eth.src": self.src,
            "eth.dst": self.dst,
            "eth.type": self.ethertype,
        }


@dataclass(frozen=True)
class Vlan:
    """802.1Q VLAN tag."""

    LAYER: ClassVar[int] = 2
    NAME: ClassVar[str] = "vlan"

    vid: int
    pcp: int = 0
    ethertype: int = EtherType.IPV4

    def __post_init__(self) -> None:
        if not 0 <= self.vid < 4096:
            raise HeaderError(f"VLAN id out of range: {self.vid!r}")
        if not 0 <= self.pcp < 8:
            raise HeaderError(f"VLAN PCP out of range: {self.pcp!r}")

    def encode(self) -> bytes:
        tci = (self.pcp << 13) | self.vid
        return struct.pack("!HH", tci, self.ethertype)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["Vlan", bytes]:
        if len(data) < 4:
            raise HeaderError("VLAN tag truncated")
        tci, ethertype = struct.unpack("!HH", data[:4])
        return cls(vid=tci & 0x0FFF, pcp=tci >> 13, ethertype=ethertype), data[4:]

    def fields(self) -> Dict[str, object]:
        return {"vlan.vid": self.vid, "vlan.pcp": self.pcp}


@dataclass(frozen=True)
class Arp:
    """ARP for IPv4 over Ethernet."""

    LAYER: ClassVar[int] = 3
    NAME: ClassVar[str] = "arp"

    op: int
    sender_mac: MACAddress
    sender_ip: IPv4Address
    target_mac: MACAddress
    target_ip: IPv4Address

    def encode(self) -> bytes:
        return (
            struct.pack("!HHBBH", 1, EtherType.IPV4, 6, 4, self.op)
            + self.sender_mac.packed()
            + self.sender_ip.packed()
            + self.target_mac.packed()
            + self.target_ip.packed()
        )

    @classmethod
    def decode(cls, data: bytes) -> Tuple["Arp", bytes]:
        if len(data) < 28:
            raise HeaderError(f"ARP truncated: {len(data)} bytes")
        htype, ptype, hlen, plen, op = struct.unpack("!HHBBH", data[:8])
        if (htype, ptype, hlen, plen) != (1, EtherType.IPV4, 6, 4):
            raise HeaderError("unsupported ARP hardware/protocol combination")
        return (
            cls(
                op=op,
                sender_mac=MACAddress(data[8:14]),
                sender_ip=IPv4Address(data[14:18]),
                target_mac=MACAddress(data[18:24]),
                target_ip=IPv4Address(data[24:28]),
            ),
            data[28:],
        )

    @property
    def is_request(self) -> bool:
        return self.op == ArpOp.REQUEST

    @property
    def is_reply(self) -> bool:
        return self.op == ArpOp.REPLY

    def fields(self) -> Dict[str, object]:
        return {
            "arp.op": self.op,
            "arp.sender_mac": self.sender_mac,
            "arp.sender_ip": self.sender_ip,
            "arp.target_mac": self.target_mac,
            "arp.target_ip": self.target_ip,
        }


@dataclass(frozen=True)
class IPv4:
    """IPv4 header (options unsupported; total length derived at encode)."""

    LAYER: ClassVar[int] = 3
    NAME: ClassVar[str] = "ipv4"

    src: IPv4Address
    dst: IPv4Address
    proto: int
    ttl: int = 64
    dscp: int = 0
    ident: int = 0
    payload_len: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.ttl <= 255:
            raise HeaderError(f"TTL out of range: {self.ttl!r}")
        if not 0 <= self.proto <= 255:
            raise HeaderError(f"protocol out of range: {self.proto!r}")

    def encode(self) -> bytes:
        total_len = 20 + self.payload_len
        return struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,
            self.dscp << 2,
            total_len,
            self.ident,
            0,
            self.ttl,
            self.proto,
            0,  # checksum carried as zero; not validated
            self.src.packed(),
            self.dst.packed(),
        )

    @classmethod
    def decode(cls, data: bytes) -> Tuple["IPv4", bytes]:
        if len(data) < 20:
            raise HeaderError(f"IPv4 header truncated: {len(data)} bytes")
        (ver_ihl, tos, total_len, ident, _frag, ttl, proto, _csum, src, dst) = (
            struct.unpack("!BBHHHBBH4s4s", data[:20])
        )
        if ver_ihl >> 4 != 4:
            raise HeaderError(f"not IPv4: version {ver_ihl >> 4}")
        ihl = (ver_ihl & 0x0F) * 4
        if ihl != 20:
            raise HeaderError("IPv4 options unsupported in reproduction")
        return (
            cls(
                src=IPv4Address(src),
                dst=IPv4Address(dst),
                proto=proto,
                ttl=ttl,
                dscp=tos >> 2,
                ident=ident,
                payload_len=max(0, total_len - 20),
            ),
            data[20:],
        )

    def decremented(self) -> "IPv4":
        """Copy with TTL decreased by one (forwarding semantics)."""
        if self.ttl <= 0:
            raise HeaderError("TTL already zero")
        return replace(self, ttl=self.ttl - 1)

    def fields(self) -> Dict[str, object]:
        return {
            "ipv4.src": self.src,
            "ipv4.dst": self.dst,
            "ipv4.proto": self.proto,
            "ipv4.ttl": self.ttl,
            "ipv4.dscp": self.dscp,
        }


@dataclass(frozen=True)
class TCP:
    """TCP header (no options)."""

    LAYER: ClassVar[int] = 4
    NAME: ClassVar[str] = "tcp"

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535

    def __post_init__(self) -> None:
        for name in ("src_port", "dst_port"):
            value = getattr(self, name)
            if not 0 <= value < 65536:
                raise HeaderError(f"TCP {name} out of range: {value!r}")

    def encode(self) -> bytes:
        return struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            5 << 4,
            self.flags,
            self.window,
            0,
            0,
        )

    @classmethod
    def decode(cls, data: bytes) -> Tuple["TCP", bytes]:
        if len(data) < 20:
            raise HeaderError(f"TCP header truncated: {len(data)} bytes")
        sport, dport, seq, ack, offset, flags, window, _csum, _urg = struct.unpack(
            "!HHIIBBHHH", data[:20]
        )
        doff = (offset >> 4) * 4
        if doff < 20 or doff > len(data):
            raise HeaderError(f"bad TCP data offset {doff}")
        return (
            cls(
                src_port=sport,
                dst_port=dport,
                seq=seq,
                ack=ack,
                flags=flags,
                window=window,
            ),
            data[doff:],
        )

    def has_flag(self, flag: int) -> bool:
        return bool(self.flags & flag)

    @property
    def is_syn(self) -> bool:
        return self.has_flag(TCPFlags.SYN) and not self.has_flag(TCPFlags.ACK)

    @property
    def is_fin(self) -> bool:
        return self.has_flag(TCPFlags.FIN)

    @property
    def is_rst(self) -> bool:
        return self.has_flag(TCPFlags.RST)

    def fields(self) -> Dict[str, object]:
        return {
            "tcp.src": self.src_port,
            "tcp.dst": self.dst_port,
            "tcp.flags": self.flags,
            "tcp.seq": self.seq,
            "tcp.ack": self.ack,
        }


@dataclass(frozen=True)
class UDP:
    """UDP header."""

    LAYER: ClassVar[int] = 4
    NAME: ClassVar[str] = "udp"

    src_port: int
    dst_port: int
    payload_len: int = 0

    def __post_init__(self) -> None:
        for name in ("src_port", "dst_port"):
            value = getattr(self, name)
            if not 0 <= value < 65536:
                raise HeaderError(f"UDP {name} out of range: {value!r}")

    def encode(self) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port, 8 + self.payload_len, 0)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["UDP", bytes]:
        if len(data) < 8:
            raise HeaderError(f"UDP header truncated: {len(data)} bytes")
        sport, dport, length, _csum = struct.unpack("!HHHH", data[:8])
        return (
            cls(src_port=sport, dst_port=dport, payload_len=max(0, length - 8)),
            data[8:],
        )

    def fields(self) -> Dict[str, object]:
        return {"udp.src": self.src_port, "udp.dst": self.dst_port}


@dataclass(frozen=True)
class ICMP:
    """ICMP header (echo-focused)."""

    LAYER: ClassVar[int] = 4
    NAME: ClassVar[str] = "icmp"

    TYPE_ECHO_REPLY: ClassVar[int] = 0
    TYPE_ECHO_REQUEST: ClassVar[int] = 8

    icmp_type: int
    code: int = 0
    ident: int = 0
    seq: int = 0

    def encode(self) -> bytes:
        return struct.pack("!BBHHH", self.icmp_type, self.code, 0, self.ident, self.seq)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["ICMP", bytes]:
        if len(data) < 8:
            raise HeaderError(f"ICMP header truncated: {len(data)} bytes")
        itype, code, _csum, ident, seq = struct.unpack("!BBHHH", data[:8])
        return cls(icmp_type=itype, code=code, ident=ident, seq=seq), data[8:]

    def fields(self) -> Dict[str, object]:
        return {"icmp.type": self.icmp_type, "icmp.code": self.code}
