"""The :class:`Packet` container.

A packet is an ordered stack of protocol headers plus opaque payload bytes,
tagged with a **unique identity** (``uid``).  The uid implements the paper's
Feature 5 (Maintaining Packet Identity): when a switch forwards — or
rewrites, as NAT does — a packet, the egress copy keeps the same uid, so a
monitor can connect "the same packet" across an arrival and its departures
even when every header field changed.  Copies made for flooding share the
uid too: they are the same arrival, multiply forwarded.

Field access is by dotted name (``"ipv4.src"``, ``"tcp.dst"``, …), the flat
namespace the monitor's field extraction (Feature 1) binds from.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type, TypeVar

from .addresses import IPv4Address, MACAddress
from .dhcp import Dhcp
from .ftp import FtpControl
from .headers import ICMP, TCP, UDP, Arp, Ethernet, HeaderError, IPv4, Vlan

Header = object  # any of the frozen header dataclasses
H = TypeVar("H")

_uid_counter = itertools.count(1)


def fresh_uid() -> int:
    """Allocate a new globally-unique packet identity."""
    return next(_uid_counter)


@dataclass(frozen=True)
class Packet:
    """An immutable packet: header stack, payload, identity.

    Rewrites produce new ``Packet`` values (via :meth:`with_header`) that
    share the original ``uid`` — immutability keeps monitor provenance
    records trustworthy even after NAT rewrites the live packet.
    """

    headers: Tuple[Header, ...]
    payload: bytes = b""
    uid: int = field(default_factory=fresh_uid)

    # -- construction ----------------------------------------------------
    @classmethod
    def of(cls, *headers: Header, payload: bytes = b"") -> "Packet":
        """Build a packet from headers in outermost-first order."""
        return cls(headers=tuple(headers), payload=payload)

    # -- header access ---------------------------------------------------
    def find(self, header_type: Type[H]) -> Optional[H]:
        """Return the first header of the given type, or None."""
        for header in self.headers:
            if isinstance(header, header_type):
                return header
        return None

    def get(self, header_type: Type[H]) -> H:
        """Return the first header of the given type, or raise KeyError."""
        found = self.find(header_type)
        if found is None:
            raise KeyError(f"packet has no {header_type.__name__} header")
        return found

    def has(self, header_type: Type[Header]) -> bool:
        return self.find(header_type) is not None

    @property
    def eth(self) -> Ethernet:
        return self.get(Ethernet)

    @property
    def max_layer(self) -> int:
        """Deepest OSI layer present in the header stack."""
        return max((h.LAYER for h in self.headers), default=0)

    # -- field namespace ---------------------------------------------------
    def fields(self, max_layer: int = 7) -> Dict[str, object]:
        """Flat dotted-name field map, truncated at ``max_layer``.

        ``max_layer`` models a switch's parse-depth limit (Feature 1): a
        fixed-function switch that parses only to L4 sees no ``dhcp.*`` or
        ``ftp.*`` fields even when the packet carries them.
        """
        out: Dict[str, object] = {}
        for header in self.headers:
            if header.LAYER <= max_layer:
                out.update(header.fields())
        return out

    def field(self, name: str, max_layer: int = 7) -> object:
        """Look up one dotted field name; raises KeyError if absent."""
        for header in self.headers:
            if header.LAYER > max_layer:
                continue
            values = header.fields()
            if name in values:
                return values[name]
        raise KeyError(name)

    # -- rewriting ---------------------------------------------------------
    def with_header(self, new_header: Header) -> "Packet":
        """Replace the first header of ``new_header``'s type, keeping uid."""
        headers = list(self.headers)
        for i, header in enumerate(headers):
            if type(header) is type(new_header):
                headers[i] = new_header
                return replace(self, headers=tuple(headers))
        raise KeyError(f"packet has no {type(new_header).__name__} header to replace")

    def with_payload(self, payload: bytes) -> "Packet":
        return replace(self, payload=payload)

    def duplicate(self) -> "Packet":
        """Copy sharing the uid — models flooding the same arrival."""
        return replace(self)

    def refreshed(self) -> "Packet":
        """Copy with a *new* uid — a genuinely distinct packet."""
        return replace(self, uid=fresh_uid())

    # -- conveniences used throughout the apps and tests ------------------
    @property
    def ip_src(self) -> Optional[IPv4Address]:
        ip = self.find(IPv4)
        return ip.src if ip else None

    @property
    def ip_dst(self) -> Optional[IPv4Address]:
        ip = self.find(IPv4)
        return ip.dst if ip else None

    @property
    def l4_sport(self) -> Optional[int]:
        for proto in (TCP, UDP):
            l4 = self.find(proto)
            if l4:
                return l4.src_port
        return None

    @property
    def l4_dport(self) -> Optional[int]:
        for proto in (TCP, UDP):
            l4 = self.find(proto)
            if l4:
                return l4.dst_port
        return None

    def five_tuple(self) -> Optional[Tuple[IPv4Address, int, IPv4Address, int, int]]:
        """(src_ip, sport, dst_ip, dport, proto) or None if not IP+L4."""
        ip = self.find(IPv4)
        sport, dport = self.l4_sport, self.l4_dport
        if ip is None or sport is None or dport is None:
            return None
        return (ip.src, sport, ip.dst, dport, ip.proto)

    def describe(self) -> str:
        """One-line human-readable summary for provenance reports."""
        parts = [type(h).__name__ for h in self.headers]
        ip = self.find(IPv4)
        flow = ""
        if ip is not None:
            sport, dport = self.l4_sport, self.l4_dport
            if sport is not None:
                flow = f" {ip.src}:{sport}->{ip.dst}:{dport}"
            else:
                flow = f" {ip.src}->{ip.dst}"
        return f"Packet#{self.uid}[{'/'.join(parts)}{flow}]"

    def __iter__(self) -> Iterator[Header]:
        return iter(self.headers)
