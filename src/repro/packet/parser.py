"""Wire-format parsing with configurable depth limits.

:func:`parse` decodes raw bytes into a :class:`~repro.packet.packet.Packet`,
stopping at ``max_layer`` — the reproduction's model of a switch's parser
capability (the paper's Feature 1: "standard switches only parse packet
headers to a limited depth; checking application-layer fields requires
richer parsing").  A backend with ``max_layer=4`` produces packets whose
L7 payloads remain opaque bytes, so any property that binds ``dhcp.*`` or
``ftp.*`` fields fails against it — exactly the Fields column of Table 1.
"""

from __future__ import annotations

from typing import List, Optional

from .dhcp import DHCP_CLIENT_PORT, DHCP_SERVER_PORT, Dhcp
from .ftp import FTP_CONTROL_PORT, FtpControl
from .headers import (
    ICMP,
    TCP,
    UDP,
    Arp,
    Ethernet,
    EtherType,
    HeaderError,
    IPProto,
    IPv4,
    Vlan,
)
from .packet import Header, Packet


class ParseError(HeaderError):
    """Raised when wire bytes cannot be decoded into a packet."""


def encode(packet: Packet) -> bytes:
    """Serialize a packet's header stack and payload to wire bytes."""
    return b"".join(h.encode() for h in packet.headers) + packet.payload


def parse(data: bytes, max_layer: int = 7) -> Packet:
    """Decode wire bytes into a Packet, parsing no deeper than ``max_layer``.

    Whatever lies beyond the parse limit (or beyond a decode failure at L7,
    where payloads may legitimately be arbitrary application bytes) is
    preserved as opaque payload.
    """
    if max_layer < 2:
        raise ParseError(f"max_layer must be >= 2, got {max_layer!r}")
    headers: List[Header] = []
    try:
        eth, rest = Ethernet.decode(data)
    except HeaderError as exc:
        raise ParseError(str(exc)) from exc
    headers.append(eth)
    ethertype = eth.ethertype

    if ethertype == EtherType.VLAN:
        vlan, rest = Vlan.decode(rest)
        headers.append(vlan)
        ethertype = vlan.ethertype

    if max_layer < 3:
        return Packet(headers=tuple(headers), payload=rest)

    # Inner headers that fail to decode are left as opaque payload — a
    # fixed-function parser stalls rather than rejecting the frame.
    if ethertype == EtherType.ARP:
        try:
            arp, rest = Arp.decode(rest)
        except HeaderError:
            return Packet(headers=tuple(headers), payload=rest)
        headers.append(arp)
        return Packet(headers=tuple(headers), payload=rest)

    if ethertype != EtherType.IPV4:
        return Packet(headers=tuple(headers), payload=rest)

    try:
        ip, rest = IPv4.decode(rest)
    except HeaderError:
        return Packet(headers=tuple(headers), payload=rest)
    headers.append(ip)
    if max_layer < 4:
        return Packet(headers=tuple(headers), payload=rest)

    sport: Optional[int] = None
    dport: Optional[int] = None
    try:
        if ip.proto == IPProto.TCP:
            tcp, rest = TCP.decode(rest)
            headers.append(tcp)
            sport, dport = tcp.src_port, tcp.dst_port
        elif ip.proto == IPProto.UDP:
            udp, rest = UDP.decode(rest)
            headers.append(udp)
            sport, dport = udp.src_port, udp.dst_port
        elif ip.proto == IPProto.ICMP:
            icmp, rest = ICMP.decode(rest)
            headers.append(icmp)
    except HeaderError:
        return Packet(headers=tuple(headers), payload=rest)

    if max_layer < 7 or not rest:
        return Packet(headers=tuple(headers), payload=rest)

    # L7: recognize by well-known port; decode failures leave opaque payload.
    try:
        if dport in (DHCP_SERVER_PORT, DHCP_CLIENT_PORT) or sport in (
            DHCP_SERVER_PORT,
            DHCP_CLIENT_PORT,
        ):
            dhcp, rest = Dhcp.decode(rest)
            headers.append(dhcp)
        elif FTP_CONTROL_PORT in (sport, dport):
            ftp, rest = FtpControl.decode(rest)
            headers.append(ftp)
    except HeaderError:
        pass
    return Packet(headers=tuple(headers), payload=rest)


def reparse(packet: Packet, max_layer: int) -> Packet:
    """Re-limit an already-parsed packet to a shallower parse depth.

    Headers beyond ``max_layer`` are re-serialized into the payload, and the
    packet keeps its uid — the switch saw the same packet, it just cannot
    *read* as far into it.
    """
    kept: List[Header] = []
    dropped: List[Header] = []
    for header in packet.headers:
        (kept if header.LAYER <= max_layer else dropped).append(header)
    if not dropped:
        return packet
    payload = b"".join(h.encode() for h in dropped) + packet.payload
    return Packet(headers=tuple(kept), payload=payload, uid=packet.uid)
