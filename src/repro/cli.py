"""Command-line interface.

::

    python -m repro tables              # regenerate Tables 1 and 2
    python -m repro survey              # which backends host which properties
    python -m repro check FILE [...]    # compile + analyze DSL property files
    python -m repro lint FILE [...]     # static lints + feasibility + split
                                        #   hazards [--json] [--backend NAME]
                                        #   [--fix [--diff]] autofixes
    python -m repro record OUT [--packets N --hosts H --seed S]
                                        # simulate traffic, save a JSONL trace
                                        #   (with a provenance header line)
    python -m repro replay TRACE FILE [--metrics OUT]
                                        # replay a trace against DSL properties
    python -m repro explain PROP [--codegen]
                                        # how a property compiles: dispatch
                                        #   plan summary, or the generated
                                        #   matcher source exec'd by
                                        #   --match-strategy codegen
    python -m repro stats TRACE FILE... [--json|--prom] [--trace-out S.jsonl]
                                        #   [--poll-interval S]
                                        # replay with full telemetry: metrics
                                        #   snapshot, spans, gauge time series
    python -m repro chaos [--profile P --seed S --events N --rounds N]
                                        # replay the Table-1 catalog under a
                                        #   fault profile; report detection
                                        #   degradation vs. a clean run
    python -m repro serve [--port P --ingest tcp:PORT|pipe:PATH ...]
                                        # live daemon: stream frames in over
                                        #   TCP/pipes, scrape /metrics,
                                        #   /stats, /healthz, /readyz, /trace;
                                        #   SIGTERM drains and reports
    python -m repro send TRACE [--host H --port P --rate R --repeat N]
                                        # stream a recorded trace into a
                                        #   running serve daemon at a target
                                        #   event rate

Named predicates available to DSL files via ``check``/``replay``:
``@internal`` (RFC1918 source, public destination), ``@tcp_syn``,
``@tcp_close``, ``@dhcp_request``, ``@dhcp_ack``, ``@dhcp_release``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import Monitor, analyze
from .lang import compile_source


def _predicates():
    """The full catalog predicate environment (fresh auxiliary state).

    Knowledge-backed predicates (@known/@unknown/@lease_unknown) and the
    load-balancer expectations are included so every shipped .prop file
    checks and replays; their auxiliary state starts empty, which is the
    right default for replaying a standalone trace.
    """
    from .props import ArpKnowledge, LeaseKnowledge, RoundRobinExpectation
    from .props.catalog import CATALOG_BACKENDS, CATALOG_VIP
    from .props.dsl_sources import dsl_predicates

    return dsl_predicates(
        ArpKnowledge(), LeaseKnowledge(),
        RoundRobinExpectation(CATALOG_VIP, CATALOG_BACKENDS))


def cmd_tables(args: argparse.Namespace) -> int:
    from .backends import diff_against_paper, render_table2
    from .props import build_table1, render_table1

    print("=== Table 1: properties and required features ===\n")
    print(render_table1())
    entries = build_table1()
    ok1 = sum(1 for e in entries if e.matches_paper())
    print(f"\n{ok1}/{len(entries)} rows match the paper\n")

    print("=== Table 2: approaches and supported features ===\n")
    print(render_table2())
    diffs = diff_against_paper()
    print(f"\n{'all cells match the paper' if not diffs else diffs}")
    return 0 if ok1 == len(entries) and not diffs else 1


def cmd_survey(args: argparse.Namespace) -> int:
    from .backends import UnsupportedFeature, all_backends
    from .props import build_table1

    backends = all_backends()
    width = max(len(b.caps.name) for b in backends) + 2
    entries = build_table1()  # built once; identical for every backend
    for backend in backends:
        hosted = 0
        blockers: dict = {}
        for entry in entries:
            try:
                backend.check(entry.prop)
                hosted += 1
            except UnsupportedFeature as exc:
                blockers[exc.feature] = blockers.get(exc.feature, 0) + 1
        top = ", ".join(f"{k} x{v}" for k, v in
                        sorted(blockers.items(), key=lambda kv: -kv[1])[:3])
        print(f"{backend.caps.name:<{width}} hosts {hosted:2d}/13"
              + (f"   blocked by: {top}" if top else ""))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .lint import Severity, lint_source, RULES

    status = 0
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as fp:
                source = fp.read()
            props = compile_source(source, _predicates())
        except Exception as exc:  # surface parse/compile errors per file
            print(f"{path}: ERROR: {exc}", file=sys.stderr)
            status = 1
            continue
        # Run the linter alongside the analysis; warnings and errors are
        # surfaced here, the full report (info-level feasibility verdicts,
        # cost estimates) lives under ``repro lint``.
        report = lint_source(source, _predicates(), path=path)
        for diag in report.all_diagnostics():
            if diag.severity is Severity.INFO:
                continue
            print(f"{path}:{diag.line}:{diag.column}: {diag.severity.value} "
                  f"{diag.code} {RULES[diag.code].slug}: {diag.message}",
                  file=sys.stderr)
            if diag.severity is Severity.ERROR:
                status = 1
        for prop in props:
            req = analyze(prop)
            print(f"{path}: {prop.name}")
            print(f"    stages        : {prop.num_stages} "
                  f"({', '.join(s.name for s in prop.stages)})")
            print(f"    instance key  : {', '.join(prop.key_vars)}")
            print(f"    parse depth   : L{req.max_layer}")
            flags = [
                name for name, on in [
                    ("history", req.history), ("timeouts", req.timeouts),
                    ("obligation", req.obligation), ("identity", req.identity),
                    ("negative-match", req.negative_match),
                    ("timeout-actions", req.timeout_actions),
                    ("multiple-match", req.multiple_match),
                    ("out-of-band", req.out_of_band),
                    ("drop-visibility", req.drop_visibility),
                ] if on
            ]
            print(f"    features      : {', '.join(flags) or 'none'}")
            print(f"    inst. id      : {req.match_kind.value}")
    return status


def cmd_lint(args: argparse.Namespace) -> int:
    from .lint import (
        DEFAULT_SPLIT_LAG,
        LintOptions,
        lint_paths,
        parse_split_lag,
        render_json,
        render_text,
        resolve_backend_name,
    )

    focus = None
    if args.backend:
        try:
            focus = resolve_backend_name(args.backend)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.split_lag is not None:
        try:
            lag = parse_split_lag(args.split_lag)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        lag = DEFAULT_SPLIT_LAG
    if args.diff and not args.fix:
        print("error: --diff requires --fix", file=sys.stderr)
        return 2
    if args.fix:
        status = _apply_fixes(args.files, diff_only=args.diff)
        if status:
            return status
    options = LintOptions(focus_backend=focus, split_lag=lag)
    reports = lint_paths(args.files, _predicates(), options)
    if args.json:
        print(render_json(reports))
    else:
        print(render_text(reports, verbose=not args.quiet))
    return 1 if any(r.errors for r in reports) else 0


def _apply_fixes(paths: List[str], diff_only: bool) -> int:
    """Fix mechanical findings in ``paths`` (``--fix``); with ``--diff``
    print the would-be rewrite as a unified diff instead of writing."""
    import difflib

    from .lint.fixes import fix_source

    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as fp:
                original = fp.read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        result = fix_source(original)
        for skip in result.skipped:
            print(f"{path}:{skip.line}: skipped property "
                  f"{skip.prop!r}: {skip.reason}", file=sys.stderr)
        if not result.changed:
            continue
        if diff_only:
            sys.stdout.writelines(difflib.unified_diff(
                original.splitlines(keepends=True),
                result.source.splitlines(keepends=True),
                fromfile=path, tofile=f"{path} (fixed)"))
        else:
            with open(path, "w", encoding="utf-8") as fp:
                fp.write(result.source)
            for fix in result.fixes:
                print(f"{path}:{fix.line}: fixed {fix.code}: "
                      f"{fix.description}", file=sys.stderr)
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    from .apps import LearningSwitchApp, sometimes
    from .netsim import TraceRecorder, single_switch_network
    from .netsim.serialize import save_trace, trace_header
    from .netsim.workload import l2_pairs, send_all
    from .switch.pipeline import MissPolicy

    net, switch, hosts = single_switch_network(
        args.hosts, switch_kwargs={"miss_policy": MissPolicy.CONTROLLER})
    faults = sometimes("wrong_port", args.fault_rate, seed=args.seed)
    switch.set_app(LearningSwitchApp(faults=faults))
    recorder = TraceRecorder()
    switch.add_tap(recorder)
    send_all(hosts, l2_pairs(args.hosts, args.packets, seed=args.seed))
    net.run()
    header = trace_header(
        seed=args.seed, hosts=args.hosts, packets=args.packets,
        fault_rate=args.fault_rate, events=len(recorder.events),
        generator="repro record")
    count = save_trace(recorder.events, args.out, header=header)
    print(f"recorded {count} events "
          f"({len(recorder.arrivals)} arrivals) to {args.out}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from .netsim.serialize import read_trace
    from .telemetry import MetricsRegistry, render_json

    with open(args.properties, "r", encoding="utf-8") as fp:
        props = compile_source(fp.read(), _predicates())
    events = read_trace(args.trace)
    registry = None
    if args.metrics:
        registry = MetricsRegistry()
    kwargs = dict(store_strategy=args.store_strategy,
                  match_strategy=args.match_strategy)
    if args.shards > 0:
        from .fabric import ShardedMonitor

        monitor = ShardedMonitor(
            props, num_shards=args.shards, mode=args.shard_mode,
            registry=registry, monitor_kwargs=kwargs)
    else:
        monitor = Monitor(registry=registry, **kwargs)
        for prop in props:
            monitor.add_property(prop)
    if registry is not None:
        registry.time_fn = lambda: monitor.now
    monitor.observe_batch(events)
    if events:
        monitor.advance_to(events[-1].time + args.settle)
    if args.shards > 0:
        monitor.stop()  # reap fabric workers; merges the final deltas
    print(f"replayed {len(events)} events against "
          f"{len(props)} propert{'y' if len(props) == 1 else 'ies'}"
          + (f" across {args.shards} {args.shard_mode} shard(s)"
             if args.shards > 0 else ""))
    print(f"violations: {len(monitor.violations)}")
    for violation in monitor.violations:
        print()
        print(violation.describe())
    if registry is not None:
        with open(args.metrics, "w", encoding="utf-8") as fp:
            fp.write(render_json(registry.snapshot()))
            fp.write("\n")
        print(f"\nmetrics snapshot written to {args.metrics}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    import os

    if os.path.exists(args.target):
        with open(args.target, "r", encoding="utf-8") as fp:
            props = compile_source(fp.read(), _predicates())
    else:
        from .props import (
            build_table1,
            learned_no_flood,
            learned_unicast_port,
            link_down_clears_learning,
        )

        known = [e.prop for e in build_table1()]
        known += [learned_unicast_port(), learned_no_flood(),
                  link_down_clears_learning()]
        props = [p for p in known if p.name == args.target]
        if not props:
            names = ", ".join(sorted(p.name for p in known))
            print(f"unknown property {args.target!r} (not a file, not in "
                  f"the catalog).\ncatalog: {names}", file=sys.stderr)
            return 2
    if args.codegen:
        # The exact source the codegen strategy exec's for these
        # properties — what actually runs per event, after inlining.
        monitor = Monitor(match_strategy="codegen",
                          store_strategy=args.store_strategy)
        for prop in props:
            monitor.add_property(prop)
        print(monitor.codegen_source())
        return 0
    from .core.compile import dispatch_summary, scan_watchers

    for prop in props:
        print(f"property {prop.name}: {len(prop.stages)} stage(s), "
              f"key vars {list(prop.key_vars)}")
        for kind, count in dispatch_summary(prop).items():
            print(f"  {kind}: {count} watcher(s)")
        for kind, stage, role in scan_watchers(prop):
            print(f"  full-population scan: {kind} -> "
                  f"stage {stage!r} ({role})")
    return 0


def _echo_provenance(header, trace_path: str, out) -> None:
    """One line of trace provenance (from the TraceHeader, if present)."""
    if header is None:
        print(f"trace {trace_path}: no header (pre-provenance recording)",
              file=out)
        return
    detail = " ".join(
        f"{key}={header[key]}"
        for key in ("generator", "seed", "hosts", "packets", "events")
        if key in header)
    print(f"trace {trace_path}: schema v{header.get('schema', '?')} {detail}",
          file=out)


def cmd_stats(args: argparse.Namespace) -> int:
    from .netsim.serialize import read_trace_with_header
    from .telemetry import (
        MetricsRegistry,
        StatsPoller,
        Tracer,
        render_json,
        render_prometheus,
        save_spans,
        validate_spans,
    )

    props = []
    for path in args.properties:
        with open(path, "r", encoding="utf-8") as fp:
            props.extend(compile_source(fp.read(), _predicates()))
    header, events = read_trace_with_header(args.trace)
    _echo_provenance(header, args.trace, sys.stderr)

    registry = MetricsRegistry()
    tracer = Tracer() if args.trace_out else None
    monitor = Monitor(registry=registry, tracer=tracer)
    registry.time_fn = lambda: monitor.now
    for prop in props:
        monitor.add_property(prop)

    poller = None
    if args.poll_interval:
        start = events[0].time if events else 0.0
        poller = StatsPoller(registry, args.poll_interval, start_time=start)

    if poller is None and tracer is None:
        # No per-event instrumentation requested: take the batch fast path.
        monitor.observe_batch(events)
    else:
        for event in events:
            if poller is not None:
                poller.advance_to(event.time)
            root = None
            if tracer is not None:
                packet = getattr(event, "packet", None)
                root = tracer.start(
                    type(event).__name__, event.time,
                    uid=packet.uid if packet is not None else None,
                    root=True, switch=event.switch_id)
            monitor.observe(event)
            if root is not None:
                tracer.end(root, monitor.now)
    if events:
        monitor.advance_to(events[-1].time + args.settle)
    if poller is not None and events:
        poller.advance_to(events[-1].time)

    print(f"replayed {len(events)} events against "
          f"{len(props)} propert{'y' if len(props) == 1 else 'ies'}; "
          f"{len(monitor.violations)} violation(s)", file=sys.stderr)

    if tracer is not None:
        tracer.close_all(monitor.now)
        problems = validate_spans(tracer.spans)
        for problem in problems:
            print(f"warning: malformed span: {problem}", file=sys.stderr)
        count = save_spans(tracer.spans, args.trace_out)
        print(f"{count} spans written to {args.trace_out}", file=sys.stderr)

    snapshot = registry.snapshot()
    if args.json:
        payload = {
            "trace": {"path": args.trace, "header": header},
            "snapshot": snapshot,
        }
        if poller is not None:
            payload["samples"] = poller.samples
        print(render_json(payload))
    else:
        print(render_prometheus(snapshot), end="")
        if poller is not None:
            print(f"# {len(poller.samples)} poll samples collected "
                  "(use --json to include them)")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .netsim.chaos import PROFILES
    from .resilience import render_report, run_soak

    if args.attack:
        from .adversarial import render_attack_report, run_attacks

        report = run_attacks(rounds=args.rounds)
        print(render_attack_report(report))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fp:
                json.dump(report.to_dict(), fp, indent=2, sort_keys=True)
                fp.write("\n")
            print(f"wrote {args.json}")
        if report.failed:
            print("attack sweep FAILED: a flagged property did not degrade "
                  "as the lint predicted", file=sys.stderr)
            return 1
        return 0

    profile = PROFILES[args.profile]
    if not profile.worker_crash.is_null:
        return _run_crash_profile(args, profile)
    reports = run_soak(profile, seed=args.seed, rounds=args.rounds,
                       num_events=args.events, settle=args.settle)
    failed = False
    for index, report in enumerate(reports):
        if args.rounds > 1:
            print(f"--- round {index + 1}/{args.rounds} "
                  f"(seed {report.seed}) ---")
        print(render_report(report))
        if report.invariant_failures:
            failed = True
        if report.bounded is False:
            failed = True
    if args.json:
        payload = {
            "profile": profile.name,
            "rounds": [report.to_dict() for report in reports],
        }
        with open(args.json, "w", encoding="utf-8") as fp:
            json.dump(payload, fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"wrote {args.json}")
    if failed:
        print("chaos run FAILED: invariant violation or clean count "
              "outside the ledgered uncertainty interval", file=sys.stderr)
        return 1
    return 0


def _run_crash_profile(args: argparse.Namespace, profile) -> int:
    """`repro chaos --profile worker-crash`: SIGKILL workers mid-run."""
    import json

    from .fabric import SupervisorPolicy, fork_available
    from .resilience import render_crash_report, run_crash_chaos

    if not fork_available():
        print("error: the worker-crash profile needs mp fabric workers, "
              "and this platform lacks the fork start method",
              file=sys.stderr)
        return 2
    supervision = SupervisorPolicy(
        heartbeat_interval=0.2, heartbeat_timeout=10.0,
        backoff_base=0.01, backoff_max=0.5,
        restart_budget=args.restart_budget,
        checkpoint_interval=args.checkpoint_interval)
    reports = []
    for offset in range(args.rounds):
        reports.append(run_crash_chaos(
            profile, seed=args.seed + offset, num_events=args.events,
            settle=args.settle, num_shards=args.shards or 2,
            supervision=supervision))
    failed = False
    for index, report in enumerate(reports):
        if args.rounds > 1:
            print(f"--- round {index + 1}/{args.rounds} "
                  f"(seed {report.seed}) ---")
        print(render_crash_report(report))
        if not report.bounded or report.invariant_failures \
                or report.failed_shards:
            failed = True
    if args.json:
        payload = {
            "profile": profile.name,
            "rounds": [report.to_dict() for report in reports],
        }
        with open(args.json, "w", encoding="utf-8") as fp:
            json.dump(payload, fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"wrote {args.json}")
    if failed:
        print("crash chaos FAILED: clean count outside the uncertainty "
              "interval, an invariant broke, or a shard exhausted its "
              "restart budget", file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import ServeConfig, ServeDaemon, render_serve_report

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            ingest=tuple(args.ingest or ["tcp:9801"]),
            max_queue=args.max_queue,
            poll_interval=args.poll_interval,
            chaos_profile=args.chaos_profile,
            trace_buffer=args.trace_buffer,
            spans_path=args.spans,
            report_path=args.report,
            shards=args.shards,
            shard_mode=args.shard_mode,
            restart_budget=args.restart_budget,
            checkpoint_interval=args.checkpoint_interval,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    daemon = ServeDaemon(config)

    def banner(d: ServeDaemon) -> None:
        ingest = ", ".join(
            [f"tcp:{port}" for port in d.ingest_ports]
            + [spec for spec in config.ingest if spec.startswith("pipe:")])
        print(f"serving http://{config.host}:{d.http_port} "
              f"(profile={config.chaos_profile}, ingest {ingest}); "
              f"SIGTERM or Ctrl-C drains and reports", file=sys.stderr)

    daemon.on_started = banner
    report = asyncio.run(daemon.run())
    print(render_serve_report(report))
    if args.report:
        print(f"report written to {args.report}", file=sys.stderr)
    return 0


def cmd_send(args: argparse.Namespace) -> int:
    from .serve import stream_trace

    try:
        result = stream_trace(args.trace, args.host, args.port,
                              rate=args.rate, repeat=args.repeat,
                              retry=args.retry, backoff=args.backoff,
                              format=args.format)
    except ConnectionRefusedError:
        print(f"error: nothing listening on {args.host}:{args.port} "
              "(is `repro serve` running?"
              + (" retry budget exhausted" if args.retry else "") + ")",
              file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: connection to {args.host}:{args.port} lost and "
              f"retry budget exhausted: {exc}", file=sys.stderr)
        return 1
    rate = ("unpaced" if result.target_rate == 0
            else f"target {result.target_rate:g} ev/s")
    print(f"sent {result.events} events in {result.duration:.3f}s "
          f"({result.achieved_rate:.0f} ev/s, {rate}, "
          f"{result.reconnects} reconnect(s))")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stateful property monitoring on software switches "
                    "(reproduction of 'Switches are Monitors Too!', "
                    "HotNets 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="regenerate Tables 1 and 2") \
        .set_defaults(fn=cmd_tables)
    sub.add_parser("survey", help="which backends host which properties") \
        .set_defaults(fn=cmd_survey)

    check = sub.add_parser("check", help="compile + analyze DSL files")
    check.add_argument("files", nargs="+")
    check.set_defaults(fn=cmd_check)

    lint = sub.add_parser(
        "lint",
        help="static lints, backend feasibility, split-mode hazards")
    lint.add_argument("files", nargs="+")
    lint.add_argument("--json", action="store_true",
                      help="emit a machine-readable JSON report")
    lint.add_argument("--backend", default=None,
                      help="deployment target: its feasibility failures "
                           "become errors (name or unique prefix)")
    lint.add_argument("--split-lag", type=str, default=None,
                      help="split-mode state-update lag: seconds, 'table2' "
                           "for per-backend defaults derived from Table 2's "
                           "update-datapath column, or NAME=SECONDS[,...] "
                           "overrides (default: the engine's "
                           "DEFAULT_SPLIT_LAG, 500 microseconds)")
    lint.add_argument("--quiet", action="store_true",
                      help="diagnostics only, no per-property summaries")
    lint.add_argument("--fix", action="store_true",
                      help="mechanically repair fixable findings (L002 "
                           "unused binds, L003 shadowed rebinds, L004 "
                           "duplicate guards) by rewriting the files, then "
                           "re-lint the result")
    lint.add_argument("--diff", action="store_true",
                      help="with --fix: print the rewrite as a unified "
                           "diff instead of writing the files")
    lint.set_defaults(fn=cmd_lint)

    record = sub.add_parser("record",
                            help="simulate a learning switch, save a trace")
    record.add_argument("out")
    record.add_argument("--packets", type=int, default=100)
    record.add_argument("--hosts", type=int, default=4)
    record.add_argument("--seed", type=int, default=7)
    record.add_argument("--fault-rate", type=float, default=0.2)
    record.set_defaults(fn=cmd_record)

    replay = sub.add_parser("replay",
                            help="replay a trace against DSL properties")
    replay.add_argument("trace")
    replay.add_argument("properties")
    replay.add_argument("--settle", type=float, default=60.0,
                        help="virtual seconds to run timers past the trace")
    replay.add_argument("--metrics", default=None, metavar="OUT",
                        help="write a JSON metrics snapshot to OUT")
    replay.add_argument("--match-strategy", default="compiled",
                        choices=("compiled", "interpreted", "codegen"),
                        help="event matching: compiled dispatch plan "
                             "(default), the interpreted ablation, or "
                             "codegen (source-specialized matchers, "
                             "exec'd once at startup)")
    replay.add_argument("--shards", type=int, default=0, metavar="N",
                        help="partition monitor instances by key hash into "
                             "N shards (0 = plain single monitor)")
    replay.add_argument("--shard-mode", default="inprocess",
                        choices=["inprocess", "mp"],
                        help="fabric execution mode: N in-process shards "
                             "(ablation/oracle) or N forked worker "
                             "processes fed serialized event frames")
    replay.add_argument("--store-strategy", default="indexed",
                        choices=("indexed", "linear"),
                        help="instance lookup: hash index (default) or "
                             "the linear-scan ablation")
    replay.set_defaults(fn=cmd_replay)

    explain = sub.add_parser(
        "explain",
        help="show how a property compiles: dispatch plan summary, or "
             "the generated matcher source (--codegen)")
    explain.add_argument("target",
                         help="catalog property name (e.g. "
                              "learned-unicast-port) or a DSL file")
    explain.add_argument("--codegen", action="store_true",
                         help="dump the specialized Python source the "
                              "codegen match strategy exec's")
    explain.add_argument("--store-strategy", default="indexed",
                         choices=("indexed", "linear"),
                         help="instance lookup the generated source "
                              "inlines probes for (default: indexed)")
    explain.set_defaults(fn=cmd_explain)

    stats = sub.add_parser(
        "stats",
        help="replay a trace with full telemetry, emit a metrics snapshot")
    stats.add_argument("trace")
    stats.add_argument("properties", nargs="+",
                       help="one or more DSL property files")
    fmt = stats.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="JSON snapshot (default: Prometheus text)")
    fmt.add_argument("--prom", action="store_true",
                     help="Prometheus text exposition (the default)")
    stats.add_argument("--trace-out", default=None, metavar="SPANS.jsonl",
                       help="also write per-packet trace spans as JSONL")
    stats.add_argument("--poll-interval", type=float, default=None,
                       metavar="S",
                       help="sample every gauge each S virtual seconds")
    stats.add_argument("--settle", type=float, default=60.0,
                       help="virtual seconds to run timers past the trace")
    stats.set_defaults(fn=cmd_stats)

    chaos = sub.add_parser(
        "chaos",
        help="replay the Table-1 catalog under a fault profile, report "
             "degradation vs. a clean run")
    chaos.add_argument("--profile", default="lossy",
                       choices=sorted(_chaos_profile_names()),
                       help="named fault profile (default: lossy)")
    chaos.add_argument("--seed", type=int, default=7,
                       help="workload seed; round k uses seed+k")
    chaos.add_argument("--events", type=int, default=2000,
                       help="events per round (default: 2000)")
    chaos.add_argument("--rounds", type=int, default=1,
                       help="soak mode: run N independent rounds")
    chaos.add_argument("--settle", type=float, default=600.0,
                       help="virtual seconds to run timers past the trace")
    chaos.add_argument("--json", default=None, metavar="OUT",
                       help="also write the degradation report(s) as JSON")
    chaos.add_argument("--attack", action="store_true",
                       help="synthesize attacks from taint findings "
                            "(L017/L018) instead of replaying a fault "
                            "profile")
    chaos.add_argument("--shards", type=int, default=2, metavar="N",
                       help="mp fabric shards for crash profiles "
                            "(worker-crash only; default: 2)")
    chaos.add_argument("--shard-mode", default="mp", choices=["mp"],
                       help="crash profiles always run the mp fabric "
                            "(worker crashes need worker processes)")
    chaos.add_argument("--restart-budget", type=int, default=5, metavar="N",
                       help="worker restarts allowed per shard before the "
                            "shard is declared failed (default: 5)")
    chaos.add_argument("--checkpoint-interval", type=int, default=2048,
                       metavar="EVENTS",
                       help="events per shard between recovery checkpoints "
                            "(default: 2048)")
    chaos.set_defaults(fn=cmd_chaos)

    serve = sub.add_parser(
        "serve",
        help="live monitor daemon: stream events in, scrape metrics out")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for HTTP and TCP ingest "
                            "(default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=9800,
                       help="HTTP observability port: /metrics /stats "
                            "/healthz /readyz /trace (default: 9800; "
                            "0 picks an ephemeral port)")
    serve.add_argument("--ingest", action="append", default=None,
                       metavar="tcp:PORT|pipe:PATH",
                       help="event source; repeatable (default: tcp:9801). "
                            "tcp:0 picks an ephemeral port; pipe:PATH "
                            "tails newline-JSON frames from a file or FIFO")
    serve.add_argument("--chaos-profile", default="clean",
                       choices=sorted(_chaos_profile_names()),
                       help="run the monitor under a fault profile's "
                            "degradation policy (default: clean)")
    serve.add_argument("--max-queue", type=int, default=4096,
                       help="ingest queue bound; frames beyond it are shed "
                            "into the overflow ledger (default: 4096)")
    serve.add_argument("--poll-interval", type=float, default=1.0,
                       help="gauge sampling period in wall seconds "
                            "(default: 1.0)")
    serve.add_argument("--trace-buffer", type=int, default=512,
                       help="spans kept for /trace, newest first "
                            "(default: 512)")
    serve.add_argument("--spans", default=None, metavar="SPANS.jsonl",
                       help="also append every closed span to this JSONL "
                            "file (crash-safe, one line per span)")
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="drain the ingest queue into a sharded monitor "
                            "fabric of N shards (0 = single monitor)")
    serve.add_argument("--shard-mode", default="mp",
                       choices=["inprocess", "mp"],
                       help="fabric execution mode behind the ingest queue "
                            "(mp forks one worker process per shard)")
    serve.add_argument("--restart-budget", type=int, default=5, metavar="N",
                       help="mp fabric: worker restarts allowed per shard "
                            "before the shard is declared failed "
                            "(default: 5)")
    serve.add_argument("--checkpoint-interval", type=int, default=2048,
                       metavar="EVENTS",
                       help="mp fabric: events per shard between recovery "
                            "checkpoints (default: 2048)")
    serve.add_argument("--report", default=None, metavar="OUT",
                       help="write the final degradation report as JSON "
                            "on shutdown")
    serve.set_defaults(fn=cmd_serve)

    send = sub.add_parser(
        "send", help="stream a recorded trace into a running serve daemon")
    send.add_argument("trace", help="JSONL trace file (from `repro record`)")
    send.add_argument("--host", default="127.0.0.1",
                      help="daemon address (default: 127.0.0.1)")
    send.add_argument("--port", type=int, default=9801,
                      help="daemon TCP ingest port (default: 9801)")
    send.add_argument("--rate", type=float, default=0.0,
                      help="target events/second; 0 = as fast as the "
                           "socket accepts (default: 0)")
    send.add_argument("--retry", type=int, default=0, metavar="N",
                      help="reconnect budget for the whole stream: retry "
                           "refused/lost connections up to N times, "
                           "resending the interrupted chunk")
    send.add_argument("--backoff", type=float, default=0.5, metavar="S",
                      help="base reconnect delay in seconds, doubled per "
                           "consecutive failure (reset on success)")
    send.add_argument("--repeat", type=int, default=1,
                      help="stream the whole trace N times (default: 1)")
    send.add_argument("--format", default="jsonl",
                      choices=["jsonl", "rpf1"],
                      help="wire encoding: newline-JSON lines, or the "
                           "RPF1 framed binary codec (the daemon "
                           "auto-detects either; default: jsonl)")
    send.set_defaults(fn=cmd_send)
    return parser


def _chaos_profile_names() -> List[str]:
    from .netsim.chaos import PROFILES

    return list(PROFILES)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        os._exit(0)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
