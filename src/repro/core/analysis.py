"""Static feature analysis: derive a property's requirements from its IR.

This is the machinery that regenerates **Table 1**: given a
:class:`~repro.core.spec.PropertySpec`, compute which of the paper's
semantic features monitoring it requires.  The rules (documented per
function) are purely structural — they read the specification, never run
it — so the derived columns are a function of how the property is *stated*,
exactly as in the paper.

Classification of instance identification (Feature 8) follows the paper's
definitions:

* **exact** — later observations match on the very fields the instance's
  variables were bound from (the ARP proxy: a request for D, then another
  request for D);
* **symmetric** — later observations match bound values through *renamed or
  inverted* fields within the same protocol family (the stateful firewall:
  A,B bound from src,dst match return packets' dst,src);
* **wandering** — observations with *different protocol* fields map to the
  same instance (DHCP traffic populating state that ARP events consult).

Protocol families: ``{eth,vlan}``, ``{arp}``, ``{ipv4,tcp,udp,icmp,ftp}``
(FTP rides its TCP connection: the paper classifies the FTP property as
symmetric), ``{dhcp}``.  Metadata fields (ports, actions) are family-
neutral.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .features import FeatureRequirements, MatchKind
from .instances import stage_index_plan
from .refs import EventKind, EventPattern, Predicate
from .spec import Absent, Observe, PropertySpec

#: dotted-field prefix -> OSI layer the switch parser must reach
_LAYER_BY_PREFIX: Dict[str, int] = {
    "eth": 2,
    "vlan": 2,
    "arp": 3,
    "ipv4": 3,
    "tcp": 4,
    "udp": 4,
    "icmp": 4,
    "dhcp": 7,
    "ftp": 7,
}

#: dotted-field prefix -> protocol family for match-kind classification
_FAMILY_BY_PREFIX: Dict[str, str] = {
    "eth": "l2",
    "vlan": "l2",
    "arp": "arp",
    "ipv4": "inet",
    "tcp": "inet",
    "udp": "inet",
    "icmp": "inet",
    "ftp": "inet",
    "dhcp": "dhcp",
}


def field_layer(name: str) -> int:
    """Parse depth a field requires (metadata fields require none)."""
    prefix = name.split(".", 1)[0]
    return _LAYER_BY_PREFIX.get(prefix, 2)


def field_family(name: str) -> str:
    prefix = name.split(".", 1)[0]
    return _FAMILY_BY_PREFIX.get(prefix, "meta")


def _all_patterns(prop: PropertySpec) -> Iterable[EventPattern]:
    for stage in prop.stages:
        yield stage.pattern
        for unless in getattr(stage, "unless", ()):
            yield unless


def required_layer(prop: PropertySpec) -> int:
    """Deepest parse layer any guard, bind, or predicate history needs."""
    layer = 2
    for pattern in _all_patterns(prop):
        for name in pattern.referenced_fields():
            layer = max(layer, field_layer(name))
    return layer


def requires_timeouts(prop: PropertySpec) -> bool:
    """F3 — ordinary timeouts.

    True when the property's statement involves durations: an expiring
    positive stage (``Observe.within``), or a negative observation whose
    deadline is part of the property itself (``Absent.semantic_deadline``)
    rather than a bound the monitor imposes for practicality.
    """
    for stage in prop.stages:
        if isinstance(stage, Observe) and stage.within is not None:
            return True
        if isinstance(stage, Absent) and stage.semantic_deadline:
            return True
    return False


def requires_timeout_actions(prop: PropertySpec) -> bool:
    """F7 — any negative observation needs a timer that *acts*."""
    return any(isinstance(stage, Absent) for stage in prop.stages)


def requires_obligation(prop: PropertySpec) -> bool:
    """F4 — persistent obligation.

    Derived from the presence of ``unless`` cancel patterns (the "until
    ..." that partitions the obligation space), unless the property carries
    an explicit ``obligation_override`` — F4 is ultimately a judgement
    about the property's statement (does the monitor hold a pending
    response that may never arrive?), and the Table-1 catalog pins those
    judgements to the paper's.
    """
    if prop.obligation_override is not None:
        return prop.obligation_override
    return any(getattr(stage, "unless", ()) for stage in prop.stages)


def requires_identity(prop: PropertySpec) -> bool:
    """F5 — any stage links to an earlier one via packet identity."""
    return any(
        stage.pattern.same_packet_as is not None for stage in prop.stages
    )


def requires_negative_match(prop: PropertySpec) -> bool:
    """F6 — any guard (in stages or unless patterns) negatively matches."""
    return any(pattern.has_negation for pattern in _all_patterns(prop))


def requires_history(prop: PropertySpec) -> bool:
    """F2 — more than one observation, or guards referencing bound state."""
    if prop.num_stages >= 2:
        return True
    return any(pattern.env_guards() for pattern in _all_patterns(prop))


def requires_drop_visibility(prop: PropertySpec) -> bool:
    """Whether any observation watches packet drops (the Feature 5
    discussion's 'almost universally unsupported' capability)."""
    return any(
        stage.pattern.kind is EventKind.DROP for stage in prop.stages
    ) or any(
        unless.kind is EventKind.DROP
        for stage in prop.stages
        for unless in getattr(stage, "unless", ())
    )


def requires_out_of_band(prop: PropertySpec) -> bool:
    """Whether any pattern observes non-packet (OOB) events."""
    return any(pattern.kind is EventKind.OOB for pattern in _all_patterns(prop))


def requires_multiple_match(prop: PropertySpec) -> bool:
    """F8 (multiple) — some stage beyond the first cannot be narrowed to a
    single instance: its index plan is empty, so one event must be checked
    against (and may advance) every instance waiting there."""
    return any(
        not stage_index_plan(stage)
        for i, stage in enumerate(prop.stages)
        if i >= 1
    )


#: directional field roles: cross-matching a ``.src`` against the same
#: protocol's ``.dst`` is the pair *inversion* that makes instance
#: identification symmetric (the firewall's "A, B match, when inverted,
#: return packets").  Non-directional renamings (e.g. a value bound from
#: ``arp.sender_ip`` matched against ``arp.target_ip``) stay exact: no
#: pair is being flipped, the same atom is matched in both stages.
_DIRECTIONAL_SUFFIXES = {"src": "dst", "dst": "src"}


def _directional_pair(field_a: str, field_b: str) -> bool:
    if "." not in field_a or "." not in field_b:
        return False
    prefix_a, _, suffix_a = field_a.rpartition(".")
    prefix_b, _, suffix_b = field_b.rpartition(".")
    return (
        prefix_a == prefix_b
        and suffix_a in _DIRECTIONAL_SUFFIXES
        and _DIRECTIONAL_SUFFIXES[suffix_a] == suffix_b
    )


def classify_match_kind(prop: PropertySpec) -> MatchKind:
    """F8 — exact / symmetric / wandering, per the module-level rules."""
    if prop.match_kind_override is not None:
        return MatchKind(prop.match_kind_override)
    origin = prop.var_origin()
    kind = MatchKind.EXACT
    for i, stage in enumerate(prop.stages):
        patterns = [stage.pattern] + list(getattr(stage, "unless", ()))
        for pattern in patterns:
            # Predicates with cross-protocol history make the property
            # wandering (DHCP knowledge consulted on an ARP event).
            if _pattern_wanders_via_history(pattern):
                return MatchKind.WANDERING
            if i == 0 and pattern is stage.pattern:
                continue
            for field, var in pattern.env_guards() + pattern.negative_env_refs():
                bound_from = origin.get(var)
                if bound_from is None:
                    continue
                f_fam, b_fam = field_family(field), field_family(bound_from)
                if "meta" in (f_fam, b_fam):
                    continue
                if f_fam != b_fam:
                    return MatchKind.WANDERING
                if _directional_pair(field, bound_from):
                    kind = MatchKind.SYMMETRIC
    return kind


def _pattern_wanders_via_history(pattern: EventPattern) -> bool:
    """A predicate consulting other-protocol history is a wandering match."""
    event_families = {
        field_family(name)
        for guard in pattern.guards
        if isinstance(guard, Predicate)
        for name in guard.fields_used
        if field_family(name) != "meta"
    }
    for guard in pattern.guards:
        if not isinstance(guard, Predicate):
            continue
        for name in guard.history_fields:
            family = field_family(name)
            if family != "meta" and event_families and family not in event_families:
                return True
    return False


def analyze(prop: PropertySpec) -> FeatureRequirements:
    """Derive the full Table-1 row for one property."""
    return FeatureRequirements(
        max_layer=required_layer(prop),
        history=requires_history(prop),
        timeouts=requires_timeouts(prop),
        obligation=requires_obligation(prop),
        identity=requires_identity(prop),
        negative_match=requires_negative_match(prop),
        timeout_actions=requires_timeout_actions(prop),
        match_kind=classify_match_kind(prop),
        multiple_match=requires_multiple_match(prop),
        out_of_band=requires_out_of_band(prop),
        drop_visibility=requires_drop_visibility(prop),
    )
