"""The property-monitor engine — the paper's "ideal switch monitor".

The :class:`Monitor` consumes the dataplane event stream (attach it to a
switch with ``switch.add_tap(monitor.observe)``, or replay a recorded trace
into it) and tracks, per property, a population of instances — partially
completed violation witnesses.  It implements all the semantic features of
Sec. 2:

* F1  field access        — guards read the flat event field map, truncated
                            at the monitor's ``max_layer`` parse capability;
* F2  event history       — instances persist across packets;
* F3  timeouts            — ``Observe.within`` expires stale instances, and
                            re-seeing stage 0 for an existing key refreshes;
* F4  persistent obligation — ``unless`` patterns cancel waiting instances;
* F5  packet identity     — ``same_packet_as`` compares packet uids;
* F6  negative match      — ``FieldNe`` / ``MismatchAny`` guards;
* F7  timeout actions     — ``Absent`` stages advance (and may fire a
                            violation) when their timer elapses with no
                            discharging event;
* F8  instance identification — exact/symmetric/wandering matching via the
                            indexed store; multiple match via scan stages;
* F9  side-effect control — ``ProcessingMode.INLINE`` applies monitor state
                            transitions atomically with event processing;
                            ``SPLIT`` defers them by ``split_lag`` seconds,
                            letting monitor state lag behind the traffic
                            (observable monitor errors, per the paper);
* F10 provenance          — NONE / LIMITED / FULL per-stage recording.

Timer ordering: when an event at time *t* arrives, all timers with deadline
``<= t`` fire first.  This is what makes "a drop that comes after a valid
timeout will still trigger a violation" come out *false* once the property
carries its timeout — the instance is gone before the late drop is seen.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..netsim.scheduler import EventScheduler
from ..switch.events import DataplaneEvent
from ..switch.registers import StateCostMeter
from ..switch.switch import DEFAULT_SPLIT_LAG, ProcessingMode
from ..telemetry import NULL_TRACER, MetricsRegistry, NullRegistry, Tracer
from ..telemetry.metrics import COUNT_BUCKETS, LATENCY_BUCKETS
from .compile import CompiledPattern, compile_pattern, dispatch_plan
from .degradation import (
    IMPACT_FALSE,
    IMPACT_MISSED,
    DegradationPolicy,
    OverflowLedger,
    classify_op,
)
from .instances import Instance, InstanceStore, make_store, uid_var
from .provenance import ProvenanceLevel, StageRecord, record_stage
from .refs import EventKind, EventPattern, event_fields, kind_matches
from .spec import Absent, Observe, PropertySpec, refresh_applies
from .violations import Violation

ViolationSink = Callable[[Violation], None]


@dataclass(frozen=True)
class InstanceCheckpoint:
    """One live instance, flattened to picklable values.

    Specs do not pickle (compiled predicate closures), so an instance is
    exported by property *name* and re-linked to the spec on restore.
    Everything else — bindings, stage, deadlines, provenance records —
    is plain data.
    """

    prop: str
    key: Tuple
    env: Dict[str, object]
    stage: int
    created_at: float
    advanced_at: float
    deadline: Optional[float]
    deadline_kind: str
    provenance: Tuple[object, ...]


@dataclass(frozen=True)
class MonitorState:
    """A picklable checkpoint of a monitor's recoverable state.

    Covers every live instance (with its armed timer) and the clock.
    Deferred split-mode ops are *not* exportable — they hold spec and
    instance references — so their count is carried instead; a restore
    path that cares (the fabric supervisor) ledgers them as lost.
    """

    now: float
    instances: Tuple[InstanceCheckpoint, ...]
    lost_pending_ops: int = 0

#: the empty env stage-0 patterns match against (never written to).
_EMPTY_ENV: Dict[str, object] = {}

MATCH_STRATEGIES = ("compiled", "interpreted", "codegen")

#: events per columnar chunk in the codegen batch path.  Bounds the
#: per-chunk packet-fields cache (keyed by ``id(packet)``) so replaying a
#: long trace never pins every packet's field map at once.
CODEGEN_CHUNK = 1024


class MonitorStats:
    """The counters the benchmarks read — a thin view over the registry.

    Historically a dataclass of loose ints; every field is now backed by
    a registry instrument, so ``monitor.stats.events`` and the exported
    ``repro_monitor_events_total`` sample are the SAME cell (no double
    counting, one source of truth).  Works against the default
    :class:`~repro.telemetry.NullRegistry` too: its counters still count,
    they just export nothing.
    """

    _COUNTERS = {
        "events": "repro_monitor_events_total",
        "violations": "repro_monitor_violations_total",
        "instances_created": "repro_monitor_instances_created_total",
        "instances_expired": "repro_monitor_instances_expired_total",
        "instances_discharged": "repro_monitor_instances_discharged_total",
        "instances_cancelled": "repro_monitor_instances_cancelled_total",
        "timer_advances": "repro_monitor_timer_advances_total",
        "refreshes": "repro_monitor_refreshes_total",
        "candidates_examined": "repro_monitor_candidates_examined_total",
        "ops_applied": "repro_monitor_ops_applied_total",
        "instances_evicted": "repro_monitor_instances_evicted_total",
        "instances_rejected": "repro_monitor_instances_rejected_total",
        "ops_shed": "repro_monitor_ops_shed_total",
        "op_retries": "repro_monitor_op_retries_total",
    }
    _GAUGES = {
        "peak_live_instances": "repro_monitor_live_instances",
        "peak_pending_ops": "repro_monitor_pending_ops",
    }

    __slots__ = ("_registry",)

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry if registry is not None else NullRegistry()

    def __getattr__(self, name: str) -> int:
        counter = self._COUNTERS.get(name)
        if counter is not None:
            return int(self._registry.counter(counter).value)
        gauge = self._GAUGES.get(name)
        if gauge is not None:
            return int(self._registry.gauge(gauge).high_watermark)
        raise AttributeError(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = {name: getattr(self, name)
                  for name in (*self._COUNTERS, *self._GAUGES)}
        inner = ", ".join(f"{k}={v}" for k, v in fields.items())
        return f"MonitorStats({inner})"


# ---------------------------------------------------------------------------
# Planned state transitions (the unit Feature 9 defers)
# ---------------------------------------------------------------------------
@dataclass
class _Op:
    kind: str  # "create" | "advance" | "kill" | "refresh"
    prop: PropertySpec
    instance: Optional[Instance] = None
    key: Tuple = ()
    env: Dict[str, object] = field(default_factory=dict)
    binds: Dict[str, object] = field(default_factory=dict)
    event: Optional[DataplaneEvent] = None
    reason: str = ""
    time: float = 0.0


def _op_uid(op: _Op) -> Optional[int]:
    """Packet uid of the event behind an op, for trace-span correlation."""
    packet = getattr(op.event, "packet", None)
    return packet.uid if packet is not None else None


# ---------------------------------------------------------------------------
# Compiled dispatch plans (the fast path built at add_property time)
# ---------------------------------------------------------------------------
class _PropPlan:
    """One property's pre-resolved watchers for ONE concrete event class.

    Built once when the property is registered; ``_evaluate_compiled``
    walks only these.  Phase structure mirrors the interpreted engine:
    ``cancels`` (unless cancellations and Absent discharges, in stage
    order with unless before discharge per stage), then ``advances``
    (positive stages), then ``create`` (stage 0).
    """

    __slots__ = ("prop", "store", "cancels", "advances", "create")

    def __init__(self, prop: PropertySpec, store: InstanceStore) -> None:
        self.prop = prop
        self.store = store
        #: tuple of (is_unless, stage_idx, matcher-or-matchers)
        self.cancels: Tuple = ()
        #: tuple of (stage_idx, match_instance, capture, bindable, uid_key)
        self.advances: Tuple = ()
        #: None, or (guards_match, capture, bindable, uid_key, key_vars,
        #: refresh_ok)
        self.create = None


def _build_prop_plans(
    prop: PropertySpec,
    store: InstanceStore,
    refresh_ok: bool,
    compiled: Dict[int, CompiledPattern],
) -> Dict[type, _PropPlan]:
    """Compile one property's dispatch plans, one per concrete event class.

    ``compiled`` caches CompiledPatterns by ``id(pattern)`` so a pattern
    watched from several event classes (ANY_PACKET) compiles once.
    """

    def get(pattern: EventPattern) -> CompiledPattern:
        cached = compiled.get(id(pattern))
        if cached is None:
            cached = compile_pattern(pattern)
            compiled[id(pattern)] = cached
        return cached

    plans: Dict[type, _PropPlan] = {}
    raw = dispatch_plan(prop)
    for cls, watchers in raw.items():
        plan = _PropPlan(prop, store)
        cancels: List[Tuple] = []
        unless_at: Dict[int, List] = {}
        discharge_at: Dict[int, CompiledPattern] = {}
        advances: List[Tuple] = []
        for watcher in watchers:
            cp = get(watcher.pattern)
            if watcher.role == "unless":
                unless_at.setdefault(watcher.stage_idx, []).append(
                    cp.match_instance)
            elif watcher.role == "discharge":
                discharge_at[watcher.stage_idx] = cp
            elif watcher.role == "advance":
                stage = prop.stages[watcher.stage_idx]
                advances.append((
                    watcher.stage_idx,
                    cp.match_instance,
                    cp.capture,
                    cp.bindable,
                    uid_var(stage.name),
                ))
            else:  # create
                stage0 = prop.stages[0]
                plan.create = (
                    cp.guards_match,
                    cp.capture,
                    cp.bindable,
                    uid_var(stage0.name),
                    prop.key_vars,
                    refresh_ok,
                )
        for stage_idx in sorted(set(unless_at) | set(discharge_at)):
            matchers = unless_at.get(stage_idx)
            if matchers:
                cancels.append((True, stage_idx, tuple(matchers)))
            cp = discharge_at.get(stage_idx)
            if cp is not None:
                cancels.append((False, stage_idx, cp.match_instance))
        plan.cancels = tuple(cancels)
        plan.advances = tuple(sorted(advances, key=lambda a: a[0]))
        plans[cls] = plan
    return plans


class Monitor:
    """Cross-packet property monitor over a dataplane event stream."""

    def __init__(
        self,
        scheduler: Optional[EventScheduler] = None,
        provenance: ProvenanceLevel = ProvenanceLevel.LIMITED,
        store_strategy: str = "indexed",
        match_strategy: str = "compiled",
        mode: ProcessingMode = ProcessingMode.INLINE,
        split_lag: float = DEFAULT_SPLIT_LAG,
        max_layer: int = 7,
        meter: Optional[StateCostMeter] = None,
        slow_path_updates: bool = False,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        degradation: Optional[DegradationPolicy] = None,
        op_faults: Optional[object] = None,
        key_filter: Optional[Callable[[str, Tuple[object, ...]], bool]] = None,
    ) -> None:
        if match_strategy not in MATCH_STRATEGIES:
            raise ValueError(
                f"unknown match strategy {match_strategy!r} "
                f"(expected one of {MATCH_STRATEGIES})")
        self.scheduler = scheduler
        self.provenance = provenance
        self.store_strategy = store_strategy
        self.match_strategy = match_strategy
        self.mode = mode
        self.split_lag = split_lag
        self.max_layer = max_layer
        self.meter = meter
        self.slow_path_updates = slow_path_updates
        #: bounded-state policy (None = classic unbounded monitor)
        self.degradation = degradation
        #: control-channel fault source for deferred ops: any object with
        #: ``perturb() -> Optional[float]`` (None = drop the update, float
        #: = extra lag); see ControlFaultProfile.channel() in netsim.chaos.
        self.op_faults = op_faults
        #: ownership predicate ``(prop_name, key) -> bool`` consulted before
        #: creating an instance.  The sharded fabric (repro.fabric) installs
        #: one per shard so each instance key has exactly one owner even when
        #: an event batch is forwarded to several shards; None = own all keys.
        self.key_filter = key_filter
        self.ledger = OverflowLedger()
        self.registry = registry if registry is not None else NullRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._init_instruments()
        self.stats = MonitorStats(self.registry)
        self.violations: List[Violation] = []
        self._sinks: List[ViolationSink] = []
        self._props: Dict[str, PropertySpec] = {}
        self._stores: Dict[str, InstanceStore] = {}
        #: concrete event class -> per-property compiled plans, in
        #: property registration order (the compiled fast path).
        self._dispatch: Dict[type, List[_PropPlan]] = {}
        #: live instances across all stores, maintained incrementally so
        #: the telemetry-disabled path never iterates stores per event.
        self._live_total = 0
        if match_strategy == "compiled":
            self._evaluate = self._evaluate_compiled
        elif match_strategy == "codegen":
            self._evaluate = self._evaluate_codegen
        else:
            self._evaluate = self._evaluate_interpreted
        #: the exec'd codegen program; built lazily on first evaluation
        #: and invalidated whenever a property is added.
        self._codegen_program = None
        self._wheel: List[Tuple[float, int, Instance, int]] = []
        self._wheel_seq = itertools.count()
        self._timer_gens: Dict[int, int] = {}  # instance_id -> generation
        self._pending: List[Tuple[float, int, _Op]] = []  # split-mode queue
        self._pending_seq = itertools.count()
        #: backpressured ops awaiting a retry slot: (retry_at, seq,
        #: next_attempt, ideal_apply_at, op)
        self._retry: List[Tuple[float, int, int, float, _Op]] = []
        self._retry_seq = itertools.count()
        self._now = 0.0
        #: set by start(); None for replay monitors that never start()
        self.started_at: Optional[float] = None

    def _init_instruments(self) -> None:
        """Cache hot-path instrument handles (no per-event dict lookups)."""
        r = self.registry
        self._c_events = r.counter(
            "repro_monitor_events_total",
            help="Dataplane events the monitor observed")
        self._c_violations = r.counter(
            "repro_monitor_violations_total", help="Violations raised")
        self._c_created = r.counter(
            "repro_monitor_instances_created_total",
            help="Monitor instances created (stage-0 matches)")
        self._c_expired = r.counter(
            "repro_monitor_instances_expired_total",
            help="Instances expired by a within deadline (F3)")
        self._c_discharged = r.counter(
            "repro_monitor_instances_discharged_total",
            help="Absent stages discharged by the awaited event (F7)")
        self._c_cancelled = r.counter(
            "repro_monitor_instances_cancelled_total",
            help="Instances cancelled by an unless pattern (F4)")
        self._c_timer_advances = r.counter(
            "repro_monitor_timer_advances_total",
            help="Stage advances driven by timeout actions (F7)")
        self._c_refreshes = r.counter(
            "repro_monitor_refreshes_total",
            help="Stage-0 refreshes of existing instances")
        self._c_candidates = r.counter(
            "repro_monitor_candidates_examined_total",
            help="Instances examined as advance/discharge candidates")
        self._c_ops = r.counter(
            "repro_monitor_ops_applied_total",
            help="State transitions applied (inline or after split lag)")
        self._g_live = r.gauge(
            "repro_monitor_live_instances",
            help="Live instances across all monitored properties")
        self._g_pending = r.gauge(
            "repro_monitor_pending_ops",
            help="Split-mode state transitions still in flight")
        self._h_candidates = r.histogram(
            "repro_monitor_candidates_per_event",
            help="Candidate-scan width per observed event",
            buckets=COUNT_BUCKETS)
        self._h_pending_depth = r.histogram(
            "repro_monitor_pending_queue_depth",
            help="Pending-op queue depth sampled at each split-mode enqueue",
            buckets=COUNT_BUCKETS)
        self._c_evicted = r.counter(
            "repro_monitor_instances_evicted_total",
            help="Instances evicted by a bounded store's eviction policy")
        self._c_rejected = r.counter(
            "repro_monitor_instances_rejected_total",
            help="Creations rejected by a full bounded store (reject-new)")
        self._c_shed_ops = r.counter(
            "repro_monitor_ops_shed_total",
            help="Split-mode ops shed: control-channel drops plus "
                 "backpressure give-ups")
        self._c_op_retries = r.counter(
            "repro_monitor_op_retries_total",
            help="Split-mode ops deferred by pending-queue backpressure")
        self._h_backoff = r.histogram(
            "repro_monitor_retry_backoff_seconds",
            help="Backoff applied to backpressured split-mode ops",
            unit="seconds",
            buckets=LATENCY_BUCKETS)
        # Per-property handles, filled in by add_property.
        self._stage_advance_counters: Dict[str, Tuple] = {}
        self._prop_violation_counters: Dict[str, object] = {}
        self._prop_live_gauges: Dict[str, object] = {}

    # -- configuration -------------------------------------------------------
    def add_property(self, prop: PropertySpec) -> None:
        if prop.name in self._props:
            raise ValueError(f"duplicate property {prop.name!r}")
        self._props[prop.name] = prop
        capacity = (
            self.degradation.max_instances
            if self.degradation is not None else None
        )
        self._stores[prop.name] = make_store(
            prop, self.store_strategy, capacity=capacity)
        r = self.registry
        self._stage_advance_counters[prop.name] = tuple(
            r.counter(
                "repro_monitor_stage_advances_total",
                help="Stage advances per property and stage",
                labels={"property": prop.name, "stage": stage.name})
            for stage in prop.stages
        )
        self._prop_violation_counters[prop.name] = r.counter(
            "repro_monitor_property_violations_total",
            help="Violations per property",
            labels={"property": prop.name})
        self._prop_live_gauges[prop.name] = r.gauge(
            "repro_instance_store_live_instances",
            help="Live instances in one property's store",
            labels={"property": prop.name})
        # Compile the dispatch plan: per concrete event class, the exact
        # watchers this property contributes.  Built for both match
        # strategies (it is cheap, one-time, and introspectable); only
        # the compiled evaluator walks it.
        refresh_ok = self._should_refresh(prop, prop.stages[0])
        compiled_cache: Dict[int, CompiledPattern] = {}
        for cls, plan in _build_prop_plans(
            prop, self._stores[prop.name], refresh_ok, compiled_cache
        ).items():
            self._dispatch.setdefault(cls, []).append(plan)
        self._codegen_program = None  # stale: rebuilt on next evaluation

    def dispatch_sizes(self) -> Dict[str, int]:
        """Watchers the monitor touches per concrete event class.

        The dispatch plan's size — what one event of each class costs in
        stage visits, before any candidate scan.
        """
        out: Dict[str, int] = {}
        for cls, plans in self._dispatch.items():
            out[cls.__name__] = sum(
                len(p.cancels) + len(p.advances) + (1 if p.create else 0)
                for p in plans
            )
        return dict(sorted(out.items()))

    def on_violation(self, sink: ViolationSink) -> None:
        self._sinks.append(sink)

    def store(self, prop_name: str) -> InstanceStore:
        return self._stores[prop_name]

    def live_instances(self) -> int:
        return sum(s.live_count for s in self._stores.values())

    @property
    def now(self) -> float:
        return self._now

    # -- event intake ----------------------------------------------------------
    def observe(self, event: DataplaneEvent) -> None:
        """Process one dataplane event (the tap entry point)."""
        self.advance_to(event.time)
        self._c_events.inc()
        telemetry = self.registry.enabled
        candidates_before = self._c_candidates.value if telemetry else 0.0
        fields = event_fields(event, max_layer=self.max_layer)
        ops = self._evaluate(event, fields)
        if self.mode is ProcessingMode.INLINE:
            for op in ops:
                self._apply(op)
        elif self.op_faults is None and self.degradation is None:
            apply_at = event.time + self.split_lag
            for op in ops:
                heapq.heappush(
                    self._pending, (apply_at, next(self._pending_seq), op)
                )
            self._g_pending.set(len(self._pending))
            if telemetry and ops:
                self._h_pending_depth.observe(len(self._pending))
            if self.scheduler is not None:
                self.scheduler.call_at(
                    apply_at, lambda t=apply_at: self.advance_to(t),
                    label="monitor-split-apply",
                )
        else:
            # Degraded split path: each op individually traverses the
            # (possibly faulty) control channel and the bounded queue.
            apply_at = event.time + self.split_lag
            for op in ops:
                self._enqueue_split(op, apply_at, attempt=0)
            self._g_pending.set(len(self._pending))
            if telemetry and ops:
                self._h_pending_depth.observe(len(self._pending))
        if telemetry:
            self._h_candidates.observe(
                self._c_candidates.value - candidates_before
            )
        self._track_peak()

    def observe_batch(self, events: Sequence[DataplaneEvent]) -> None:
        """Process a sequence of events (the replay entry point).

        Semantically ``for e in events: self.observe(e)``; when the
        monitor runs inline with telemetry disabled — the configuration
        replay throughput is measured in — the per-event loop runs with
        hot-path attribute lookups hoisted to locals.
        """
        if self.mode is not ProcessingMode.INLINE or self.registry.enabled:
            for event in events:
                self.observe(event)
            return
        if self.match_strategy == "codegen":
            self._run_codegen_batch(events)
            return
        advance_to = self.advance_to
        inc_event = self._c_events.inc
        evaluate = self._evaluate
        apply_op = self._apply
        set_live = self._g_live.set
        max_layer = self.max_layer
        for event in events:
            advance_to(event.time)
            inc_event()
            ops = evaluate(event, event_fields(event, max_layer=max_layer))
            for op in ops:
                apply_op(op)
            set_live(float(self._live_total))

    def advance_to(self, when: float) -> None:
        """Move monitor time forward, firing due timers and pending ops.

        Pending split-mode ops, backpressure retries, and timer deadlines
        are interleaved in time order, so a deferred creation still arms
        its timer before a later deadline fires.
        """
        if when < self._now:
            return  # events carry non-decreasing times; tolerate equal
        pending = self._pending
        wheel = self._wheel
        retry = self._retry
        while pending or wheel or retry:
            next_pending = pending[0][0] if pending else None
            next_timer = wheel[0][0] if wheel else None
            next_retry = retry[0][0] if retry else None
            # A due retry re-enters the queue before any later work runs:
            # it was already perturbed, it is only waiting for a slot.
            if next_retry is not None and (
                (next_pending is None or next_retry <= next_pending)
                and (next_timer is None or next_retry <= next_timer)
            ):
                if next_retry > when:
                    break
                retry_at, _, attempt, ideal_at, op = heapq.heappop(retry)
                if retry_at > self._now:
                    self._now = retry_at
                self._enqueue_split(op, ideal_at, attempt)
                continue
            if next_pending is not None and (
                next_timer is None or next_pending <= next_timer
            ):
                if next_pending > when:
                    break
                _, _, op = heapq.heappop(pending)
                if next_pending > self._now:
                    self._now = next_pending
                # Drains go through Gauge.set like every other call site,
                # keeping the watermark bookkeeping in one place (a drain
                # only lowers the value, so the peak is unaffected).
                self._g_pending.set(float(len(pending)))
                self._apply(op)
                continue
            if next_timer is None or next_timer > when:
                break
            deadline, _, instance, gen = heapq.heappop(wheel)
            if deadline > self._now:
                self._now = deadline
            self._fire_timer(instance, gen, deadline)
        if when > self._now:
            self._now = when

    def _enqueue_split(self, op: _Op, apply_at: float, attempt: int) -> None:
        """Route one deferred op through the control channel and the
        bounded pending queue (degraded split mode only).

        First attempt: the op may be dropped or delayed by ``op_faults``.
        When the queue is at ``max_pending_ops``, the op backs off
        (``retry_backoff * 2**attempt``) up to ``max_retries`` times, then
        is shed.  Every drop/shed/late-apply lands in the ledger.
        """
        if attempt == 0 and self.op_faults is not None:
            extra = self.op_faults.perturb()
            if extra is None:
                self._c_shed_ops.inc()
                self.ledger.record(
                    "op-dropped", op.prop.name, op.kind, op.time,
                    classify_op(op.kind, "dropped"))
                return
            if extra > 0.0:
                apply_at += extra
                self.ledger.record(
                    "op-delayed", op.prop.name, op.kind, op.time,
                    classify_op(op.kind, "delayed"))
        policy = self.degradation
        limit = policy.max_pending_ops if policy is not None else None
        if limit is not None and len(self._pending) >= limit:
            if attempt >= policy.max_retries:
                self._c_shed_ops.inc()
                self.ledger.record(
                    "op-shed", op.prop.name, op.kind, op.time,
                    classify_op(op.kind, "dropped"))
                return
            backoff = policy.retry_backoff * (2.0 ** attempt)
            retry_at = max(self._now, op.time) + backoff
            self._c_op_retries.inc()
            self._h_backoff.observe(backoff)
            if retry_at > apply_at:
                # The op cannot possibly apply on time any more.
                self.ledger.record(
                    "op-retried", op.prop.name, op.kind, op.time,
                    classify_op(op.kind, "delayed"))
            heapq.heappush(
                self._retry,
                (retry_at, next(self._retry_seq), attempt + 1, apply_at, op))
            if self.scheduler is not None:
                self.scheduler.call_at(
                    retry_at, lambda t=retry_at: self.advance_to(t),
                    label="monitor-split-retry")
            return
        heapq.heappush(
            self._pending, (apply_at, next(self._pending_seq), op))
        if self.scheduler is not None:
            wake_at = max(apply_at, self._now)
            self.scheduler.call_at(
                wake_at, lambda t=wake_at: self.advance_to(t),
                label="monitor-split-apply")

    def pending_op_count(self) -> int:
        """Deferred ops still in flight (queued plus awaiting retry)."""
        return len(self._pending) + len(self._retry)

    # -- evaluation (read-only against current state) ---------------------------
    def _evaluate_compiled(
        self, event: DataplaneEvent, fields: Mapping[str, object]
    ) -> List[_Op]:
        """Dispatch-planned evaluation with compiled matchers (default).

        Touches only the ``(property, stage, role)`` watchers registered
        for this event's concrete class; guard trees were compiled to
        closures at ``add_property`` time.  Produces exactly the ops the
        interpreted walk would — the differential property test holds
        the two paths to identical violations and counters.
        """
        ops: List[_Op] = []
        plans = self._dispatch.get(type(event))
        if not plans:
            return ops
        t = event.time
        inc_candidate = self._c_candidates.inc
        key_filter = self.key_filter
        has_uid = "uid" in fields
        uid = fields["uid"] if has_uid else None
        for plan in plans:
            store = plan.store
            doomed = None  # allocated lazily; most events doom nothing

            # 1. Cancellations: unless patterns (Feature 4) and Absent
            #    discharges (the awaited event happened: obligation met).
            for is_unless, stage_idx, matcher in plan.cancels:
                if is_unless:
                    for inst in store.at_stage(stage_idx):
                        if doomed is not None and inst.instance_id in doomed:
                            continue
                        for match_instance in matcher:
                            if match_instance(fields, inst):
                                if doomed is None:
                                    doomed = set()
                                doomed.add(inst.instance_id)
                                ops.append(_Op(
                                    "kill", plan.prop, instance=inst,
                                    reason="unless", time=t))
                                break
                else:
                    for inst in store.candidates(stage_idx, fields):
                        if inst.stage != stage_idx or (
                            doomed is not None
                            and inst.instance_id in doomed
                        ):
                            continue
                        inc_candidate()
                        if matcher(fields, inst):
                            if doomed is None:
                                doomed = set()
                            doomed.add(inst.instance_id)
                            ops.append(_Op(
                                "kill", plan.prop, instance=inst,
                                reason="discharged", time=t))

            # 2. Advancement of positive stages.
            for stage_idx, match_instance, capture, bindable, uid_key in \
                    plan.advances:
                for inst in store.candidates(stage_idx, fields):
                    if inst.stage != stage_idx or (
                        doomed is not None and inst.instance_id in doomed
                    ):
                        continue
                    inc_candidate()
                    if not match_instance(fields, inst):
                        continue
                    if not bindable(fields):
                        continue
                    binds = capture(fields)
                    if has_uid:
                        binds[uid_key] = uid
                    if doomed is None:
                        doomed = set()
                    doomed.add(inst.instance_id)  # one transition/event
                    ops.append(_Op(
                        "advance", plan.prop, instance=inst, binds=binds,
                        event=event, time=t))

            # 3. Creation / refresh at stage 0.
            if plan.create is not None:
                (guards_match, capture, bindable, uid_key, key_vars,
                 refresh_ok) = plan.create
                if guards_match(fields, _EMPTY_ENV) and bindable(fields):
                    env0 = capture(fields)
                    if has_uid:
                        env0[uid_key] = uid
                    key = tuple(env0[k] for k in key_vars)
                    if key_filter is not None and not key_filter(
                        plan.prop.name, key
                    ):
                        continue
                    existing = store.by_key(key)
                    if existing is not None and existing.alive:
                        if (
                            existing.stage == 1
                            and refresh_ok
                            and (doomed is None
                                 or existing.instance_id not in doomed)
                        ):
                            ops.append(_Op(
                                "refresh", plan.prop, instance=existing,
                                binds=env0, event=event, time=t))
                    else:
                        ops.append(_Op(
                            "create", plan.prop, key=key, env=env0,
                            event=event, time=t))
        return ops

    # -- codegen strategy (source-specialized matchers) -------------------------
    def _build_codegen(self):
        """Emit and exec the specialized program for the current properties.

        Deferred import: :mod:`repro.core.codegen` imports from
        :mod:`repro.core.compile`, and the ``_Op`` class lives here.
        """
        from .codegen import build_program

        entries = [
            (prop, self._stores[name],
             self._should_refresh(prop, prop.stages[0]))
            for name, prop in self._props.items()
        ]
        program = build_program(
            entries, host=self, op_cls=_Op,
            inc_candidates=self._c_candidates.inc,
            max_layer=self.max_layer,
        )
        self._codegen_program = program
        return program

    def codegen_source(self) -> str:
        """The full generated-program source (``repro explain --codegen``)."""
        program = self._codegen_program
        if program is None:
            program = self._build_codegen()
        return program.source

    def codegen_emissions(self):
        """Per-property emission stats off the generated program — the
        *measured* side of the lint calibration's codegen cost model
        (``repro.lint.calibration.CALIBRATION_CODEGEN``)."""
        program = self._codegen_program
        if program is None:
            program = self._build_codegen()
        return dict(program.emissions)

    def _evaluate_codegen(
        self, event: DataplaneEvent, fields: Mapping[str, object]
    ) -> List[_Op]:
        """Straight-line generated matchers (``match_strategy="codegen"``).

        One exec'd function per concrete event class: field reads are
        hoisted to locals, constants folded into compares, store probes
        inlined.  Produces exactly the ops ``_evaluate_compiled`` would —
        the differential property suite holds all three strategies to
        identical violations, counters, and ledgers.
        """
        program = self._codegen_program
        if program is None:
            program = self._build_codegen()
        fn = program.eval_fns.get(type(event))
        if fn is None:
            return []
        return fn(event, fields)

    def _run_codegen_batch(self, events: Sequence[DataplaneEvent]) -> None:
        """Columnar batch driver behind ``observe_batch`` for codegen.

        Chunks the stream (so the per-chunk packet-fields cache stays
        bounded), transposes each same-class run into a
        :class:`~repro.core.codegen.ColumnarBatch` — per-field columns
        built once, stage-0 prefilters matched against whole columns —
        then evaluates events in order against their column rows.
        Semantically ``for e in events: self.observe(e)``.
        """
        program = self._codegen_program
        if program is None:
            program = self._build_codegen()
        advance_to = self.advance_to
        inc_event = self._c_events.inc
        apply_op = self._apply
        set_live = self._g_live.set
        columnar = program.columnar
        batch_fns = program.batch_fns
        for start in range(0, len(events), CODEGEN_CHUNK):
            chunk = events[start:start + CODEGEN_CHUNK]
            pf_cache: Dict[int, Mapping[str, object]] = {}
            # Partition the chunk by concrete class and transpose each
            # class's events into columns ONCE — the stream interleaves
            # classes, so transposing per consecutive run would rebuild
            # columns every couple of events.  Column and prefilter
            # contents are state-independent (stage 0 cannot reference
            # bound variables), so hoisting them ahead of evaluation
            # cannot change results; events are then evaluated strictly
            # in stream order via per-class cursors.
            by_cls: Dict[type, List[DataplaneEvent]] = {}
            for event in chunk:
                cls = type(event)
                run = by_cls.get(cls)
                if run is None:
                    by_cls[cls] = [event]
                else:
                    run.append(event)
            prepped: Dict[type, Optional[Tuple]] = {}
            for cls, run in by_cls.items():
                batch = columnar(cls, run, pf_cache)
                # None: no plans watch this class (e.g. TimerFired) —
                # such events still advance the clock and count below.
                prepped[cls] = None if batch is None else (
                    batch_fns[cls].eval_batch, batch.columns, batch.creates)
            cursor = dict.fromkeys(by_cls, 0)
            for event in chunk:
                cls = type(event)
                i = cursor[cls]
                cursor[cls] = i + 1
                advance_to(event.time)
                inc_event()
                prep = prepped[cls]
                if prep is not None:
                    eval_batch, columns, creates = prep
                    for op in eval_batch(event, columns, i, creates):
                        apply_op(op)
                set_live(float(self._live_total))

    def _evaluate_interpreted(
        self, event: DataplaneEvent, fields: Mapping[str, object]
    ) -> List[_Op]:
        """The ablation baseline: walk every property and every stage,
        evaluating interpreted guard trees (``EventPattern.matches``).
        Kept verbatim as ``match_strategy="interpreted"`` so the
        dispatch+compiled fast path stays measurable and refutable."""
        ops: List[_Op] = []
        t = event.time
        for prop in self._props.values():
            store = self._stores[prop.name]
            doomed: Set[int] = set()

            # 1. Cancellations: unless patterns (Feature 4) and Absent
            #    discharges (the awaited event happened: obligation met).
            for stage_idx in range(1, prop.num_stages):
                stage = prop.stages[stage_idx]
                unless = getattr(stage, "unless", ())
                if unless:
                    for inst in store.at_stage(stage_idx):
                        if inst.instance_id in doomed:
                            continue
                        for pattern in unless:
                            if self._pattern_matches(pattern, event, fields, inst):
                                doomed.add(inst.instance_id)
                                ops.append(_Op("kill", prop, instance=inst,
                                               reason="unless", time=t))
                                break
                if isinstance(stage, Absent) and kind_matches(
                    stage.pattern.kind, event
                ):
                    for inst in store.candidates(stage_idx, fields):
                        if inst.stage != stage_idx or inst.instance_id in doomed:
                            continue
                        self._c_candidates.inc()
                        if self._pattern_matches(stage.pattern, event, fields, inst):
                            doomed.add(inst.instance_id)
                            ops.append(_Op("kill", prop, instance=inst,
                                           reason="discharged", time=t))

            # 2. Advancement of positive stages.
            for stage_idx in range(1, prop.num_stages):
                stage = prop.stages[stage_idx]
                if isinstance(stage, Absent):
                    continue
                if not kind_matches(stage.pattern.kind, event):
                    continue
                for inst in store.candidates(stage_idx, fields):
                    if inst.stage != stage_idx or inst.instance_id in doomed:
                        continue
                    self._c_candidates.inc()
                    if not self._pattern_matches(stage.pattern, event, fields, inst):
                        continue
                    if not stage.pattern.bindable(fields):
                        continue
                    binds = dict(stage.pattern.capture(fields))
                    if "uid" in fields:
                        binds[uid_var(stage.name)] = fields["uid"]
                    doomed.add(inst.instance_id)  # at most one transition/event
                    ops.append(_Op("advance", prop, instance=inst, binds=binds,
                                   event=event, time=t))

            # 3. Creation / refresh at stage 0.
            stage0 = prop.stages[0]
            pattern0 = stage0.pattern
            if (
                kind_matches(pattern0.kind, event)
                and pattern0.matches(event, fields, {})
                and pattern0.bindable(fields)
            ):
                env0 = pattern0.capture(fields)
                if "uid" in fields:
                    env0[uid_var(stage0.name)] = fields["uid"]
                key = tuple(env0[k] for k in prop.key_vars)
                if self.key_filter is not None and not self.key_filter(
                    prop.name, key
                ):
                    continue
                existing = store.by_key(key)
                if existing is not None and existing.alive:
                    if existing.stage == 1 and existing.instance_id not in doomed:
                        if self._should_refresh(prop, stage0):
                            ops.append(_Op("refresh", prop, instance=existing,
                                           binds=env0, event=event, time=t))
                else:
                    ops.append(_Op("create", prop, key=key, env=env0,
                                   event=event, time=t))
        return ops

    def _should_refresh(self, prop: PropertySpec, stage0: Observe) -> bool:
        # Feature 7 subtlety folded in spec.refresh_applies: with the sound
        # "never" policy a repeated prior observation must NOT reset the
        # negative-observation timer, or a request storm every T-1 seconds
        # evades detection.  Shared with the codegen backend so every
        # strategy folds the same policy.
        return refresh_applies(prop)

    def _pattern_matches(
        self,
        pattern: EventPattern,
        event: DataplaneEvent,
        fields: Mapping[str, object],
        instance: Instance,
    ) -> bool:
        if pattern.same_packet_as is not None:
            expected = instance.env.get(uid_var(pattern.same_packet_as))
            if expected is None or fields.get("uid") != expected:
                return False
        return pattern.matches(event, fields, instance.env)

    # -- state transitions -------------------------------------------------------
    def _apply(self, op: _Op) -> None:
        self._c_ops.inc()
        self._charge()
        if op.kind == "create":
            self._apply_create(op)
        elif op.kind == "advance":
            self._apply_advance(op)
        elif op.kind == "kill":
            self._apply_kill(op)
        elif op.kind == "refresh":
            self._apply_refresh(op)
        else:  # pragma: no cover - internal invariant
            raise ValueError(f"unknown op kind {op.kind!r}")

    def _charge(self) -> None:
        if self.meter is None:
            return
        if self.slow_path_updates:
            self.meter.charge_slow_update()
        else:
            self.meter.charge_fast_update()

    def _apply_create(self, op: _Op) -> None:
        store = self._stores[op.prop.name]
        existing = store.by_key(op.key)
        if existing is not None and existing.alive:
            return  # split-mode race: created twice before first applied
        policy = self.degradation
        if policy is not None and store.at_capacity():
            victim = store.choose_victim(policy.eviction)
            if victim is None:  # reject-new: the full table refuses entry
                self._c_rejected.inc()
                self.ledger.record(
                    "instance-rejected", op.prop.name, f"key={op.key!r}",
                    op.time, classify_op("create", "dropped"))
                return
            store.remove(victim)
            self._live_total -= 1
            self._c_evicted.inc()
            self.ledger.record(
                "instance-evicted", op.prop.name, f"key={victim.key!r}",
                op.time, (IMPACT_MISSED, IMPACT_FALSE))
            if self.tracer.enabled:
                self.tracer.event(
                    "monitor.evict", op.time, property=op.prop.name,
                    key=repr(victim.key))
        instance = Instance(op.prop, op.key, dict(op.env), created_at=op.time)
        record = record_stage(
            self.provenance, op.prop.stages[0].name, op.time, op.event
        )
        if record is not None:
            instance.provenance.append(record)
        store.add(instance)
        self._live_total += 1
        self._c_created.inc()
        if self.tracer.enabled:
            self.tracer.event(
                "monitor.create", op.time, uid=_op_uid(op),
                property=op.prop.name, key=repr(op.key))
        if instance.complete:  # single-stage property: immediate violation
            self._violate(instance, op.event, op.time)
            store.remove(instance)
            self._live_total -= 1
            return
        self._arm_timer(instance, op.time)

    def _apply_advance(self, op: _Op) -> None:
        instance = op.instance
        assert instance is not None
        if not instance.alive:
            return  # split-mode race: advanced after expiry
        store = self._stores[op.prop.name]
        old_stage = instance.stage
        stage = op.prop.stages[old_stage]
        instance.env.update(op.binds)
        instance.stage += 1
        instance.advanced_at = op.time
        self._bump_gen(instance)
        self._stage_advance_counters[op.prop.name][old_stage].inc()
        if self.tracer.enabled:
            self.tracer.event(
                "monitor.advance", op.time, uid=_op_uid(op),
                property=op.prop.name, stage=stage.name,
                to_stage=instance.stage)
        record = record_stage(self.provenance, stage.name, op.time, op.event)
        if record is not None:
            instance.provenance.append(record)
        if instance.complete:
            self._violate(instance, op.event, op.time)
            store.remove(instance)
            self._live_total -= 1
            return
        store.reindex(instance, old_stage)
        self._arm_timer(instance, op.time)

    def _apply_kill(self, op: _Op) -> None:
        instance = op.instance
        assert instance is not None
        if not instance.alive:
            return
        self._stores[op.prop.name].remove(instance)
        self._live_total -= 1
        if op.reason == "discharged":
            self._c_discharged.inc()
        else:
            self._c_cancelled.inc()
        if self.tracer.enabled:
            self.tracer.event(
                "monitor.kill", op.time, uid=_op_uid(op),
                property=op.prop.name, reason=op.reason)

    def _apply_refresh(self, op: _Op) -> None:
        instance = op.instance
        assert instance is not None
        if not instance.alive or instance.stage != 1:
            return
        instance.advanced_at = op.time  # a refresh is a touch for evict-lru
        instance.env.update(op.binds)
        # Re-binding may change indexed values (a re-learned port, or the
        # stage-0 packet uid that a same_packet stage keys on): the store's
        # index must follow, or the refreshed instance becomes unfindable.
        self._stores[op.prop.name].reindex(instance, instance.stage)
        self._c_refreshes.inc()
        self._arm_timer(instance, op.time)

    # -- timers ---------------------------------------------------------------------
    def _bump_gen(self, instance: Instance) -> int:
        gen = self._timer_gens.get(instance.instance_id, 0) + 1
        self._timer_gens[instance.instance_id] = gen
        return gen

    def _arm_timer(self, instance: Instance, now: float) -> None:
        stage = instance.current_stage()
        gen = self._bump_gen(instance)
        if stage is None:
            return
        if isinstance(stage, Absent):
            deadline = now + stage.within
            instance.deadline = deadline
            instance.deadline_kind = "advance"
        elif stage.within is not None:
            deadline = now + stage.within
            instance.deadline = deadline
            instance.deadline_kind = "expire"
        else:
            instance.deadline = None
            instance.deadline_kind = ""
            return
        heapq.heappush(self._wheel, (deadline, next(self._wheel_seq), instance, gen))
        if self.scheduler is not None and instance.deadline_kind == "advance":
            # Only negative observations need a live wakeup: their firing
            # produces externally-visible behaviour (possibly a violation)
            # even if no further packets arrive.  Expiry is lazy.
            self.scheduler.call_at(
                deadline, lambda d=deadline: self.advance_to(d),
                label="monitor-timeout-action",
            )

    def _fire_timer(self, instance: Instance, gen: int, deadline: float) -> None:
        if not instance.alive or self._timer_gens.get(instance.instance_id) != gen:
            return  # stale wheel entry (lazy cancellation)
        store = self._stores[instance.prop.name]
        if instance.deadline_kind == "expire":
            store.remove(instance)
            self._live_total -= 1
            self._c_expired.inc()
            return
        # Timeout action (Feature 7): the negative observation is satisfied.
        self._c_timer_advances.inc()
        old_stage = instance.stage
        stage = instance.prop.stages[old_stage]
        self._stage_advance_counters[instance.prop.name][old_stage].inc()
        if self.tracer.enabled:
            self.tracer.event(
                "monitor.timer_advance", deadline,
                property=instance.prop.name, stage=stage.name)
        instance.stage += 1
        instance.advanced_at = deadline
        self._bump_gen(instance)
        record = record_stage(self.provenance, stage.name, deadline, None)
        if record is not None:
            instance.provenance.append(record)
        if instance.complete:
            self._violate(instance, None, deadline)
            store.remove(instance)
            self._live_total -= 1
            return
        store.reindex(instance, old_stage)
        self._arm_timer(instance, deadline)

    # -- violations ------------------------------------------------------------------
    def _violate(
        self,
        instance: Instance,
        trigger: Optional[DataplaneEvent],
        when: float,
    ) -> None:
        bindings = {
            k: v for k, v in instance.env.items() if not k.startswith("__")
        }
        violation = Violation(
            property_name=instance.prop.name,
            time=when,
            bindings=bindings,
            message=instance.prop.violation_message
            or instance.prop.description,
            trigger=trigger if self.provenance is not ProvenanceLevel.NONE else None,
            history=tuple(instance.provenance),
        )
        self.violations.append(violation)
        self._c_violations.inc()
        self._prop_violation_counters[instance.prop.name].inc()
        if self.tracer.enabled:
            uid = trigger.packet.uid if (
                trigger is not None and getattr(trigger, "packet", None) is not None
            ) else None
            self.tracer.event(
                "monitor.violation", when, uid=uid,
                property=instance.prop.name)
        for sink in self._sinks:
            sink(violation)

    def _track_peak(self) -> None:
        if not self.registry.enabled:
            # Telemetry off: no per-property gauge fan-out, no store
            # iteration — the incrementally maintained total keeps the
            # peak-live watermark exact at O(1) per event.
            self._g_live.set(float(self._live_total))
            return
        total = 0
        for name, store in self._stores.items():
            live = store.live_count
            total += live
            self._prop_live_gauges[name].set(float(live))
        self._g_live.set(float(total))

    # -- lifecycle (the serve daemon's start/drain/stop contract) --------------------
    def start(self, now: float = 0.0) -> None:
        """Mark the monitor live at ``now`` (a long-running process's t0).

        Replay never needs this — the first event's timestamp starts the
        clock implicitly.  A daemon does: it records when monitoring
        began so the final report can bound the covered interval even if
        the first event arrives much later (or never).
        """
        self.started_at = now
        self.advance_to(now)

    def drain(self, until: Optional[float] = None) -> int:
        """Apply every deferred op and due timer; returns ops left.

        With no horizon, time advances just far enough to flush the
        split-mode pending queue and retry queue (retries may re-enqueue
        with backoff, so this loops until both are empty).  A nonzero
        return means ``until`` cut the drain short.
        """
        if until is not None:
            self.advance_to(until)
            return self.pending_op_count()
        while self._pending or self._retry:
            horizon = max(
                [t for t, _, _ in self._pending]
                + [t for t, _, _, _, _ in self._retry]
            )
            self.advance_to(max(horizon, self._now))
        return 0

    def stop(self, now: Optional[float] = None) -> Dict[str, object]:
        """Drain, close trace spans, and return the lifecycle summary.

        The summary is what ``repro serve`` folds into its final
        degradation report: totals, the overflow ledger's digest, and
        the uncertainty interval around the observed violation count.
        """
        remaining = self.drain(until=None if now is None else max(now, self._now))
        if now is not None and now > self._now:
            self.advance_to(now)
        self.tracer.close_all(self._now)
        observed = len(self.violations)
        return {
            "started_at": self.started_at,
            "stopped_at": self._now,
            "events": self.stats.events,
            "violations": observed,
            "violations_interval": list(self.ledger.interval(observed)),
            "live_instances": self.live_instances(),
            "pending_ops": remaining,
            "ledger": self.ledger.summary(),
        }

    # -- checkpoint / restore ----------------------------------------------------------
    def export_state(self) -> MonitorState:
        """Flatten recoverable state into a picklable :class:`MonitorState`.

        Iteration order is deterministic (property registration order,
        then store insertion order), so two exports of the same monitor
        are identical — the fabric's crash-replay equivalence depends on
        restored timers re-arming in a reproducible order.
        """
        instances: List[InstanceCheckpoint] = []
        for name, store in self._stores.items():
            for inst in store.all():
                instances.append(InstanceCheckpoint(
                    prop=name,
                    key=inst.key,
                    env=dict(inst.env),
                    stage=inst.stage,
                    created_at=inst.created_at,
                    advanced_at=inst.advanced_at,
                    deadline=inst.deadline,
                    deadline_kind=inst.deadline_kind,
                    provenance=tuple(inst.provenance),
                ))
        return MonitorState(
            now=self._now,
            instances=tuple(instances),
            lost_pending_ops=self.pending_op_count(),
        )

    def restore_state(self, state: MonitorState) -> None:
        """Rebuild instances (and their timers) from a checkpoint.

        The monitor must have the same properties registered as the one
        that exported ``state``.  Restored instances do not re-increment
        the ``instances_created`` counter — the exporter already counted
        them; fabric merging accounts for counters across worker
        generations separately.  Timers re-arm at their saved absolute
        deadlines: a deadline in a checkpoint is always strictly in the
        checkpoint's future (an elapsed timer would have fired before
        the export), so nothing fires during restore.
        """
        for snap in state.instances:
            prop = self._props.get(snap.prop)
            if prop is None:
                raise ValueError(
                    f"checkpoint references unknown property {snap.prop!r}")
            instance = Instance(prop, snap.key, dict(snap.env),
                                created_at=snap.created_at)
            instance.stage = snap.stage
            instance.advanced_at = snap.advanced_at
            instance.provenance = list(snap.provenance)
            self._stores[snap.prop].add(instance)
            self._live_total += 1
            if snap.deadline is not None:
                instance.deadline = snap.deadline
                instance.deadline_kind = snap.deadline_kind
                gen = self._bump_gen(instance)
                heapq.heappush(
                    self._wheel,
                    (snap.deadline, next(self._wheel_seq), instance, gen))
                if self.scheduler is not None \
                        and snap.deadline_kind == "advance":
                    self.scheduler.call_at(
                        snap.deadline,
                        lambda d=snap.deadline: self.advance_to(d),
                        label="monitor-timeout-action")
        if state.now > self._now:
            self._now = state.now
        self._track_peak()

    # -- conveniences ------------------------------------------------------------------
    def attach(self, switch) -> None:
        """Attach to a switch's dataplane event stream."""
        switch.add_tap(self.observe)

    def flush(self, until: float) -> None:
        """Drive monitor time to ``until`` (fires due timers/pending ops)."""
        self.advance_to(until)
