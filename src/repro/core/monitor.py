"""The property-monitor engine — the paper's "ideal switch monitor".

The :class:`Monitor` consumes the dataplane event stream (attach it to a
switch with ``switch.add_tap(monitor.observe)``, or replay a recorded trace
into it) and tracks, per property, a population of instances — partially
completed violation witnesses.  It implements all the semantic features of
Sec. 2:

* F1  field access        — guards read the flat event field map, truncated
                            at the monitor's ``max_layer`` parse capability;
* F2  event history       — instances persist across packets;
* F3  timeouts            — ``Observe.within`` expires stale instances, and
                            re-seeing stage 0 for an existing key refreshes;
* F4  persistent obligation — ``unless`` patterns cancel waiting instances;
* F5  packet identity     — ``same_packet_as`` compares packet uids;
* F6  negative match      — ``FieldNe`` / ``MismatchAny`` guards;
* F7  timeout actions     — ``Absent`` stages advance (and may fire a
                            violation) when their timer elapses with no
                            discharging event;
* F8  instance identification — exact/symmetric/wandering matching via the
                            indexed store; multiple match via scan stages;
* F9  side-effect control — ``ProcessingMode.INLINE`` applies monitor state
                            transitions atomically with event processing;
                            ``SPLIT`` defers them by ``split_lag`` seconds,
                            letting monitor state lag behind the traffic
                            (observable monitor errors, per the paper);
* F10 provenance          — NONE / LIMITED / FULL per-stage recording.

Timer ordering: when an event at time *t* arrives, all timers with deadline
``<= t`` fire first.  This is what makes "a drop that comes after a valid
timeout will still trigger a violation" come out *false* once the property
carries its timeout — the instance is gone before the late drop is seen.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..netsim.scheduler import EventScheduler
from ..switch.events import DataplaneEvent
from ..switch.registers import StateCostMeter
from ..switch.switch import DEFAULT_SPLIT_LAG, ProcessingMode
from .instances import Instance, InstanceStore, make_store, uid_var
from .provenance import ProvenanceLevel, StageRecord, record_stage
from .refs import EventKind, EventPattern, event_fields, kind_matches
from .spec import Absent, Observe, PropertySpec
from .violations import Violation

ViolationSink = Callable[[Violation], None]


@dataclass
class MonitorStats:
    """Counters the benchmarks read."""

    events: int = 0
    violations: int = 0
    instances_created: int = 0
    instances_expired: int = 0
    instances_discharged: int = 0
    instances_cancelled: int = 0
    timer_advances: int = 0
    refreshes: int = 0
    candidates_examined: int = 0
    ops_applied: int = 0
    peak_live_instances: int = 0
    peak_pending_ops: int = 0


# ---------------------------------------------------------------------------
# Planned state transitions (the unit Feature 9 defers)
# ---------------------------------------------------------------------------
@dataclass
class _Op:
    kind: str  # "create" | "advance" | "kill" | "refresh"
    prop: PropertySpec
    instance: Optional[Instance] = None
    key: Tuple = ()
    env: Dict[str, object] = field(default_factory=dict)
    binds: Dict[str, object] = field(default_factory=dict)
    event: Optional[DataplaneEvent] = None
    reason: str = ""
    time: float = 0.0


class Monitor:
    """Cross-packet property monitor over a dataplane event stream."""

    def __init__(
        self,
        scheduler: Optional[EventScheduler] = None,
        provenance: ProvenanceLevel = ProvenanceLevel.LIMITED,
        store_strategy: str = "indexed",
        mode: ProcessingMode = ProcessingMode.INLINE,
        split_lag: float = DEFAULT_SPLIT_LAG,
        max_layer: int = 7,
        meter: Optional[StateCostMeter] = None,
        slow_path_updates: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.provenance = provenance
        self.store_strategy = store_strategy
        self.mode = mode
        self.split_lag = split_lag
        self.max_layer = max_layer
        self.meter = meter
        self.slow_path_updates = slow_path_updates
        self.stats = MonitorStats()
        self.violations: List[Violation] = []
        self._sinks: List[ViolationSink] = []
        self._props: Dict[str, PropertySpec] = {}
        self._stores: Dict[str, InstanceStore] = {}
        self._wheel: List[Tuple[float, int, Instance, int]] = []
        self._wheel_seq = itertools.count()
        self._timer_gens: Dict[int, int] = {}  # instance_id -> generation
        self._pending: List[Tuple[float, int, _Op]] = []  # split-mode queue
        self._pending_seq = itertools.count()
        self._now = 0.0

    # -- configuration -------------------------------------------------------
    def add_property(self, prop: PropertySpec) -> None:
        if prop.name in self._props:
            raise ValueError(f"duplicate property {prop.name!r}")
        self._props[prop.name] = prop
        self._stores[prop.name] = make_store(prop, self.store_strategy)

    def on_violation(self, sink: ViolationSink) -> None:
        self._sinks.append(sink)

    def store(self, prop_name: str) -> InstanceStore:
        return self._stores[prop_name]

    def live_instances(self) -> int:
        return sum(len(list(s.all())) for s in self._stores.values())

    @property
    def now(self) -> float:
        return self._now

    # -- event intake ----------------------------------------------------------
    def observe(self, event: DataplaneEvent) -> None:
        """Process one dataplane event (the tap entry point)."""
        self.advance_to(event.time)
        self.stats.events += 1
        fields = event_fields(event, max_layer=self.max_layer)
        ops = self._evaluate(event, fields)
        if self.mode is ProcessingMode.INLINE:
            for op in ops:
                self._apply(op)
        else:
            apply_at = event.time + self.split_lag
            for op in ops:
                heapq.heappush(
                    self._pending, (apply_at, next(self._pending_seq), op)
                )
            self.stats.peak_pending_ops = max(
                self.stats.peak_pending_ops, len(self._pending)
            )
            if self.scheduler is not None:
                self.scheduler.call_at(
                    apply_at, lambda t=apply_at: self.advance_to(t),
                    label="monitor-split-apply",
                )
        self._track_peak()

    def advance_to(self, when: float) -> None:
        """Move monitor time forward, firing due timers and pending ops.

        Pending split-mode ops and timer deadlines are interleaved in time
        order, so a deferred creation still arms its timer before a later
        deadline fires.
        """
        if when < self._now:
            return  # events carry non-decreasing times; tolerate equal
        while True:
            next_pending = self._pending[0][0] if self._pending else None
            next_timer = self._wheel[0][0] if self._wheel else None
            candidates = [t for t in (next_pending, next_timer) if t is not None]
            if not candidates:
                break
            t = min(candidates)
            if t > when:
                break
            if next_pending is not None and next_pending <= t:
                _, _, op = heapq.heappop(self._pending)
                self._now = max(self._now, next_pending)
                self._apply(op)
                continue
            deadline, _, instance, gen = heapq.heappop(self._wheel)
            self._now = max(self._now, deadline)
            self._fire_timer(instance, gen, deadline)
        self._now = max(self._now, when)

    # -- evaluation (read-only against current state) ---------------------------
    def _evaluate(
        self, event: DataplaneEvent, fields: Mapping[str, object]
    ) -> List[_Op]:
        ops: List[_Op] = []
        t = event.time
        for prop in self._props.values():
            store = self._stores[prop.name]
            doomed: Set[int] = set()

            # 1. Cancellations: unless patterns (Feature 4) and Absent
            #    discharges (the awaited event happened: obligation met).
            for stage_idx in range(1, prop.num_stages):
                stage = prop.stages[stage_idx]
                unless = getattr(stage, "unless", ())
                if unless:
                    for inst in store.at_stage(stage_idx):
                        if inst.instance_id in doomed:
                            continue
                        for pattern in unless:
                            if self._pattern_matches(pattern, event, fields, inst):
                                doomed.add(inst.instance_id)
                                ops.append(_Op("kill", prop, instance=inst,
                                               reason="unless", time=t))
                                break
                if isinstance(stage, Absent) and kind_matches(
                    stage.pattern.kind, event
                ):
                    for inst in store.candidates(stage_idx, fields):
                        if inst.stage != stage_idx or inst.instance_id in doomed:
                            continue
                        self.stats.candidates_examined += 1
                        if self._pattern_matches(stage.pattern, event, fields, inst):
                            doomed.add(inst.instance_id)
                            ops.append(_Op("kill", prop, instance=inst,
                                           reason="discharged", time=t))

            # 2. Advancement of positive stages.
            for stage_idx in range(1, prop.num_stages):
                stage = prop.stages[stage_idx]
                if isinstance(stage, Absent):
                    continue
                if not kind_matches(stage.pattern.kind, event):
                    continue
                for inst in store.candidates(stage_idx, fields):
                    if inst.stage != stage_idx or inst.instance_id in doomed:
                        continue
                    self.stats.candidates_examined += 1
                    if not self._pattern_matches(stage.pattern, event, fields, inst):
                        continue
                    if not stage.pattern.bindable(fields):
                        continue
                    binds = dict(stage.pattern.capture(fields))
                    if "uid" in fields:
                        binds[uid_var(stage.name)] = fields["uid"]
                    doomed.add(inst.instance_id)  # at most one transition/event
                    ops.append(_Op("advance", prop, instance=inst, binds=binds,
                                   event=event, time=t))

            # 3. Creation / refresh at stage 0.
            stage0 = prop.stages[0]
            pattern0 = stage0.pattern
            if (
                kind_matches(pattern0.kind, event)
                and pattern0.matches(event, fields, {})
                and pattern0.bindable(fields)
            ):
                env0 = pattern0.capture(fields)
                if "uid" in fields:
                    env0[uid_var(stage0.name)] = fields["uid"]
                key = tuple(env0[k] for k in prop.key_vars)
                existing = store.by_key(key)
                if existing is not None and existing.alive:
                    if existing.stage == 1 and existing.instance_id not in doomed:
                        if self._should_refresh(prop, stage0):
                            ops.append(_Op("refresh", prop, instance=existing,
                                           binds=env0, event=event, time=t))
                else:
                    ops.append(_Op("create", prop, key=key, env=env0,
                                   event=event, time=t))
        return ops

    def _should_refresh(self, prop: PropertySpec, stage0: Observe) -> bool:
        if not stage0.refresh_on_repeat or prop.num_stages < 2:
            return False
        stage1 = prop.stages[1]
        if isinstance(stage1, Absent):
            # Feature 7 subtlety: with the sound "never" policy a repeated
            # prior observation must NOT reset the negative-observation
            # timer, or a request storm every T-1 seconds evades detection.
            return stage1.refresh == "on_prior"
        return True

    def _pattern_matches(
        self,
        pattern: EventPattern,
        event: DataplaneEvent,
        fields: Mapping[str, object],
        instance: Instance,
    ) -> bool:
        if pattern.same_packet_as is not None:
            expected = instance.env.get(uid_var(pattern.same_packet_as))
            if expected is None or fields.get("uid") != expected:
                return False
        return pattern.matches(event, fields, instance.env)

    # -- state transitions -------------------------------------------------------
    def _apply(self, op: _Op) -> None:
        self.stats.ops_applied += 1
        self._charge()
        if op.kind == "create":
            self._apply_create(op)
        elif op.kind == "advance":
            self._apply_advance(op)
        elif op.kind == "kill":
            self._apply_kill(op)
        elif op.kind == "refresh":
            self._apply_refresh(op)
        else:  # pragma: no cover - internal invariant
            raise ValueError(f"unknown op kind {op.kind!r}")

    def _charge(self) -> None:
        if self.meter is None:
            return
        if self.slow_path_updates:
            self.meter.charge_slow_update()
        else:
            self.meter.charge_fast_update()

    def _apply_create(self, op: _Op) -> None:
        store = self._stores[op.prop.name]
        existing = store.by_key(op.key)
        if existing is not None and existing.alive:
            return  # split-mode race: created twice before first applied
        instance = Instance(op.prop, op.key, dict(op.env), created_at=op.time)
        record = record_stage(
            self.provenance, op.prop.stages[0].name, op.time, op.event
        )
        if record is not None:
            instance.provenance.append(record)
        store.add(instance)
        self.stats.instances_created += 1
        if instance.complete:  # single-stage property: immediate violation
            self._violate(instance, op.event, op.time)
            store.remove(instance)
            return
        self._arm_timer(instance, op.time)

    def _apply_advance(self, op: _Op) -> None:
        instance = op.instance
        assert instance is not None
        if not instance.alive:
            return  # split-mode race: advanced after expiry
        store = self._stores[op.prop.name]
        old_stage = instance.stage
        stage = op.prop.stages[old_stage]
        instance.env.update(op.binds)
        instance.stage += 1
        instance.advanced_at = op.time
        self._bump_gen(instance)
        record = record_stage(self.provenance, stage.name, op.time, op.event)
        if record is not None:
            instance.provenance.append(record)
        if instance.complete:
            self._violate(instance, op.event, op.time)
            store.remove(instance)
            return
        store.reindex(instance, old_stage)
        self._arm_timer(instance, op.time)

    def _apply_kill(self, op: _Op) -> None:
        instance = op.instance
        assert instance is not None
        if not instance.alive:
            return
        self._stores[op.prop.name].remove(instance)
        if op.reason == "discharged":
            self.stats.instances_discharged += 1
        else:
            self.stats.instances_cancelled += 1

    def _apply_refresh(self, op: _Op) -> None:
        instance = op.instance
        assert instance is not None
        if not instance.alive or instance.stage != 1:
            return
        instance.env.update(op.binds)
        # Re-binding may change indexed values (a re-learned port, or the
        # stage-0 packet uid that a same_packet stage keys on): the store's
        # index must follow, or the refreshed instance becomes unfindable.
        self._stores[op.prop.name].reindex(instance, instance.stage)
        self.stats.refreshes += 1
        self._arm_timer(instance, op.time)

    # -- timers ---------------------------------------------------------------------
    def _bump_gen(self, instance: Instance) -> int:
        gen = self._timer_gens.get(instance.instance_id, 0) + 1
        self._timer_gens[instance.instance_id] = gen
        return gen

    def _arm_timer(self, instance: Instance, now: float) -> None:
        stage = instance.current_stage()
        gen = self._bump_gen(instance)
        if stage is None:
            return
        if isinstance(stage, Absent):
            deadline = now + stage.within
            instance.deadline = deadline
            instance.deadline_kind = "advance"
        elif stage.within is not None:
            deadline = now + stage.within
            instance.deadline = deadline
            instance.deadline_kind = "expire"
        else:
            instance.deadline = None
            instance.deadline_kind = ""
            return
        heapq.heappush(self._wheel, (deadline, next(self._wheel_seq), instance, gen))
        if self.scheduler is not None and instance.deadline_kind == "advance":
            # Only negative observations need a live wakeup: their firing
            # produces externally-visible behaviour (possibly a violation)
            # even if no further packets arrive.  Expiry is lazy.
            self.scheduler.call_at(
                deadline, lambda d=deadline: self.advance_to(d),
                label="monitor-timeout-action",
            )

    def _fire_timer(self, instance: Instance, gen: int, deadline: float) -> None:
        if not instance.alive or self._timer_gens.get(instance.instance_id) != gen:
            return  # stale wheel entry (lazy cancellation)
        store = self._stores[instance.prop.name]
        if instance.deadline_kind == "expire":
            store.remove(instance)
            self.stats.instances_expired += 1
            return
        # Timeout action (Feature 7): the negative observation is satisfied.
        self.stats.timer_advances += 1
        old_stage = instance.stage
        stage = instance.prop.stages[old_stage]
        instance.stage += 1
        instance.advanced_at = deadline
        self._bump_gen(instance)
        record = record_stage(self.provenance, stage.name, deadline, None)
        if record is not None:
            instance.provenance.append(record)
        if instance.complete:
            self._violate(instance, None, deadline)
            store.remove(instance)
            return
        store.reindex(instance, old_stage)
        self._arm_timer(instance, deadline)

    # -- violations ------------------------------------------------------------------
    def _violate(
        self,
        instance: Instance,
        trigger: Optional[DataplaneEvent],
        when: float,
    ) -> None:
        bindings = {
            k: v for k, v in instance.env.items() if not k.startswith("__")
        }
        violation = Violation(
            property_name=instance.prop.name,
            time=when,
            bindings=bindings,
            message=instance.prop.violation_message
            or instance.prop.description,
            trigger=trigger if self.provenance is not ProvenanceLevel.NONE else None,
            history=tuple(instance.provenance),
        )
        self.violations.append(violation)
        self.stats.violations += 1
        for sink in self._sinks:
            sink(violation)

    def _track_peak(self) -> None:
        live = self.live_instances()
        if live > self.stats.peak_live_instances:
            self.stats.peak_live_instances = live

    # -- conveniences ------------------------------------------------------------------
    def attach(self, switch) -> None:
        """Attach to a switch's dataplane event stream."""
        switch.add_tap(self.observe)

    def flush(self, until: float) -> None:
        """Drive monitor time to ``until`` (fires due timers/pending ops)."""
        self.advance_to(until)
