"""The paper's ten semantic features, as enumerable values.

Sec. 2 of the paper distills ten features a switch must provide to host
stateful property monitoring.  Eight are *per-property* (a given property
needs them or not — the columns of Table 1); side-effect control (F9) and
provenance (F10) are intrinsic to the monitoring implementation and
"independent of the property" (Table 1's caption).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple


class Feature(Enum):
    """F1–F10 of Sec. 2."""

    FIELD_ACCESS = "F1: access to necessary fields"
    EVENT_HISTORY = "F2: access to event history"
    TIMEOUTS = "F3: timeouts"
    OBLIGATION = "F4: persistent obligation"
    PACKET_IDENTITY = "F5: maintaining packet identity"
    NEGATIVE_MATCH = "F6: negative match"
    TIMEOUT_ACTIONS = "F7: timeout actions"
    INSTANCE_ID = "F8: instance identification"
    SIDE_EFFECT_CONTROL = "F9: side-effect control"
    PROVENANCE = "F10: provenance"


class MatchKind(Enum):
    """Feature 8's instance-identification varieties (Table 1's Inst. ID)."""

    EXACT = "exact"
    SYMMETRIC = "symmetric"
    WANDERING = "wandering"


@dataclass(frozen=True)
class FeatureRequirements:
    """What one property demands of the switch — one Table 1 row's columns."""

    max_layer: int
    history: bool
    timeouts: bool
    obligation: bool
    identity: bool
    negative_match: bool
    timeout_actions: bool
    match_kind: MatchKind
    multiple_match: bool
    out_of_band: bool
    drop_visibility: bool

    def fields_label(self) -> str:
        """Table 1's Fields column: the parse depth as 'L<n>'."""
        return f"L{self.max_layer}"

    def table1_row(self) -> Tuple[str, str, str, str, str, str, str, str]:
        """Render as Table 1 cells: Fields, History, Timeouts, Obligation,
        Identity, Neg Match, T.Out. Acts, Inst. ID."""
        dot = lambda b: "•" if b else ""  # noqa: E731 - tiny table renderer
        return (
            self.fields_label(),
            dot(self.history),
            dot(self.timeouts),
            dot(self.obligation),
            dot(self.identity),
            dot(self.negative_match),
            dot(self.timeout_actions),
            self.match_kind.value,
        )


# ---------------------------------------------------------------------------
# Field provenance (adversarial analysis)
# ---------------------------------------------------------------------------
#: Provenance labels the taint pass (:mod:`repro.lint.taint`) assigns to
#: event fields.  A field is *attacker-controlled* when an end host can put
#: an arbitrary value in it just by sending a packet — every parsed header
#: field qualifies, because the switch parses whatever bytes arrive.  A
#: field is *trusted* when only the switch itself decides its value: which
#: physical port a packet arrived on, the switch's clock, the forwarding
#: action the pipeline chose, out-of-band port/link events.
ATTACKER_CONTROLLED = "attacker-controlled"
TRUSTED = "trusted"

#: Event-metadata fields whose values the switch, not the sender, supplies
#: (see :func:`repro.core.refs.event_fields` for where each is populated).
TRUSTED_FIELDS = frozenset({
    "time",
    "switch",
    "uid",
    "in_port",
    "out_port",
    "egress.action",
    "drop.reason",
    "oob.kind",
    "oob.port",
    "timer.id",
})


def field_provenance(name: str) -> str:
    """Provenance label for one dotted event field.

    Defaults to attacker-controlled: packet header fields all are, and an
    unknown field must be assumed hostile — a taint pass that guessed
    "trusted" for fields it has never heard of would rubber-stamp exactly
    the properties it exists to flag.
    """
    return TRUSTED if name in TRUSTED_FIELDS else ATTACKER_CONTROLLED
